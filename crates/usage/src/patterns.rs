//! Behavioural usage categories — the LUPA analysis stage.
//!
//! "Node usage information for short time intervals is grouped in larger
//! intervals called periods. After that, the system shall apply clustering
//! algorithms to this data in order to extract behavioral categories. It is
//! expected that these categories will map to common usage periods such as
//! lunch-breaks, nights, holidays, working periods…" (§3).
//!
//! [`LupaModel::train`] clusters a node's daily load curves into categories
//! (k chosen by silhouette), attaches a weekday histogram to each, and names
//! them with shape heuristics. [`LupaModel::retrain`] implements the paper's
//! "evolutionary process: as data is being collected and analyzed new
//! categories can appear, others can disappear".

use crate::kmeans::{select_k, KMeansModel};
use crate::sample::{DayPeriod, Weekday};
use crate::series::{euclidean, resample, smooth};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration for training a [`LupaModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LupaConfig {
    /// Length daily curves are resampled to before clustering.
    pub feature_len: usize,
    /// Candidate category counts (inclusive).
    pub k_min: usize,
    /// Candidate category counts (inclusive).
    pub k_max: usize,
    /// Load below this is "idle" for category labelling and prediction.
    pub idle_threshold: f64,
    /// Seed for clustering initialisation.
    pub seed: u64,
}

impl Default for LupaConfig {
    fn default() -> Self {
        LupaConfig {
            feature_len: 96, // 15-minute resolution
            k_min: 2,
            k_max: 6,
            idle_threshold: 0.15,
            seed: 0x4C55_5041, // "LUPA"
        }
    }
}

/// Heuristic shape label for a category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CategoryLabel {
    /// Idle essentially all day (weekends, holidays, spare machines).
    MostlyIdle,
    /// Busy during business hours, idle nights — the classic workstation.
    OfficeHours,
    /// Busy at night, idle by day.
    NightActive,
    /// Busy essentially all day (servers, simulation boxes).
    AlwaysBusy,
    /// No dominant shape.
    Irregular,
}

impl fmt::Display for CategoryLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CategoryLabel::MostlyIdle => "mostly-idle",
            CategoryLabel::OfficeHours => "office-hours",
            CategoryLabel::NightActive => "night-active",
            CategoryLabel::AlwaysBusy => "always-busy",
            CategoryLabel::Irregular => "irregular",
        };
        f.write_str(s)
    }
}

/// One behavioural category extracted from a node's history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Category {
    /// Dense id within the model.
    pub id: usize,
    /// Mean daily load curve (length = `feature_len`).
    pub centroid: Vec<f64>,
    /// Training days assigned to this category.
    pub day_count: usize,
    /// Distribution of those days over weekdays (Mon..Sun).
    pub weekday_hist: [usize; 7],
    /// Heuristic shape name.
    pub label: CategoryLabel,
}

impl Category {
    /// Fraction of this category's days falling on `weekday`.
    pub fn weekday_share(&self, weekday: Weekday) -> f64 {
        if self.day_count == 0 {
            return 0.0;
        }
        self.weekday_hist[weekday.index() as usize] as f64 / self.day_count as f64
    }
}

/// One training day retained by the model (feature-space curve).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedDay {
    /// Weekday of the original day.
    pub weekday: Weekday,
    /// Resampled load curve.
    pub features: Vec<f64>,
    /// Assigned category id.
    pub category: usize,
}

/// Changes observed across a retraining — the paper's category evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvolutionReport {
    /// Labels present after but not before.
    pub appeared: Vec<CategoryLabel>,
    /// Labels present before but not after.
    pub disappeared: Vec<CategoryLabel>,
    /// Category count before → after.
    pub k_before: usize,
    /// Category count after retraining.
    pub k_after: usize,
}

/// A node's trained usage-pattern model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LupaModel {
    config: LupaConfig,
    categories: Vec<Category>,
    days: Vec<TrainedDay>,
}

fn features_of(period: &DayPeriod, feature_len: usize) -> Vec<f64> {
    smooth(&resample(&period.load_curve(), feature_len), 1)
}

fn label_centroid(centroid: &[f64], idle_threshold: f64) -> CategoryLabel {
    let n = centroid.len();
    let idle_frac = centroid.iter().filter(|&&v| v < idle_threshold).count() as f64 / n as f64;
    if idle_frac > 0.85 {
        return CategoryLabel::MostlyIdle;
    }
    if idle_frac < 0.15 {
        return CategoryLabel::AlwaysBusy;
    }
    // Compare business hours (09:00–18:00) against night (00:00–06:00).
    let slot = |hour: f64| ((hour / 24.0) * n as f64) as usize;
    let mean = |lo: usize, hi: usize| -> f64 {
        centroid[lo..hi.min(n)].iter().sum::<f64>() / (hi.min(n) - lo).max(1) as f64
    };
    let day_load = mean(slot(9.0), slot(18.0));
    let night_load = mean(slot(0.0), slot(6.0));
    if day_load > 2.0 * night_load && day_load > idle_threshold {
        CategoryLabel::OfficeHours
    } else if night_load > 2.0 * day_load && night_load > idle_threshold {
        CategoryLabel::NightActive
    } else {
        CategoryLabel::Irregular
    }
}

impl LupaModel {
    /// Trains a model on a node's completed periods.
    ///
    /// # Panics
    ///
    /// Panics if `periods` is empty or contains empty days.
    pub fn train(periods: &[DayPeriod], config: LupaConfig) -> Self {
        assert!(
            !periods.is_empty(),
            "LUPA training requires at least one period"
        );
        let features: Vec<Vec<f64>> = periods
            .iter()
            .map(|p| features_of(p, config.feature_len))
            .collect();
        let k_max = config.k_max.min(features.len());
        let k_min = config.k_min.min(k_max);
        let (_, model): (usize, KMeansModel) = select_k(&features, k_min..=k_max, config.seed);

        let mut categories: Vec<Category> = model
            .centroids
            .iter()
            .enumerate()
            .map(|(id, centroid)| Category {
                id,
                centroid: centroid.clone(),
                day_count: 0,
                weekday_hist: [0; 7],
                label: label_centroid(centroid, config.idle_threshold),
            })
            .collect();
        let mut days = Vec::with_capacity(periods.len());
        for (period, (&assignment, feats)) in
            periods.iter().zip(model.assignments.iter().zip(&features))
        {
            categories[assignment].day_count += 1;
            categories[assignment].weekday_hist[period.weekday.index() as usize] += 1;
            days.push(TrainedDay {
                weekday: period.weekday,
                features: feats.clone(),
                category: assignment,
            });
        }
        LupaModel {
            config,
            categories,
            days,
        }
    }

    /// Retrains with additional periods appended to the history, reporting
    /// how the category set evolved.
    pub fn retrain(&mut self, new_periods: &[DayPeriod]) -> EvolutionReport {
        let before: Vec<CategoryLabel> = self.categories.iter().map(|c| c.label).collect();
        let k_before = before.len();
        // Rebuild synthetic periods from retained feature days + new ones.
        let mut all_features: Vec<(Weekday, Vec<f64>)> = self
            .days
            .iter()
            .map(|d| (d.weekday, d.features.clone()))
            .collect();
        all_features.extend(
            new_periods
                .iter()
                .map(|p| (p.weekday, features_of(p, self.config.feature_len))),
        );
        let data: Vec<Vec<f64>> = all_features.iter().map(|(_, f)| f.clone()).collect();
        let k_max = self.config.k_max.min(data.len());
        let k_min = self.config.k_min.min(k_max);
        let (_, model) = select_k(&data, k_min..=k_max, self.config.seed);
        let mut categories: Vec<Category> = model
            .centroids
            .iter()
            .enumerate()
            .map(|(id, centroid)| Category {
                id,
                centroid: centroid.clone(),
                day_count: 0,
                weekday_hist: [0; 7],
                label: label_centroid(centroid, self.config.idle_threshold),
            })
            .collect();
        let mut days = Vec::with_capacity(data.len());
        for ((weekday, feats), &assignment) in all_features.iter().zip(&model.assignments) {
            categories[assignment].day_count += 1;
            categories[assignment].weekday_hist[weekday.index() as usize] += 1;
            days.push(TrainedDay {
                weekday: *weekday,
                features: feats.clone(),
                category: assignment,
            });
        }
        self.categories = categories;
        self.days = days;
        let after: Vec<CategoryLabel> = self.categories.iter().map(|c| c.label).collect();
        EvolutionReport {
            appeared: after
                .iter()
                .filter(|l| !before.contains(l))
                .copied()
                .collect(),
            disappeared: before
                .iter()
                .filter(|l| !after.contains(l))
                .copied()
                .collect(),
            k_before,
            k_after: after.len(),
        }
    }

    /// The trained configuration.
    pub fn config(&self) -> LupaConfig {
        self.config
    }

    /// The extracted categories.
    pub fn categories(&self) -> &[Category] {
        &self.categories
    }

    /// The retained training days.
    pub fn days(&self) -> &[TrainedDay] {
        &self.days
    }

    /// Prior probability of each category on `weekday` (Laplace-smoothed).
    pub fn weekday_prior(&self, weekday: Weekday) -> Vec<f64> {
        let k = self.categories.len();
        let counts: Vec<f64> = self
            .categories
            .iter()
            .map(|c| c.weekday_hist[weekday.index() as usize] as f64 + 0.5)
            .collect();
        let total: f64 = counts.iter().sum();
        counts.iter().map(|c| c / total).collect::<Vec<_>>()[..k].to_vec()
    }

    /// Classifies a complete feature-space day curve.
    pub fn classify(&self, features: &[f64]) -> usize {
        self.categories
            .iter()
            .map(|c| euclidean(&c.centroid, features))
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("model has at least one category")
    }

    /// Posterior over categories given the day observed so far (`prefix`
    /// feature slots) on `weekday`. Combines the weekday prior with a
    /// distance-based likelihood on the observed prefix.
    pub fn posterior(&self, weekday: Weekday, prefix: &[f64]) -> Vec<f64> {
        let prior = self.weekday_prior(weekday);
        if prefix.is_empty() {
            return prior;
        }
        let len = prefix.len().min(self.config.feature_len);
        let mut weights: Vec<f64> = self
            .categories
            .iter()
            .zip(&prior)
            .map(|(c, p)| {
                let d = euclidean(&c.centroid[..len], &prefix[..len]);
                // Gaussian-ish likelihood on mean per-slot deviation.
                let per_slot = d / (len as f64).sqrt();
                p * (-8.0 * per_slot * per_slot).exp().max(1e-12)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        weights
    }

    /// Converts a day's partial load curve (native slot resolution) into the
    /// model's feature space prefix.
    pub fn prefix_features(&self, partial_load: &[f64], slots_per_day: usize) -> Vec<f64> {
        if partial_load.is_empty() {
            return Vec::new();
        }
        let frac = partial_load.len() as f64 / slots_per_day as f64;
        let target = ((self.config.feature_len as f64 * frac).round() as usize)
            .clamp(1, self.config.feature_len);
        smooth(&resample(partial_load, target), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::{SamplingConfig, UsageSample};
    use integrade_simnet::rng::DetRng;

    /// Builds a synthetic day with the given hourly shape + noise.
    fn synth_day(day: u64, shape: impl Fn(f64) -> f64, rng: &mut DetRng) -> DayPeriod {
        let cfg = SamplingConfig::new(15); // 96 slots
        let samples = (0..cfg.slots_per_day())
            .map(|slot| {
                let hour = slot as f64 * 24.0 / cfg.slots_per_day() as f64;
                let base = shape(hour).clamp(0.0, 1.0);
                let jitter = rng.normal(0.0, 0.03);
                UsageSample::new((base + jitter).clamp(0.0, 1.0), base * 0.5, 0.0, 0.0)
            })
            .collect();
        DayPeriod {
            day,
            weekday: Weekday::from_day_number(day),
            samples,
        }
    }

    fn office(hour: f64) -> f64 {
        if (9.0..12.0).contains(&hour) || (13.0..18.0).contains(&hour) {
            0.8
        } else {
            0.03
        }
    }

    fn idle(_hour: f64) -> f64 {
        0.02
    }

    fn busy(_hour: f64) -> f64 {
        0.9
    }

    /// Two weeks: office-hours weekdays, idle weekends.
    fn two_weeks() -> Vec<DayPeriod> {
        let mut rng = DetRng::new(42);
        (0..14)
            .map(|day| {
                let weekday = Weekday::from_day_number(day);
                if weekday.is_weekend() {
                    synth_day(day, idle, &mut rng)
                } else {
                    synth_day(day, office, &mut rng)
                }
            })
            .collect()
    }

    #[test]
    fn recovers_weekday_weekend_split() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        assert_eq!(model.categories().len(), 2, "should find 2 categories");
        let labels: Vec<CategoryLabel> = model.categories().iter().map(|c| c.label).collect();
        assert!(labels.contains(&CategoryLabel::OfficeHours), "{labels:?}");
        assert!(labels.contains(&CategoryLabel::MostlyIdle), "{labels:?}");
        // Weekend days all fall in the mostly-idle category.
        let idle_cat = model
            .categories()
            .iter()
            .find(|c| c.label == CategoryLabel::MostlyIdle)
            .unwrap();
        assert_eq!(idle_cat.day_count, 4);
        assert!(idle_cat.weekday_share(Weekday::new(5)) > 0.4);
        assert_eq!(idle_cat.weekday_share(Weekday::new(0)), 0.0);
    }

    #[test]
    fn weekday_prior_reflects_history() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        let office_cat = model
            .categories()
            .iter()
            .position(|c| c.label == CategoryLabel::OfficeHours)
            .unwrap();
        let monday = model.weekday_prior(Weekday::new(0));
        let saturday = model.weekday_prior(Weekday::new(5));
        assert!(monday[office_cat] > 0.7);
        assert!(saturday[office_cat] < 0.3);
    }

    #[test]
    fn classify_maps_day_to_right_category() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        let mut rng = DetRng::new(7);
        let fresh_office = synth_day(14, office, &mut rng); // a Monday
        let feats = features_of(&fresh_office, model.config().feature_len);
        let cat = model.classify(&feats);
        assert_eq!(model.categories()[cat].label, CategoryLabel::OfficeHours);
    }

    #[test]
    fn posterior_sharpens_with_evidence() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        let office_cat = model
            .categories()
            .iter()
            .position(|c| c.label == CategoryLabel::OfficeHours)
            .unwrap();
        // Saturday, but the morning looks busy (owner came in to work):
        // evidence should pull probability toward office-hours vs the prior.
        let mut rng = DetRng::new(9);
        let busy_sat = synth_day(5, office, &mut rng);
        let half_day: Vec<f64> = busy_sat.load_curve()[..48].to_vec(); // until noon
        let prefix = model.prefix_features(&half_day, 96);
        let prior = model.weekday_prior(Weekday::new(5));
        let post = model.posterior(Weekday::new(5), &prefix);
        assert!(
            post[office_cat] > prior[office_cat],
            "post={post:?} prior={prior:?}"
        );
    }

    #[test]
    fn posterior_is_a_distribution() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        let post = model.posterior(Weekday::new(2), &[0.8; 20]);
        let sum: f64 = post.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(post.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn retrain_reports_new_category() {
        let mut model = LupaModel::train(&two_weeks(), LupaConfig::default());
        // A new always-busy regime appears (machine converted to a server).
        let mut rng = DetRng::new(11);
        let busy_days: Vec<DayPeriod> = (14..24).map(|d| synth_day(d, busy, &mut rng)).collect();
        let report = model.retrain(&busy_days);
        assert!(
            report.appeared.contains(&CategoryLabel::AlwaysBusy),
            "{report:?}"
        );
        assert!(report.k_after >= report.k_before);
    }

    #[test]
    fn label_heuristics() {
        let n = 96;
        let idle_c = vec![0.01; n];
        assert_eq!(label_centroid(&idle_c, 0.15), CategoryLabel::MostlyIdle);
        let busy_c = vec![0.9; n];
        assert_eq!(label_centroid(&busy_c, 0.15), CategoryLabel::AlwaysBusy);
        let mut office_c = vec![0.02; n];
        for value in office_c.iter_mut().take(72).skip(36) {
            *value = 0.8; // 09:00–18:00
        }
        assert_eq!(label_centroid(&office_c, 0.15), CategoryLabel::OfficeHours);
        let mut night_c = vec![0.02; n];
        for value in night_c.iter_mut().take(24) {
            *value = 0.8; // 00:00–06:00
        }
        assert_eq!(label_centroid(&night_c, 0.15), CategoryLabel::NightActive);
    }

    #[test]
    #[should_panic(expected = "at least one period")]
    fn empty_training_panics() {
        LupaModel::train(&[], LupaConfig::default());
    }

    #[test]
    fn prefix_features_scales_with_progress() {
        let model = LupaModel::train(&two_weeks(), LupaConfig::default());
        assert!(model.prefix_features(&[], 96).is_empty());
        let quarter = model.prefix_features(&[0.5; 24], 96);
        assert_eq!(quarter.len(), 24); // 96 feature * (24/96)
        let full = model.prefix_features(&vec![0.5; 96], 96);
        assert_eq!(full.len(), 96);
    }

    #[test]
    fn single_day_trains_one_category() {
        let mut rng = DetRng::new(3);
        let model = LupaModel::train(&[synth_day(0, office, &mut rng)], LupaConfig::default());
        assert_eq!(model.categories().len(), 1);
        assert_eq!(model.days().len(), 1);
    }
}
