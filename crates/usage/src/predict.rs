//! Idle-period prediction — the output LUPA feeds to the scheduler.
//!
//! "When tuned properly, this mechanism can help schedulers to forecast if
//! an idle machine will stay idle for a significant amount of time or if it
//! is going to be busy again in a few seconds" (§1). [`LupaPredictor`]
//! answers exactly that question from a trained [`LupaModel`]:
//! `P(node stays idle through the next H minutes)`. [`PersistencePredictor`]
//! is the naive last-value baseline the experiments compare against, and
//! [`brier_score`] / [`PrecisionRecall`] quantify forecast quality.

use crate::patterns::LupaModel;
use crate::sample::Weekday;
use serde::{Deserialize, Serialize};

/// Everything a predictor may look at when asked for a forecast.
#[derive(Debug, Clone)]
pub struct PredictionContext<'a> {
    /// Weekday of the day being predicted.
    pub weekday: Weekday,
    /// Minute-of-day at which the forecast is made (0..1440).
    pub minute_of_day: u32,
    /// The day's scalar load curve observed so far, at `slots_per_day`
    /// native resolution.
    pub partial_load: &'a [f64],
    /// Native slots per day of `partial_load`'s resolution.
    pub slots_per_day: usize,
    /// Forecast horizon in minutes.
    pub horizon_mins: u32,
}

/// A forecaster of near-term idleness.
pub trait IdlePredictor {
    /// Probability in `[0, 1]` that the node stays idle (load below the
    /// model threshold) from now through the next `horizon_mins` minutes.
    fn prob_idle_for(&self, ctx: &PredictionContext<'_>) -> f64;
}

/// Pattern-based predictor backed by a trained [`LupaModel`].
///
/// The forecast marginalises over behavioural categories: the posterior
/// P(category | weekday, day-so-far) weights, per category, the fraction of
/// its training days that stayed idle through the requested window.
#[derive(Debug, Clone)]
pub struct LupaPredictor<'a> {
    model: &'a LupaModel,
}

impl<'a> LupaPredictor<'a> {
    /// Wraps a trained model.
    pub fn new(model: &'a LupaModel) -> Self {
        LupaPredictor { model }
    }

    /// Feature-slot range covered by `[minute, minute + horizon)`.
    fn window_slots(&self, minute_of_day: u32, horizon_mins: u32) -> (usize, usize) {
        let feature_len = self.model.config().feature_len;
        let start = (minute_of_day as usize * feature_len) / 1440;
        let end_min = (minute_of_day + horizon_mins).min(1440) as usize;
        let end = (end_min * feature_len).div_ceil(1440);
        (
            start.min(feature_len - 1),
            end.clamp(start + 1, feature_len),
        )
    }
}

impl IdlePredictor for LupaPredictor<'_> {
    fn prob_idle_for(&self, ctx: &PredictionContext<'_>) -> f64 {
        let threshold = self.model.config().idle_threshold;
        let prefix = self
            .model
            .prefix_features(ctx.partial_load, ctx.slots_per_day);
        let posterior = self.model.posterior(ctx.weekday, &prefix);
        let (lo, hi) = self.window_slots(ctx.minute_of_day, ctx.horizon_mins);

        let mut prob = 0.0;
        for (category, weight) in self.model.categories().iter().zip(&posterior) {
            // Empirical: fraction of this category's training days idle
            // through the window.
            let days: Vec<_> = self
                .model
                .days()
                .iter()
                .filter(|d| d.category == category.id)
                .collect();
            let frac = if days.is_empty() {
                // Fall back to the centroid shape.
                if category.centroid[lo..hi].iter().all(|&v| v < threshold) {
                    1.0
                } else {
                    0.0
                }
            } else {
                days.iter()
                    .filter(|d| d.features[lo..hi].iter().all(|&v| v < threshold))
                    .count() as f64
                    / days.len() as f64
            };
            prob += weight * frac;
        }
        prob.clamp(0.0, 1.0)
    }
}

/// Naive baseline: predicts the current state persists (idle stays idle,
/// busy stays busy), with confidence decaying over the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PersistencePredictor {
    /// Load below this counts as idle.
    pub idle_threshold: f64,
    /// Horizon (minutes) over which confidence halves.
    pub half_life_mins: f64,
}

impl Default for PersistencePredictor {
    fn default() -> Self {
        PersistencePredictor {
            idle_threshold: 0.15,
            half_life_mins: 240.0,
        }
    }
}

impl IdlePredictor for PersistencePredictor {
    fn prob_idle_for(&self, ctx: &PredictionContext<'_>) -> f64 {
        let currently_idle = ctx
            .partial_load
            .last()
            .map(|&v| v < self.idle_threshold)
            .unwrap_or(true);
        let decay = 0.5f64.powf(ctx.horizon_mins as f64 / self.half_life_mins);
        if currently_idle {
            0.5 + 0.5 * decay
        } else {
            0.5 - 0.5 * decay
        }
    }
}

/// Mean squared error of probabilistic forecasts against boolean outcomes
/// (lower is better; 0.25 = uninformed coin).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn brier_score(predictions: &[f64], outcomes: &[bool]) -> f64 {
    assert_eq!(
        predictions.len(),
        outcomes.len(),
        "one outcome per prediction"
    );
    assert!(
        !predictions.is_empty(),
        "brier score of nothing is undefined"
    );
    predictions
        .iter()
        .zip(outcomes)
        .map(|(&p, &o)| {
            let target = if o { 1.0 } else { 0.0 };
            (p - target) * (p - target)
        })
        .sum::<f64>()
        / predictions.len() as f64
}

/// Precision/recall of thresholded forecasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Of the predicted-idle cases, the fraction actually idle.
    pub precision: f64,
    /// Of the actually-idle cases, the fraction predicted idle.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes precision/recall of `prediction >= threshold` against outcomes.
/// Empty or degenerate classes yield zeros rather than NaNs.
pub fn precision_recall(predictions: &[f64], outcomes: &[bool], threshold: f64) -> PrecisionRecall {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (&p, &o) in predictions.iter().zip(outcomes) {
        let predicted = p >= threshold;
        match (predicted, o) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 {
        0.0
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        0.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{LupaConfig, LupaModel};
    use crate::sample::{DayPeriod, SamplingConfig, UsageSample, Weekday};
    use integrade_simnet::rng::DetRng;

    fn synth_day(day: u64, shape: impl Fn(f64) -> f64, rng: &mut DetRng) -> DayPeriod {
        let cfg = SamplingConfig::new(15);
        let samples = (0..cfg.slots_per_day())
            .map(|slot| {
                let hour = slot as f64 * 24.0 / cfg.slots_per_day() as f64;
                let base = shape(hour).clamp(0.0, 1.0);
                let jitter = rng.normal(0.0, 0.02);
                UsageSample::new((base + jitter).clamp(0.0, 1.0), base * 0.4, 0.0, 0.0)
            })
            .collect();
        DayPeriod {
            day,
            weekday: Weekday::from_day_number(day),
            samples,
        }
    }

    fn office(hour: f64) -> f64 {
        if (9.0..18.0).contains(&hour) {
            0.85
        } else {
            0.02
        }
    }

    fn idle(_: f64) -> f64 {
        0.02
    }

    fn trained_model() -> LupaModel {
        let mut rng = DetRng::new(21);
        let days: Vec<DayPeriod> = (0..21)
            .map(|d| {
                let wd = Weekday::from_day_number(d);
                if wd.is_weekend() {
                    synth_day(d, idle, &mut rng)
                } else {
                    synth_day(d, office, &mut rng)
                }
            })
            .collect();
        LupaModel::train(&days, LupaConfig::default())
    }

    fn ctx<'a>(
        weekday: Weekday,
        minute: u32,
        partial: &'a [f64],
        horizon: u32,
    ) -> PredictionContext<'a> {
        PredictionContext {
            weekday,
            minute_of_day: minute,
            partial_load: partial,
            slots_per_day: 96,
            horizon_mins: horizon,
        }
    }

    #[test]
    fn weekday_evening_predicts_idle_overnight() {
        let model = trained_model();
        let p = LupaPredictor::new(&model);
        // Tuesday 20:00, idle evening so far after a busy day.
        let mut partial = vec![0.02; 36]; // 00:00–09:00 idle
        partial.extend(vec![0.85; 36]); // 09:00–18:00 busy
        partial.extend(vec![0.02; 8]); // 18:00–20:00 idle
        let prob = p.prob_idle_for(&ctx(Weekday::new(1), 20 * 60, &partial, 120));
        assert!(prob > 0.8, "evening idle should persist: {prob}");
    }

    #[test]
    fn weekday_morning_predicts_busy_daytime() {
        let model = trained_model();
        let p = LupaPredictor::new(&model);
        // Wednesday 08:30, idle so far — but the office day is about to start.
        let partial = vec![0.02; 34];
        let prob = p.prob_idle_for(&ctx(Weekday::new(2), 8 * 60 + 30, &partial, 180));
        assert!(prob < 0.3, "owner arrives at 09:00: {prob}");
    }

    #[test]
    fn weekend_predicts_idle_all_day() {
        let model = trained_model();
        let p = LupaPredictor::new(&model);
        let partial = vec![0.02; 40]; // Saturday 10:00
        let prob = p.prob_idle_for(&ctx(Weekday::new(5), 10 * 60, &partial, 240));
        assert!(prob > 0.8, "weekend stays idle: {prob}");
    }

    #[test]
    fn pattern_beats_persistence_at_nine_am() {
        // The headline E4 contrast: just before the owner returns, the
        // persistence baseline says "idle continues"; LUPA knows better.
        let model = trained_model();
        let lupa = LupaPredictor::new(&model);
        let naive = PersistencePredictor::default();
        let partial = vec![0.02; 34]; // 08:30, idle all morning
        let c = ctx(Weekday::new(2), 8 * 60 + 30, &partial, 120);
        let lupa_p = lupa.prob_idle_for(&c);
        let naive_p = naive.prob_idle_for(&c);
        assert!(
            naive_p > 0.6,
            "persistence extrapolates idleness: {naive_p}"
        );
        assert!(lupa_p < naive_p, "lupa={lupa_p} naive={naive_p}");
    }

    #[test]
    fn persistence_tracks_current_state() {
        let p = PersistencePredictor::default();
        let busy = vec![0.9];
        let idle_load = vec![0.05];
        assert!(p.prob_idle_for(&ctx(Weekday::new(0), 600, &busy, 30)) < 0.5);
        assert!(p.prob_idle_for(&ctx(Weekday::new(0), 600, &idle_load, 30)) > 0.5);
        // Longer horizons regress toward 0.5.
        let short = p.prob_idle_for(&ctx(Weekday::new(0), 600, &idle_load, 10));
        let long = p.prob_idle_for(&ctx(Weekday::new(0), 600, &idle_load, 1000));
        assert!(short > long && long >= 0.5);
    }

    #[test]
    fn probabilities_are_valid() {
        let model = trained_model();
        let p = LupaPredictor::new(&model);
        for minute in [0u32, 360, 720, 1080, 1380] {
            for horizon in [5u32, 60, 480] {
                let partial = vec![0.02; (minute as usize * 96 / 1440).max(1)];
                let prob = p.prob_idle_for(&ctx(Weekday::new(3), minute, &partial, horizon));
                assert!((0.0..=1.0).contains(&prob), "minute={minute} h={horizon}");
            }
        }
    }

    #[test]
    fn brier_score_basics() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert_eq!(brier_score(&[0.0, 1.0], &[true, false]), 1.0);
        assert_eq!(brier_score(&[0.5, 0.5], &[true, false]), 0.25);
    }

    #[test]
    #[should_panic(expected = "one outcome per prediction")]
    fn brier_mismatched_lengths_panics() {
        brier_score(&[0.5], &[true, false]);
    }

    #[test]
    fn precision_recall_basics() {
        let preds = [0.9, 0.8, 0.2, 0.7];
        let outcomes = [true, false, true, true];
        let pr = precision_recall(&preds, &outcomes, 0.5);
        assert!((pr.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((pr.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_degenerate() {
        let pr = precision_recall(&[0.1, 0.2], &[false, false], 0.5);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1, 0.0);
    }
}
