//! Time-series utilities for daily usage curves.
//!
//! Clustering operates on fixed-length vectors (one load value per sampling
//! slot). This module provides the vector operations the clustering and
//! prediction stages need: distances, normalisation, resampling and
//! smoothing.

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Manhattan (L1) distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Windowed dynamic-time-warping distance (Sakoe–Chiba band of `window`
/// slots). Tolerates small time shifts — a lunch break at 12:00 vs 12:30
/// still reads as the same shape.
///
/// # Panics
///
/// Panics if either input is empty.
pub fn dtw(a: &[f64], b: &[f64], window: usize) -> f64 {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "dtw requires non-empty inputs"
    );
    let n = a.len();
    let m = b.len();
    let w = window.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Component-wise mean of a set of equal-length vectors.
///
/// # Panics
///
/// Panics if `rows` is empty or rows have unequal lengths.
pub fn mean_vector(rows: &[Vec<f64>]) -> Vec<f64> {
    assert!(!rows.is_empty(), "mean of zero vectors is undefined");
    let len = rows[0].len();
    let mut out = vec![0.0; len];
    for row in rows {
        assert_eq!(row.len(), len, "mean requires equal lengths");
        for (o, v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
    for o in &mut out {
        *o /= rows.len() as f64;
    }
    out
}

/// Min–max normalises a vector into `[0, 1]`; constant vectors become zeros.
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if !lo.is_finite() || !hi.is_finite() || (hi - lo) < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - lo) / (hi - lo)).collect()
}

/// Resamples a vector to `target_len` points by averaging over equal bins
/// (downsampling) or linear interpolation (upsampling).
///
/// # Panics
///
/// Panics if either length is zero.
pub fn resample(values: &[f64], target_len: usize) -> Vec<f64> {
    assert!(
        !values.is_empty() && target_len > 0,
        "resample requires non-empty sizes"
    );
    let n = values.len();
    if n == target_len {
        return values.to_vec();
    }
    if target_len < n {
        // Bin-average.
        (0..target_len)
            .map(|i| {
                let start = i * n / target_len;
                let end = (((i + 1) * n).div_ceil(target_len)).min(n).max(start + 1);
                values[start..end].iter().sum::<f64>() / (end - start) as f64
            })
            .collect()
    } else {
        // Linear interpolation.
        (0..target_len)
            .map(|i| {
                if n == 1 {
                    return values[0];
                }
                let pos = i as f64 * (n - 1) as f64 / (target_len - 1) as f64;
                let base = pos.floor() as usize;
                let frac = pos - base as f64;
                if base + 1 < n {
                    values[base] * (1.0 - frac) + values[base + 1] * frac
                } else {
                    values[n - 1]
                }
            })
            .collect()
    }
}

/// Centered moving-average smoothing with a window of `2*radius + 1` slots.
pub fn smooth(values: &[f64], radius: usize) -> Vec<f64> {
    if radius == 0 || values.is_empty() {
        return values.to_vec();
    }
    let n = values.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(radius);
            let hi = (i + radius + 1).min(n);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mismatched_lengths_panic() {
        euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dtw_tolerates_shifts() {
        // A lunch-dip at slot 4 vs slot 5: DTW sees them as nearly identical,
        // Euclidean does not.
        let a = vec![1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0];
        let b = vec![1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0];
        assert!(dtw(&a, &b, 2) < 0.01);
        assert!(euclidean(&a, &b) > 1.0);
    }

    #[test]
    fn dtw_identical_is_zero() {
        let a = vec![0.2, 0.4, 0.9];
        assert_eq!(dtw(&a, &a, 1), 0.0);
    }

    #[test]
    fn dtw_handles_unequal_lengths() {
        let a = vec![0.0, 1.0, 0.0];
        let b = vec![0.0, 1.0, 1.0, 0.0];
        assert!(dtw(&a, &b, 1).is_finite());
    }

    #[test]
    fn mean_vector_averages() {
        let rows = vec![vec![0.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(mean_vector(&rows), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero vectors")]
    fn mean_of_nothing_panics() {
        mean_vector(&[]);
    }

    #[test]
    fn normalize_maps_to_unit_interval() {
        assert_eq!(normalize(&[2.0, 4.0, 6.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(normalize(&[3.0, 3.0]), vec![0.0, 0.0]);
        assert_eq!(normalize(&[]), Vec::<f64>::new());
    }

    #[test]
    fn resample_identity() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(resample(&v, 3), v);
    }

    #[test]
    fn resample_down_averages() {
        let v = vec![1.0, 1.0, 3.0, 3.0];
        assert_eq!(resample(&v, 2), vec![1.0, 3.0]);
    }

    #[test]
    fn resample_up_interpolates() {
        let v = vec![0.0, 1.0];
        let up = resample(&v, 3);
        assert_eq!(up, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn resample_preserves_mean_roughly() {
        let v: Vec<f64> = (0..288).map(|i| i as f64 / 288.0).collect();
        let down = resample(&v, 48);
        let mean_orig = v.iter().sum::<f64>() / v.len() as f64;
        let mean_down = down.iter().sum::<f64>() / down.len() as f64;
        assert!((mean_orig - mean_down).abs() < 0.01);
    }

    #[test]
    fn smooth_flattens_spikes() {
        let v = vec![0.0, 0.0, 1.0, 0.0, 0.0];
        let s = smooth(&v, 1);
        assert!(s[2] < 1.0);
        assert!(s[1] > 0.0);
        assert_eq!(smooth(&v, 0), v);
    }
}
