//! K-medoids clustering (PAM) with pluggable distances.
//!
//! Johnson & Wichern (\[JW83\], the paper's clustering citation) treat
//! partitioning around representative observations as the robust sibling of
//! k-means. K-medoids needs only a pairwise distance — no means — which
//! makes it the right partner for elastic measures like dynamic time
//! warping: two users with the same routine shifted by half an hour (lunch
//! at 12:00 vs 12:30) produce curves that DTW sees as near-identical but
//! Euclidean k-means pushes into different clusters.
//!
//! [`fit`] implements PAM's BUILD + SWAP phases over a precomputed distance
//! matrix; [`DistanceKind`] selects Euclidean or windowed DTW.

use crate::series::{dtw, euclidean};
use serde::{Deserialize, Serialize};

/// Which distance the medoid clustering uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceKind {
    /// Plain Euclidean distance.
    Euclidean,
    /// Windowed dynamic time warping (Sakoe–Chiba band of the given width,
    /// in slots) — tolerant of small time shifts.
    Dtw {
        /// Band half-width in slots.
        window: usize,
    },
}

impl DistanceKind {
    /// Computes the distance between two curves.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceKind::Euclidean => euclidean(a, b),
            DistanceKind::Dtw { window } => dtw(a, b, *window),
        }
    }
}

/// A fitted k-medoids clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMedoidsModel {
    /// Indices of the medoid observations within the input data.
    pub medoids: Vec<usize>,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Total distance of points to their medoids.
    pub total_cost: f64,
    /// SWAP iterations executed.
    pub iterations: usize,
}

/// Precomputes the symmetric pairwise distance matrix.
pub fn distance_matrix(data: &[Vec<f64>], kind: DistanceKind) -> Vec<f64> {
    let n = data.len();
    let mut matrix = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = kind.distance(&data[i], &data[j]);
            matrix[i * n + j] = d;
            matrix[j * n + i] = d;
        }
    }
    matrix
}

fn assignment_cost(matrix: &[f64], n: usize, medoids: &[usize]) -> (Vec<usize>, f64) {
    let mut assignments = vec![0usize; n];
    let mut total = 0.0;
    for i in 0..n {
        let (best_cluster, best_distance) = medoids
            .iter()
            .enumerate()
            .map(|(c, &m)| (c, matrix[i * n + m]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one medoid");
        assignments[i] = best_cluster;
        total += best_distance;
    }
    (assignments, total)
}

/// Fits k-medoids via PAM (BUILD greedy seeding, then SWAP until no
/// improving swap exists or `max_iters` passes).
///
/// # Panics
///
/// Panics if `data` is empty or `k` is not in `1..=data.len()`.
pub fn fit(data: &[Vec<f64>], k: usize, kind: DistanceKind, max_iters: usize) -> KMedoidsModel {
    assert!(!data.is_empty(), "k-medoids requires data");
    let n = data.len();
    assert!(k >= 1 && k <= n, "k must be in 1..=len, got k={k} len={n}");
    let matrix = distance_matrix(data, kind);

    // BUILD: first medoid minimises total distance; each next medoid is the
    // point that most reduces the cost.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|i| matrix[i * n + a]).sum();
            let cb: f64 = (0..n).map(|i| matrix[i * n + b]).sum();
            ca.total_cmp(&cb)
        })
        .expect("nonempty");
    medoids.push(first);
    while medoids.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for candidate in 0..n {
            if medoids.contains(&candidate) {
                continue;
            }
            let mut gain = 0.0;
            for i in 0..n {
                let current = medoids
                    .iter()
                    .map(|&m| matrix[i * n + m])
                    .fold(f64::INFINITY, f64::min);
                let with_candidate = matrix[i * n + candidate];
                if with_candidate < current {
                    gain += current - with_candidate;
                }
            }
            if best.map(|(_, g)| gain > g).unwrap_or(true) {
                best = Some((candidate, gain));
            }
        }
        medoids.push(best.expect("k <= n leaves a candidate").0);
    }

    // SWAP: replace (medoid, non-medoid) pairs while the cost drops.
    let (mut assignments, mut cost) = assignment_cost(&matrix, n, &medoids);
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut improved = false;
        for position in 0..k {
            for candidate in 0..n {
                if medoids.contains(&candidate) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[position] = candidate;
                let (trial_assignments, trial_cost) = assignment_cost(&matrix, n, &trial);
                if trial_cost + 1e-12 < cost {
                    medoids = trial;
                    assignments = trial_assignments;
                    cost = trial_cost;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    KMedoidsModel {
        medoids,
        assignments,
        total_cost: cost,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_dip(shift: usize, len: usize) -> Vec<f64> {
        // Busy all day with an idle dip of 4 slots starting at `shift`.
        let mut curve = vec![0.8; len];
        for v in curve.iter_mut().skip(shift).take(4) {
            *v = 0.05;
        }
        curve
    }

    #[test]
    fn separates_two_plain_blobs() {
        let data: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                if i < 5 {
                    vec![0.0 + i as f64 * 0.01; 8]
                } else {
                    vec![5.0 + i as f64 * 0.01; 8]
                }
            })
            .collect();
        let model = fit(&data, 2, DistanceKind::Euclidean, 50);
        let first = model.assignments[0];
        assert!(model.assignments[..5].iter().all(|&a| a == first));
        assert!(model.assignments[5..].iter().all(|&a| a != first));
        // Medoids are actual observations from each blob.
        assert!(model.medoids.iter().any(|&m| m < 5));
        assert!(model.medoids.iter().any(|&m| m >= 5));
    }

    #[test]
    fn dtw_groups_time_shifted_routines_where_euclidean_fails() {
        // Two archetypes: "lunch dip" users at slots {10,11,12} (shifted
        // copies of one routine) and "morning dip" users at slots {2,3}.
        let data = vec![
            shifted_dip(10, 24),
            shifted_dip(11, 24),
            shifted_dip(12, 24),
            shifted_dip(2, 24),
            shifted_dip(3, 24),
        ];
        let truth = [0, 0, 0, 1, 1];

        let dtw_model = fit(&data, 2, DistanceKind::Dtw { window: 3 }, 50);
        let agrees = |assignments: &[usize]| {
            (0..data.len())
                .flat_map(|i| ((i + 1)..data.len()).map(move |j| (i, j)))
                .all(|(i, j)| (assignments[i] == assignments[j]) == (truth[i] == truth[j]))
        };
        assert!(
            agrees(&dtw_model.assignments),
            "DTW recovers shifted routines: {:?}",
            dtw_model.assignments
        );
        // Euclidean sees shifted dips as disjoint; its cost for the true
        // grouping is strictly worse relative to DTW's scale-free zero.
        let eu = DistanceKind::Euclidean;
        let d_shifted = eu.distance(&data[0], &data[1]);
        let d_dtw = DistanceKind::Dtw { window: 3 }.distance(&data[0], &data[1]);
        assert!(
            d_dtw < 0.1 * d_shifted,
            "dtw {d_dtw} << euclidean {d_shifted}"
        );
    }

    #[test]
    fn k_equals_n_costs_zero() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        let model = fit(&data, 3, DistanceKind::Euclidean, 10);
        assert_eq!(model.total_cost, 0.0);
        let mut sorted = model.medoids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn k_equals_one_picks_the_central_point() {
        let data = vec![vec![0.0], vec![10.0], vec![4.0], vec![5.0], vec![6.0]];
        let model = fit(&data, 1, DistanceKind::Euclidean, 10);
        assert_eq!(model.medoids, vec![3], "5.0 minimises total distance");
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn oversized_k_panics() {
        fit(&[vec![1.0]], 2, DistanceKind::Euclidean, 10);
    }

    #[test]
    fn deterministic_without_seeds() {
        // PAM is deterministic by construction (no random init).
        let data: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64, (i / 4) as f64])
            .collect();
        let a = fit(&data, 3, DistanceKind::Euclidean, 50);
        let b = fit(&data, 3, DistanceKind::Euclidean, 50);
        assert_eq!(a, b);
    }

    #[test]
    fn distance_matrix_is_symmetric_with_zero_diagonal() {
        let data = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 0.0]];
        let m = distance_matrix(&data, DistanceKind::Euclidean);
        let n = data.len();
        for i in 0..n {
            assert_eq!(m[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(m[i * n + j], m[j * n + i]);
            }
        }
    }
}
