//! # integrade-usage
//!
//! Usage-pattern collection, clustering and idle-period prediction — the
//! analytics behind InteGrade's LUPA (Local Usage Pattern Analyzer) and
//! GUPA (Global Usage Pattern Analyzer) components.
//!
//! The paper's pipeline (§3): sample node usage every few minutes
//! ([`sample`]), group samples into day-long periods, cluster the periods
//! into behavioural categories ([`kmeans`], [`kmedoids`] with DTW for
//! time-shifted routines, [`hierarchical`], combined in [`patterns`]), and use the categories to forecast how long an idle node
//! will stay idle ([`predict`]) — the hint the GRM's scheduler consumes.
//!
//! # Examples
//!
//! ```
//! use integrade_usage::sample::{DayPeriod, SamplingConfig, UsageSample, Weekday};
//! use integrade_usage::patterns::{LupaConfig, LupaModel};
//!
//! // Two synthetic days: one busy, one idle.
//! let cfg = SamplingConfig::new(60); // hourly samples for brevity
//! let make_day = |day: u64, level: f64| DayPeriod {
//!     day,
//!     weekday: Weekday::from_day_number(day),
//!     samples: vec![UsageSample::new(level, level, 0.0, 0.0); cfg.slots_per_day()],
//! };
//! let days = vec![make_day(0, 0.9), make_day(1, 0.9), make_day(2, 0.0), make_day(3, 0.0)];
//! let model = LupaModel::train(&days, LupaConfig { feature_len: 24, ..Default::default() });
//! assert_eq!(model.categories().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchical;
pub mod kmeans;
pub mod kmedoids;
pub mod patterns;
pub mod predict;
pub mod sample;
pub mod series;

pub use patterns::{Category, CategoryLabel, EvolutionReport, LupaConfig, LupaModel};
pub use predict::{
    brier_score, precision_recall, IdlePredictor, LupaPredictor, PersistencePredictor,
    PrecisionRecall, PredictionContext,
};
pub use sample::{DayPeriod, SampleWindow, SamplingConfig, UsageSample, Weekday};
