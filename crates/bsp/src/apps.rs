//! Built-in BSP applications.
//!
//! Three representative parallel workloads used by the examples, tests and
//! benchmarks — the "broad range of parallel applications" the paper claims
//! InteGrade supports, at three communication intensities:
//!
//! * [`PrefixSum`] — logarithmic-round scan; light, structured traffic.
//! * [`PageRank`] — iterative sparse mat-vec on a partitioned graph;
//!   all-to-all traffic every superstep.
//! * [`Stencil1d`] — Jacobi relaxation with halo exchange; neighbour-only
//!   traffic (the cluster-friendly case for topology-aware scheduling).

use crate::program::{BspContext, BspProgram, StepOutcome};
use integrade_orb::cdr::{CdrDecode, CdrEncode, CdrError, CdrReader, CdrWriter};

/// Parallel prefix sum (Hillis–Steele): after ⌈log₂ n⌉ + 1 supersteps, each
/// process holds the inclusive prefix sum of the initial values.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSum {
    /// Current partial value; after completion, the inclusive prefix sum.
    pub value: i64,
}

impl CdrEncode for PrefixSum {
    fn encode(&self, w: &mut CdrWriter) {
        self.value.encode(w);
    }
}
impl CdrDecode for PrefixSum {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        Ok(PrefixSum {
            value: i64::decode(r)?,
        })
    }
}

impl BspProgram for PrefixSum {
    type Message = i64;

    fn superstep(&mut self, ctx: &mut BspContext<i64>) -> StepOutcome {
        // Hillis–Steele: at round r, receive from pid - 2^r.
        let round = ctx.superstep();
        for &(_, v) in ctx.incoming() {
            self.value += v;
        }
        let offset = 1usize << round;
        if offset >= ctx.num_procs() {
            return StepOutcome::Halt;
        }
        let target = ctx.pid() + offset;
        if target < ctx.num_procs() {
            ctx.send(target, self.value);
        }
        StepOutcome::Continue
    }
}

/// One process of a partitioned PageRank iteration.
///
/// Each process owns a contiguous block of vertices; every superstep it
/// scatters rank/out-degree along edges and gathers into the damped update.
/// Runs a fixed number of iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRank {
    /// Global vertex count.
    pub total_vertices: u64,
    /// Vertex ids owned by this process (global ids).
    pub owned: Vec<u64>,
    /// Out-edges of each owned vertex (global target ids, aligned with `owned`).
    pub edges: Vec<Vec<u64>>,
    /// Current rank per owned vertex.
    pub ranks: Vec<f64>,
    /// Iterations remaining.
    pub remaining: u64,
    /// Damping factor (typically 0.85).
    pub damping: f64,
}

impl PageRank {
    /// Partitions a graph (edge list over `n` vertices) across `p` processes
    /// by contiguous blocks, seeding uniform ranks and `iterations` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `p == 0`.
    pub fn partition(
        n: u64,
        edges: &[(u64, u64)],
        p: usize,
        iterations: u64,
        damping: f64,
    ) -> Vec<PageRank> {
        assert!(n > 0 && p > 0, "graph and process counts must be positive");
        let mut parts: Vec<PageRank> = (0..p)
            .map(|_| PageRank {
                total_vertices: n,
                owned: Vec::new(),
                edges: Vec::new(),
                ranks: Vec::new(),
                remaining: iterations,
                damping,
            })
            .collect();
        let owner = |v: u64| ((v as usize * p) / n as usize).min(p - 1);
        for v in 0..n {
            let part = &mut parts[owner(v)];
            part.owned.push(v);
            part.edges.push(Vec::new());
            part.ranks.push(1.0 / n as f64);
        }
        for &(src, dst) in edges {
            assert!(src < n && dst < n, "edge endpoint out of range");
            let part = &mut parts[owner(src)];
            let local = part.owned.binary_search(&src).expect("owner holds src");
            part.edges[local].push(dst);
        }
        parts
    }
}

impl CdrEncode for PageRank {
    fn encode(&self, w: &mut CdrWriter) {
        self.total_vertices.encode(w);
        self.owned.encode(w);
        self.edges.encode(w);
        self.ranks.encode(w);
        self.remaining.encode(w);
        self.damping.encode(w);
    }
}
impl CdrDecode for PageRank {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        Ok(PageRank {
            total_vertices: u64::decode(r)?,
            owned: Vec::decode(r)?,
            edges: Vec::decode(r)?,
            ranks: Vec::decode(r)?,
            remaining: u64::decode(r)?,
            damping: f64::decode(r)?,
        })
    }
}

impl BspProgram for PageRank {
    /// (target vertex, contribution)
    type Message = (u64, f64);

    fn superstep(&mut self, ctx: &mut BspContext<(u64, f64)>) -> StepOutcome {
        let n = self.total_vertices as f64;
        let p = ctx.num_procs();
        let owner = |v: u64| ((v as usize * p) / self.total_vertices as usize).min(p - 1);
        // Gather contributions sent last superstep.
        if ctx.superstep() > 0 {
            let mut incoming_sum = vec![0.0; self.owned.len()];
            for &(_, (target, contribution)) in ctx.incoming() {
                let local = self
                    .owned
                    .binary_search(&target)
                    .expect("delivered to owner");
                incoming_sum[local] += contribution;
            }
            for (rank, inc) in self.ranks.iter_mut().zip(&incoming_sum) {
                *rank = (1.0 - self.damping) / n + self.damping * inc;
            }
            self.remaining -= 1;
            if self.remaining == 0 {
                return StepOutcome::Halt;
            }
        }
        // Scatter for the next round.
        for (local, targets) in self.edges.iter().enumerate() {
            if targets.is_empty() {
                continue;
            }
            let share = self.ranks[local] / targets.len() as f64;
            for &t in targets {
                ctx.send(owner(t), (t, share));
            }
        }
        StepOutcome::Continue
    }
}

/// 1-D Jacobi relaxation with halo exchange.
///
/// Each process owns a slab of the rod; every superstep it exchanges
/// boundary cells with its neighbours and averages. Fixed iteration count.
#[derive(Debug, Clone, PartialEq)]
pub struct Stencil1d {
    /// Owned cell values.
    pub cells: Vec<f64>,
    /// Left boundary condition (ghost value for process 0).
    pub left_boundary: f64,
    /// Right boundary condition (ghost value for the last process).
    pub right_boundary: f64,
    /// Iterations remaining.
    pub remaining: u64,
    /// Received halos (left, right) pending application.
    halo: (f64, f64),
}

impl Stencil1d {
    /// Splits `initial` cells across `p` processes with the given boundary
    /// conditions and iteration count.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer cells than processes or `p == 0`.
    pub fn partition(
        initial: &[f64],
        p: usize,
        iterations: u64,
        left: f64,
        right: f64,
    ) -> Vec<Stencil1d> {
        assert!(
            p > 0 && initial.len() >= p,
            "need at least one cell per process"
        );
        let n = initial.len();
        (0..p)
            .map(|i| {
                let lo = i * n / p;
                let hi = (i + 1) * n / p;
                Stencil1d {
                    cells: initial[lo..hi].to_vec(),
                    left_boundary: left,
                    right_boundary: right,
                    remaining: iterations,
                    halo: (left, right),
                }
            })
            .collect()
    }
}

impl CdrEncode for Stencil1d {
    fn encode(&self, w: &mut CdrWriter) {
        self.cells.encode(w);
        self.left_boundary.encode(w);
        self.right_boundary.encode(w);
        self.remaining.encode(w);
        self.halo.0.encode(w);
        self.halo.1.encode(w);
    }
}
impl CdrDecode for Stencil1d {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        Ok(Stencil1d {
            cells: Vec::decode(r)?,
            left_boundary: f64::decode(r)?,
            right_boundary: f64::decode(r)?,
            remaining: u64::decode(r)?,
            halo: (f64::decode(r)?, f64::decode(r)?),
        })
    }
}

impl BspProgram for Stencil1d {
    /// (is_left_halo, value): halo cell from a neighbour.
    type Message = (bool, f64);

    fn superstep(&mut self, ctx: &mut BspContext<(bool, f64)>) -> StepOutcome {
        let pid = ctx.pid();
        let last = ctx.num_procs() - 1;
        // Apply halos received from the previous exchange.
        for &(from, (is_left, value)) in ctx.incoming() {
            debug_assert!(from == pid.wrapping_sub(1) || from == pid + 1);
            if is_left {
                self.halo.0 = value;
            } else {
                self.halo.1 = value;
            }
        }
        if ctx.superstep() > 0 {
            // Jacobi update using halos.
            let old = self.cells.clone();
            let len = old.len();
            for i in 0..len {
                let left = if i == 0 { self.halo.0 } else { old[i - 1] };
                let right = if i == len - 1 {
                    self.halo.1
                } else {
                    old[i + 1]
                };
                self.cells[i] = 0.5 * (left + right);
            }
            self.remaining -= 1;
            if self.remaining == 0 {
                return StepOutcome::Halt;
            }
        }
        // Exchange halos for the next update.
        if pid > 0 {
            ctx.send(pid - 1, (false, self.cells[0]));
        }
        if pid < last {
            ctx.send(pid + 1, (true, *self.cells.last().expect("nonempty slab")));
        }
        StepOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{checkpoint, restore};
    use crate::runtime::{BspRuntime, RunResult};

    #[test]
    fn prefix_sum_matches_sequential() {
        let values: Vec<i64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut rt = BspRuntime::new(
            values
                .iter()
                .map(|&value| PrefixSum { value })
                .collect::<Vec<_>>(),
        );
        assert!(matches!(rt.run(64), RunResult::Completed { .. }));
        let mut expected = 0;
        for (proc, &v) in rt.procs().iter().zip(&values) {
            expected += v;
            assert_eq!(proc.value, expected);
        }
    }

    #[test]
    fn prefix_sum_superstep_count_is_logarithmic() {
        let mut rt = BspRuntime::new((0..16).map(|value| PrefixSum { value }).collect::<Vec<_>>());
        let RunResult::Completed { supersteps } = rt.run(64) else {
            panic!()
        };
        assert_eq!(supersteps, 5); // ceil(log2(16)) + 1
    }

    fn sequential_pagerank(n: u64, edges: &[(u64, u64)], iters: u64, damping: f64) -> Vec<f64> {
        let mut out_deg = vec![0usize; n as usize];
        for &(s, _) in edges {
            out_deg[s as usize] += 1;
        }
        let mut ranks = vec![1.0 / n as f64; n as usize];
        for _ in 0..iters {
            let mut incoming = vec![0.0; n as usize];
            for &(s, d) in edges {
                incoming[d as usize] += ranks[s as usize] / out_deg[s as usize] as f64;
            }
            for v in 0..n as usize {
                ranks[v] = (1.0 - damping) / n as f64 + damping * incoming[v];
            }
        }
        ranks
    }

    fn ring_graph(n: u64) -> Vec<(u64, u64)> {
        let mut e = Vec::new();
        for v in 0..n {
            e.push((v, (v + 1) % n));
            e.push((v, (v + 2) % n));
        }
        e
    }

    #[test]
    fn pagerank_matches_sequential() {
        let n = 12;
        let edges = ring_graph(n);
        let expected = sequential_pagerank(n, &edges, 5, 0.85);
        let mut rt = BspRuntime::new(PageRank::partition(n, &edges, 3, 5, 0.85));
        assert!(matches!(rt.run(100), RunResult::Completed { .. }));
        let mut got = vec![0.0; n as usize];
        for proc in rt.procs() {
            for (v, r) in proc.owned.iter().zip(&proc.ranks) {
                got[*v as usize] = *r;
            }
        }
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn pagerank_ranks_sum_to_one() {
        let n = 20;
        let edges = ring_graph(n);
        let mut rt = BspRuntime::new(PageRank::partition(n, &edges, 4, 8, 0.85));
        rt.run(100);
        let total: f64 = rt.procs().iter().flat_map(|p| &p.ranks).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    fn sequential_stencil(initial: &[f64], iters: u64, left: f64, right: f64) -> Vec<f64> {
        let mut cells = initial.to_vec();
        for _ in 0..iters {
            let old = cells.clone();
            let n = old.len();
            for i in 0..n {
                let l = if i == 0 { left } else { old[i - 1] };
                let r = if i == n - 1 { right } else { old[i + 1] };
                cells[i] = 0.5 * (l + r);
            }
        }
        cells
    }

    #[test]
    fn stencil_matches_sequential() {
        let initial: Vec<f64> = (0..24).map(|i| (i % 7) as f64).collect();
        let expected = sequential_stencil(&initial, 10, 0.0, 1.0);
        let mut rt = BspRuntime::new(Stencil1d::partition(&initial, 4, 10, 0.0, 1.0));
        assert!(matches!(rt.run(100), RunResult::Completed { .. }));
        let got: Vec<f64> = rt.procs().iter().flat_map(|p| p.cells.clone()).collect();
        for (g, e) in got.iter().zip(&expected) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn stencil_converges_to_linear_profile() {
        let initial = vec![0.0; 16];
        let mut rt = BspRuntime::new(Stencil1d::partition(&initial, 4, 2000, 0.0, 1.0));
        rt.run(3000);
        let got: Vec<f64> = rt.procs().iter().flat_map(|p| p.cells.clone()).collect();
        // Steady state of the discrete Laplace equation is linear in i.
        for (i, v) in got.iter().enumerate() {
            let expected = (i + 1) as f64 / 17.0;
            assert!((v - expected).abs() < 1e-6, "cell {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn apps_checkpoint_mid_run_and_resume() {
        // The E7 core path: every app must survive checkpoint/restore with
        // identical results.
        let n = 12;
        let edges = ring_graph(n);

        let mut reference = BspRuntime::new(PageRank::partition(n, &edges, 3, 6, 0.85));
        reference.run(100);

        let mut rt = BspRuntime::new(PageRank::partition(n, &edges, 3, 6, 0.85));
        for _ in 0..3 {
            rt.step();
        }
        let ckpt = checkpoint(&rt);
        let mut resumed: BspRuntime<PageRank> = restore(&ckpt).unwrap();
        resumed.run(100);
        assert_eq!(resumed.procs(), reference.procs());
    }

    #[test]
    fn pagerank_partition_covers_all_vertices() {
        let parts = PageRank::partition(10, &ring_graph(10), 3, 1, 0.85);
        let owned: usize = parts.iter().map(|p| p.owned.len()).sum();
        assert_eq!(owned, 10);
        for part in &parts {
            assert_eq!(part.owned.len(), part.ranks.len());
            assert_eq!(part.owned.len(), part.edges.len());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pagerank_bad_edge_panics() {
        PageRank::partition(4, &[(0, 99)], 2, 1, 0.85);
    }

    #[test]
    #[should_panic(expected = "one cell per process")]
    fn stencil_too_many_procs_panics() {
        Stencil1d::partition(&[1.0, 2.0], 3, 1, 0.0, 0.0);
    }

    #[test]
    fn single_process_apps_work() {
        let mut rt = BspRuntime::new(vec![PrefixSum { value: 7 }]);
        rt.run(10);
        assert_eq!(rt.procs()[0].value, 7);

        let initial = vec![1.0, 2.0, 3.0];
        let expected = sequential_stencil(&initial, 3, 0.0, 0.0);
        let mut rt = BspRuntime::new(Stencil1d::partition(&initial, 1, 3, 0.0, 0.0));
        rt.run(10);
        assert_eq!(rt.procs()[0].cells, expected);
    }
}
