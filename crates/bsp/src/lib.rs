//! # integrade-bsp
//!
//! Bulk Synchronous Parallel runtime with superstep checkpointing — the
//! parallel-computation model InteGrade adopts (§3 of the paper): "InteGrade
//! adopts BSP as the model for parallel computation; imposing frequent
//! synchronizations among application nodes", whose barriers provide the
//! machine-independent milestones needed to resume or migrate applications
//! when desktop owners reclaim their machines.
//!
//! * [`program`] — the [`program::BspProgram`] trait and superstep context.
//! * [`runtime`] — deterministic superstep execution with barrier semantics.
//! * [`mod@checkpoint`] — CDR-marshalled global checkpoints, rollback recovery.
//! * [`cost`] — Valiant's `w + g·h + l` cost model, parameterised from
//!   network paths for topology-aware scheduling.
//! * [`apps`] — prefix-sum, PageRank and Jacobi stencil example programs.
//!
//! # Examples
//!
//! ```
//! use integrade_bsp::apps::PrefixSum;
//! use integrade_bsp::runtime::BspRuntime;
//!
//! let mut rt = BspRuntime::new((1..=4).map(|value| PrefixSum { value }).collect::<Vec<_>>());
//! rt.run(16);
//! let sums: Vec<i64> = rt.procs().iter().map(|p| p.value).collect();
//! assert_eq!(sums, vec![1, 3, 6, 10]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod checkpoint;
pub mod cost;
pub mod program;
pub mod runtime;

pub use checkpoint::{checkpoint, restore, CheckpointPolicy, GlobalCheckpoint, RestoreError};
pub use cost::{BspMachine, CostLedger};
pub use program::{BspContext, BspProgram, ProcId, StepOutcome};
pub use runtime::{BspRuntime, BspStats, RunResult};
