//! Superstep-boundary checkpointing and rollback recovery.
//!
//! The paper: "We still need a model that saves the state of computation
//! periodically, providing milestones that can be used to resume the
//! application in case of crashes or when there is need for migration" (§3).
//! BSP's barrier is that milestone: at a superstep boundary the global state
//! is exactly (process states, committed inboxes), with no in-flight
//! communication to reconcile — the very problem the paper says makes
//! general parallel checkpointing "prohibitive".
//!
//! [`GlobalCheckpoint`] marshals that state with CDR, the same machine-
//! independent encoding as the protocol messages, so a checkpoint taken on
//! one (simulated) architecture restores on any other.

use crate::program::{BspProgram, ProcId};
use crate::runtime::BspRuntime;
use integrade_orb::cdr::{CdrDecode, CdrEncode, CdrError, CdrReader, CdrWriter};

/// A marshalled, machine-independent snapshot of a BSP job at a superstep
/// boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalCheckpoint {
    /// Superstep index at which the snapshot was taken (the next to run).
    pub superstep: u64,
    /// Whether the job had already halted.
    pub halted: bool,
    /// CDR-encoded state per process.
    pub proc_states: Vec<Vec<u8>>,
    /// CDR-encoded committed inbox per process: sequences of (sender, msg).
    pub inboxes: Vec<Vec<u8>>,
}

impl GlobalCheckpoint {
    /// Total marshalled size in bytes — the paper's checkpoint overhead.
    pub fn size_bytes(&self) -> usize {
        self.proc_states.iter().map(Vec::len).sum::<usize>()
            + self.inboxes.iter().map(Vec::len).sum::<usize>()
            + 16
    }
}

impl CdrEncode for GlobalCheckpoint {
    fn encode(&self, w: &mut CdrWriter) {
        self.superstep.encode(w);
        self.halted.encode(w);
        (self.proc_states.len() as u32).encode(w);
        for s in &self.proc_states {
            (s.len() as u32).encode(w);
            w.write_bytes(s);
        }
        for s in &self.inboxes {
            (s.len() as u32).encode(w);
            w.write_bytes(s);
        }
    }
}

impl CdrDecode for GlobalCheckpoint {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        let superstep = u64::decode(r)?;
        let halted = bool::decode(r)?;
        let n = u32::decode(r)? as usize;
        let mut proc_states = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::decode(r)? as usize;
            proc_states.push(r.read_bytes(len)?.to_vec());
        }
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::decode(r)? as usize;
            inboxes.push(r.read_bytes(len)?.to_vec());
        }
        Ok(GlobalCheckpoint {
            superstep,
            halted,
            proc_states,
            inboxes,
        })
    }
}

/// Error restoring from a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// A process state or inbox failed to unmarshal.
    Corrupt(CdrError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Corrupt(e) => write!(f, "checkpoint is corrupt: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<CdrError> for RestoreError {
    fn from(e: CdrError) -> Self {
        RestoreError::Corrupt(e)
    }
}

fn encode_inbox<M: CdrEncode>(inbox: &[(ProcId, M)]) -> Vec<u8> {
    let mut w = CdrWriter::new();
    (inbox.len() as u32).encode(&mut w);
    for (from, message) in inbox {
        (*from as u32).encode(&mut w);
        message.encode(&mut w);
    }
    w.into_bytes()
}

fn decode_inbox<M: CdrDecode>(bytes: &[u8]) -> Result<Vec<(ProcId, M)>, CdrError> {
    let mut r = CdrReader::new(bytes);
    let len = u32::decode(&mut r)? as usize;
    let mut out = Vec::with_capacity(len.min(1024));
    for _ in 0..len {
        let from = u32::decode(&mut r)? as ProcId;
        let message = M::decode(&mut r)?;
        out.push((from, message));
    }
    r.finish()?;
    Ok(out)
}

/// Takes a checkpoint of `runtime` at its current superstep boundary.
pub fn checkpoint<P: BspProgram>(runtime: &BspRuntime<P>) -> GlobalCheckpoint {
    GlobalCheckpoint {
        superstep: runtime.superstep() as u64,
        halted: runtime.is_halted(),
        proc_states: runtime.procs().iter().map(|p| p.to_cdr_bytes()).collect(),
        inboxes: runtime.inboxes().iter().map(|i| encode_inbox(i)).collect(),
    }
}

/// Restores a runtime from a checkpoint (rollback recovery / migration).
///
/// # Errors
///
/// Fails if any marshalled state is corrupt.
pub fn restore<P: BspProgram>(ckpt: &GlobalCheckpoint) -> Result<BspRuntime<P>, RestoreError> {
    let mut procs = Vec::with_capacity(ckpt.proc_states.len());
    for bytes in &ckpt.proc_states {
        procs.push(P::from_cdr_bytes(bytes)?);
    }
    let mut inboxes = Vec::with_capacity(ckpt.inboxes.len());
    for bytes in &ckpt.inboxes {
        inboxes.push(decode_inbox::<P::Message>(bytes)?);
    }
    Ok(BspRuntime::from_parts(
        procs,
        inboxes,
        ckpt.superstep as usize,
        ckpt.halted,
    ))
}

/// When to checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after every `k` supersteps; `0` disables checkpointing.
    pub every_supersteps: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `k` supersteps.
    pub const fn every(k: usize) -> Self {
        CheckpointPolicy {
            every_supersteps: k,
        }
    }

    /// Never checkpoint.
    pub const fn disabled() -> Self {
        CheckpointPolicy {
            every_supersteps: 0,
        }
    }

    /// Whether a checkpoint is due after `superstep` completed supersteps.
    pub fn due_at(&self, superstep: usize) -> bool {
        self.every_supersteps > 0
            && superstep > 0
            && superstep.is_multiple_of(self.every_supersteps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BspContext, StepOutcome};
    use crate::runtime::RunResult;

    /// Iterative averaging with neighbours: runs a fixed number of rounds so
    /// mid-run checkpoints are interesting.
    #[derive(Clone, Debug, PartialEq)]
    struct Diffuse {
        value: f64,
        rounds: u64,
    }

    impl CdrEncode for Diffuse {
        fn encode(&self, w: &mut CdrWriter) {
            self.value.encode(w);
            self.rounds.encode(w);
        }
    }
    impl CdrDecode for Diffuse {
        fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
            Ok(Diffuse {
                value: f64::decode(r)?,
                rounds: u64::decode(r)?,
            })
        }
    }
    impl BspProgram for Diffuse {
        type Message = f64;
        fn superstep(&mut self, ctx: &mut BspContext<f64>) -> StepOutcome {
            // Average with whatever arrived, then exchange with neighbours.
            if !ctx.incoming().is_empty() {
                let sum: f64 = ctx.incoming().iter().map(|(_, v)| v).sum();
                self.value = (self.value + sum) / (1.0 + ctx.incoming().len() as f64);
            }
            if ctx.superstep() as u64 >= self.rounds {
                return StepOutcome::Halt;
            }
            let n = ctx.num_procs();
            ctx.send((ctx.pid() + 1) % n, self.value);
            ctx.send((ctx.pid() + n - 1) % n, self.value);
            StepOutcome::Continue
        }
    }

    fn job(n: usize, rounds: u64) -> BspRuntime<Diffuse> {
        BspRuntime::new(
            (0..n)
                .map(|i| Diffuse {
                    value: i as f64,
                    rounds,
                })
                .collect(),
        )
    }

    #[test]
    fn restore_resumes_identically() {
        // Run to completion straight through.
        let mut reference = job(6, 10);
        reference.run(100);

        // Run halfway, checkpoint, restore, finish.
        let mut first_half = job(6, 10);
        for _ in 0..5 {
            first_half.step();
        }
        let ckpt = checkpoint(&first_half);
        let mut resumed: BspRuntime<Diffuse> = restore(&ckpt).unwrap();
        assert_eq!(resumed.superstep(), 5);
        resumed.run(100);

        assert_eq!(
            resumed.procs(),
            reference.procs(),
            "bitwise-identical results"
        );
        assert_eq!(resumed.superstep(), reference.superstep());
    }

    #[test]
    fn checkpoint_includes_inflight_messages() {
        let mut rt = job(4, 10);
        rt.step(); // messages now committed for superstep 1
        let ckpt = checkpoint(&rt);
        // Inboxes are non-trivial.
        assert!(ckpt.inboxes.iter().any(|b| b.len() > 4));
        let resumed: BspRuntime<Diffuse> = restore(&ckpt).unwrap();
        assert_eq!(resumed.inboxes().iter().map(Vec::len).sum::<usize>(), 8);
    }

    #[test]
    fn checkpoint_wire_round_trip() {
        let mut rt = job(3, 4);
        rt.step();
        let ckpt = checkpoint(&rt);
        let bytes = ckpt.to_cdr_bytes();
        let back = GlobalCheckpoint::from_cdr_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert!(ckpt.size_bytes() > 0);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let rt = job(2, 2);
        let mut ckpt = checkpoint(&rt);
        ckpt.proc_states[0] = vec![1, 2, 3]; // garbage
        assert!(matches!(
            restore::<Diffuse>(&ckpt),
            Err(RestoreError::Corrupt(_))
        ));
    }

    #[test]
    fn restore_of_completed_job_stays_halted() {
        let mut rt = job(3, 2);
        assert_eq!(rt.run(100), RunResult::Completed { supersteps: 3 });
        let ckpt = checkpoint(&rt);
        let resumed: BspRuntime<Diffuse> = restore(&ckpt).unwrap();
        assert!(resumed.is_halted());
    }

    #[test]
    fn policy_schedule() {
        let p = CheckpointPolicy::every(3);
        assert!(!p.due_at(0));
        assert!(!p.due_at(2));
        assert!(p.due_at(3));
        assert!(p.due_at(6));
        assert!(!CheckpointPolicy::disabled().due_at(3));
    }

    #[test]
    fn lost_work_bounded_by_checkpoint_interval() {
        // Simulate a crash at superstep 7 with checkpoints every 3: recovery
        // re-executes from superstep 6, losing exactly 1 superstep of work.
        let policy = CheckpointPolicy::every(3);
        let mut rt = job(5, 20);
        let mut last_ckpt = checkpoint(&rt);
        for step in 1..=7 {
            rt.step();
            if policy.due_at(step) {
                last_ckpt = checkpoint(&rt);
            }
        }
        // "Crash": discard rt, restore.
        let resumed: BspRuntime<Diffuse> = restore(&last_ckpt).unwrap();
        assert_eq!(resumed.superstep(), 6);
        let lost = 7 - resumed.superstep();
        assert!(lost < policy.every_supersteps);
    }
}
