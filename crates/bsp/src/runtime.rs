//! The BSP runtime: superstep execution with barrier semantics.
//!
//! [`BspRuntime`] owns the process states and inboxes of one job and drives
//! supersteps: every live process computes on the messages delivered to it,
//! sends are buffered, the barrier commits them for the next superstep. The
//! job finishes when every process votes [`StepOutcome::Halt`] in the same
//! superstep.
//!
//! Execution is deterministic: processes run in pid order and message
//! delivery preserves (sender, send-order), so a checkpoint/restore or a
//! re-run from the same state produces identical results — the property the
//! grid layer relies on when it migrates work between nodes.

use crate::program::{BspContext, BspProgram, ProcId, StepOutcome};
use integrade_orb::cdr::CdrEncode;
use serde::{Deserialize, Serialize};

/// Aggregate statistics for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BspStats {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Total messages exchanged.
    pub messages: u64,
    /// Total marshalled message bytes (CDR size).
    pub message_bytes: u64,
    /// Largest h-relation observed (max per-process in+out degree in one
    /// superstep) — the `h` of the BSP cost model.
    pub max_h_relation: u64,
}

/// Result of driving the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// Every process voted halt.
    Completed {
        /// Supersteps executed in total.
        supersteps: usize,
    },
    /// The superstep budget ran out first.
    BudgetExhausted,
}

/// One BSP job's execution state.
///
/// # Examples
///
/// ```
/// use integrade_bsp::program::{BspContext, BspProgram, StepOutcome};
/// use integrade_bsp::runtime::BspRuntime;
/// use integrade_orb::cdr::{CdrDecode, CdrEncode, CdrError, CdrReader, CdrWriter};
///
/// // Each process adds its pid to a ring token until it has gone around.
/// #[derive(Clone, Debug)]
/// struct Ring { total: u64, hops: u64 }
/// impl CdrEncode for Ring {
///     fn encode(&self, w: &mut CdrWriter) { self.total.encode(w); self.hops.encode(w); }
/// }
/// impl CdrDecode for Ring {
///     fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
///         Ok(Ring { total: u64::decode(r)?, hops: u64::decode(r)? })
///     }
/// }
/// impl BspProgram for Ring {
///     type Message = u64;
///     fn superstep(&mut self, ctx: &mut BspContext<u64>) -> StepOutcome {
///         if ctx.superstep() == 0 && ctx.pid() == 0 {
///             ctx.send(1 % ctx.num_procs(), 0);
///             return StepOutcome::Continue;
///         }
///         let incoming: Vec<u64> = ctx.incoming().iter().map(|&(_, v)| v).collect();
///         for v in incoming {
///             self.hops += 1;
///             let acc = v + ctx.pid() as u64;
///             if ctx.pid() == 0 {
///                 self.total = acc;
///                 return StepOutcome::Halt;
///             }
///             ctx.send((ctx.pid() + 1) % ctx.num_procs(), acc);
///         }
///         StepOutcome::Continue
///     }
/// }
///
/// let mut rt = BspRuntime::new(vec![Ring { total: 0, hops: 0 }; 4]);
/// rt.run(100);
/// assert_eq!(rt.procs()[0].total, 1 + 2 + 3);
/// ```
#[derive(Debug, Clone)]
pub struct BspRuntime<P: BspProgram> {
    procs: Vec<P>,
    inboxes: Vec<Vec<(ProcId, P::Message)>>,
    superstep: usize,
    halted: bool,
    stats: BspStats,
}

impl<P: BspProgram> BspRuntime<P> {
    /// Creates a runtime over the initial process states.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty.
    pub fn new(procs: Vec<P>) -> Self {
        assert!(!procs.is_empty(), "a BSP job needs at least one process");
        let n = procs.len();
        BspRuntime {
            procs,
            inboxes: (0..n).map(|_| Vec::new()).collect(),
            superstep: 0,
            halted: false,
            stats: BspStats::default(),
        }
    }

    /// Number of processes.
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Current superstep index (the next one to execute).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// True once every process has voted halt in one superstep.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The process states (for result extraction).
    pub fn procs(&self) -> &[P] {
        &self.procs
    }

    /// Statistics so far.
    pub fn stats(&self) -> BspStats {
        self.stats
    }

    /// Pending inboxes (messages committed for the next superstep).
    pub(crate) fn inboxes(&self) -> &[Vec<(ProcId, P::Message)>] {
        &self.inboxes
    }

    /// Rebuilds a runtime from restored parts (checkpoint recovery).
    pub(crate) fn from_parts(
        procs: Vec<P>,
        inboxes: Vec<Vec<(ProcId, P::Message)>>,
        superstep: usize,
        halted: bool,
    ) -> Self {
        assert_eq!(procs.len(), inboxes.len(), "one inbox per process");
        BspRuntime {
            procs,
            inboxes,
            superstep,
            halted,
            stats: BspStats::default(),
        }
    }

    /// Executes one superstep: compute on all processes, then the barrier
    /// (message commit). Returns `true` if the job halted in this superstep.
    ///
    /// # Panics
    ///
    /// Panics if called after the job halted.
    pub fn step(&mut self) -> bool {
        assert!(!self.halted, "job already halted");
        let n = self.procs.len();
        let mut next_inboxes: Vec<Vec<(ProcId, P::Message)>> = (0..n).map(|_| Vec::new()).collect();
        let mut all_halt = true;
        let mut out_degree = vec![0u64; n];
        let mut in_degree = vec![0u64; n];

        #[allow(clippy::needless_range_loop)] // pid is an identity, not just an index
        for pid in 0..n {
            let inbox = std::mem::take(&mut self.inboxes[pid]);
            let mut ctx = BspContext::new(pid, n, self.superstep, inbox);
            let outcome = self.procs[pid].superstep(&mut ctx);
            if outcome == StepOutcome::Continue {
                all_halt = false;
            }
            for (to, message) in ctx.into_outbox() {
                self.stats.messages += 1;
                self.stats.message_bytes += message.to_cdr_bytes().len() as u64;
                out_degree[pid] += 1;
                in_degree[to] += 1;
                next_inboxes[to].push((pid, message));
            }
        }
        // Barrier: commit messages.
        self.inboxes = next_inboxes;
        self.superstep += 1;
        self.stats.supersteps += 1;
        let h = out_degree
            .iter()
            .zip(&in_degree)
            .map(|(o, i)| o + i)
            .max()
            .unwrap_or(0);
        self.stats.max_h_relation = self.stats.max_h_relation.max(h);
        // A unanimous halt with no pending messages ends the job; halting
        // with messages in flight would lose them, so keep running.
        if all_halt && self.inboxes.iter().all(Vec::is_empty) {
            self.halted = true;
        }
        self.halted
    }

    /// Runs until halt or `max_supersteps` more supersteps.
    pub fn run(&mut self, max_supersteps: usize) -> RunResult {
        for _ in 0..max_supersteps {
            if self.halted {
                break;
            }
            if self.step() {
                break;
            }
        }
        if self.halted {
            RunResult::Completed {
                supersteps: self.superstep,
            }
        } else {
            RunResult::BudgetExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use integrade_orb::cdr::{CdrDecode, CdrError, CdrReader, CdrWriter};

    /// Every process sends its value to pid 0, which sums; used across the
    /// runtime tests.
    #[derive(Clone, Debug, PartialEq)]
    struct SumToZero {
        value: u64,
        total: u64,
    }

    impl CdrEncode for SumToZero {
        fn encode(&self, w: &mut CdrWriter) {
            self.value.encode(w);
            self.total.encode(w);
        }
    }
    impl CdrDecode for SumToZero {
        fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
            Ok(SumToZero {
                value: u64::decode(r)?,
                total: u64::decode(r)?,
            })
        }
    }
    impl BspProgram for SumToZero {
        type Message = u64;
        fn superstep(&mut self, ctx: &mut BspContext<u64>) -> StepOutcome {
            match ctx.superstep() {
                0 => {
                    if ctx.pid() != 0 {
                        ctx.send(0, self.value);
                    }
                    StepOutcome::Continue
                }
                _ => {
                    if ctx.pid() == 0 {
                        self.total =
                            self.value + ctx.incoming().iter().map(|(_, v)| v).sum::<u64>();
                    }
                    StepOutcome::Halt
                }
            }
        }
    }

    fn sum_job(n: u64) -> BspRuntime<SumToZero> {
        BspRuntime::new((0..n).map(|value| SumToZero { value, total: 0 }).collect())
    }

    #[test]
    fn sum_reduction_completes() {
        let mut rt = sum_job(8);
        let result = rt.run(10);
        assert_eq!(result, RunResult::Completed { supersteps: 2 });
        assert_eq!(rt.procs()[0].total, (0..8).sum::<u64>());
        assert!(rt.is_halted());
    }

    #[test]
    fn messages_delivered_next_superstep_only() {
        // In superstep 0 nothing has arrived yet.
        #[derive(Clone, Debug)]
        struct Probe {
            saw_early: bool,
            saw_late: bool,
        }
        impl CdrEncode for Probe {
            fn encode(&self, w: &mut CdrWriter) {
                self.saw_early.encode(w);
                self.saw_late.encode(w);
            }
        }
        impl CdrDecode for Probe {
            fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
                Ok(Probe {
                    saw_early: bool::decode(r)?,
                    saw_late: bool::decode(r)?,
                })
            }
        }
        impl BspProgram for Probe {
            type Message = u8;
            fn superstep(&mut self, ctx: &mut BspContext<u8>) -> StepOutcome {
                match ctx.superstep() {
                    0 => {
                        self.saw_early = !ctx.incoming().is_empty();
                        let peer = (ctx.pid() + 1) % ctx.num_procs();
                        ctx.send(peer, 1);
                        StepOutcome::Continue
                    }
                    _ => {
                        self.saw_late = !ctx.incoming().is_empty();
                        StepOutcome::Halt
                    }
                }
            }
        }
        let mut rt = BspRuntime::new(vec![
            Probe {
                saw_early: false,
                saw_late: false
            };
            3
        ]);
        rt.run(5);
        for p in rt.procs() {
            assert!(!p.saw_early, "no deliveries in superstep 0");
            assert!(p.saw_late, "deliveries arrive in superstep 1");
        }
    }

    #[test]
    fn stats_track_traffic() {
        let mut rt = sum_job(5);
        rt.run(10);
        let stats = rt.stats();
        assert_eq!(stats.supersteps, 2);
        assert_eq!(stats.messages, 4);
        assert_eq!(stats.message_bytes, 4 * 8); // u64 CDR = 8 bytes each
        assert_eq!(stats.max_h_relation, 4); // pid 0 receives 4
    }

    #[test]
    fn halt_with_inflight_messages_keeps_running() {
        // A process that halts immediately but is sent a message: the job
        // must survive to deliver it.
        #[derive(Clone, Debug)]
        struct Lazy {
            received: u64,
        }
        impl CdrEncode for Lazy {
            fn encode(&self, w: &mut CdrWriter) {
                self.received.encode(w);
            }
        }
        impl CdrDecode for Lazy {
            fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
                Ok(Lazy {
                    received: u64::decode(r)?,
                })
            }
        }
        impl BspProgram for Lazy {
            type Message = u64;
            fn superstep(&mut self, ctx: &mut BspContext<u64>) -> StepOutcome {
                self.received += ctx.incoming().len() as u64;
                if ctx.superstep() == 0 && ctx.pid() == 0 {
                    ctx.send(1, 42);
                }
                StepOutcome::Halt
            }
        }
        let mut rt = BspRuntime::new(vec![Lazy { received: 0 }; 2]);
        let result = rt.run(10);
        assert_eq!(result, RunResult::Completed { supersteps: 2 });
        assert_eq!(rt.procs()[1].received, 1, "in-flight message must arrive");
    }

    #[test]
    fn budget_exhaustion_reported() {
        #[derive(Clone, Debug)]
        struct Forever;
        impl CdrEncode for Forever {
            fn encode(&self, _w: &mut CdrWriter) {}
        }
        impl CdrDecode for Forever {
            fn decode(_r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
                Ok(Forever)
            }
        }
        impl BspProgram for Forever {
            type Message = u8;
            fn superstep(&mut self, _ctx: &mut BspContext<u8>) -> StepOutcome {
                StepOutcome::Continue
            }
        }
        let mut rt = BspRuntime::new(vec![Forever; 2]);
        assert_eq!(rt.run(5), RunResult::BudgetExhausted);
        assert_eq!(rt.superstep(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_job_panics() {
        BspRuntime::<SumToZero>::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "already halted")]
    fn stepping_after_halt_panics() {
        let mut rt = sum_job(2);
        rt.run(10);
        rt.step();
    }

    #[test]
    fn deterministic_replay() {
        let mut a = sum_job(6);
        let mut b = sum_job(6);
        a.run(10);
        b.run(10);
        assert_eq!(a.procs(), b.procs());
        assert_eq!(a.stats(), b.stats());
    }
}
