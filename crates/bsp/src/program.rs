//! The BSP programming model.
//!
//! InteGrade "adopts BSP \[Val90\] as the model for parallel computation;
//! imposing frequent synchronizations among application nodes" (§3). A BSP
//! program is a set of processes that proceed in *supersteps*: local
//! computation, message exchange, barrier. Messages sent in superstep *s*
//! are delivered at the start of superstep *s + 1*.
//!
//! A program is a state type implementing [`BspProgram`]; the runtime calls
//! [`BspProgram::superstep`] once per process per superstep with a
//! [`BspContext`] carrying the delivered messages and collecting sends.
//! State and messages must be CDR-marshallable so checkpoints are machine-
//! independent — the property the paper needs for migration across
//! heterogeneous grid nodes.

use integrade_orb::cdr::{CdrDecode, CdrEncode};

/// Logical process id within a BSP job, `0..num_procs`.
pub type ProcId = usize;

/// What a process wants after a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Keep running.
    Continue,
    /// Vote to halt; the job ends when every process votes halt in the same
    /// superstep.
    Halt,
}

/// Per-process view of one superstep.
#[derive(Debug)]
pub struct BspContext<M> {
    pid: ProcId,
    num_procs: usize,
    superstep: usize,
    inbox: Vec<(ProcId, M)>,
    outbox: Vec<(ProcId, M)>,
}

impl<M> BspContext<M> {
    /// Creates the context the runtime hands to a process.
    pub(crate) fn new(
        pid: ProcId,
        num_procs: usize,
        superstep: usize,
        inbox: Vec<(ProcId, M)>,
    ) -> Self {
        BspContext {
            pid,
            num_procs,
            superstep,
            inbox,
            outbox: Vec::new(),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Total processes in the job.
    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    /// Current superstep index (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Messages delivered this superstep, each with its sender.
    pub fn incoming(&self) -> &[(ProcId, M)] {
        &self.inbox
    }

    /// Sends `message` to process `to`, for delivery next superstep.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn send(&mut self, to: ProcId, message: M) {
        assert!(to < self.num_procs, "send to unknown process {to}");
        self.outbox.push((to, message));
    }

    /// Broadcasts a clone of `message` to every other process.
    pub fn broadcast(&mut self, message: M)
    where
        M: Clone,
    {
        for to in 0..self.num_procs {
            if to != self.pid {
                self.outbox.push((to, message.clone()));
            }
        }
    }

    /// Consumes the context, yielding the sends.
    pub(crate) fn into_outbox(self) -> Vec<(ProcId, M)> {
        self.outbox
    }
}

/// A BSP program: per-process state plus the superstep function.
///
/// The state type *is* the process; the runtime owns `num_procs` values of
/// it. CDR bounds make every program checkpointable.
pub trait BspProgram: CdrEncode + CdrDecode + Clone {
    /// The inter-process message type.
    type Message: CdrEncode + CdrDecode + Clone;

    /// Executes one superstep: read [`BspContext::incoming`], compute, and
    /// [`BspContext::send`] for the next superstep.
    fn superstep(&mut self, ctx: &mut BspContext<Self::Message>) -> StepOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors() {
        let ctx: BspContext<u32> = BspContext::new(2, 4, 7, vec![(0, 5)]);
        assert_eq!(ctx.pid(), 2);
        assert_eq!(ctx.num_procs(), 4);
        assert_eq!(ctx.superstep(), 7);
        assert_eq!(ctx.incoming(), &[(0, 5)]);
    }

    #[test]
    fn send_collects_outbox() {
        let mut ctx: BspContext<u32> = BspContext::new(0, 3, 0, vec![]);
        ctx.send(1, 10);
        ctx.send(2, 20);
        assert_eq!(ctx.into_outbox(), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut ctx: BspContext<u32> = BspContext::new(1, 3, 0, vec![]);
        ctx.broadcast(9);
        assert_eq!(ctx.into_outbox(), vec![(0, 9), (2, 9)]);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn send_out_of_range_panics() {
        let mut ctx: BspContext<u32> = BspContext::new(0, 2, 0, vec![]);
        ctx.send(5, 1);
    }
}
