//! The BSP cost model.
//!
//! Valiant's bridging model prices a superstep at `w + g·h + l`: maximum
//! local work, the h-relation routed at gap `g`, and the barrier latency
//! `l`. InteGrade's topology-aware scheduler uses this to score candidate
//! placements: `g` and `l` derive from the network paths between the chosen
//! nodes, so a placement split across a slow inter-cluster link prices out
//! worse than one inside a fast LAN — quantifying the paper's virtual-
//! topology requirement.

use crate::runtime::BspStats;
use integrade_simnet::time::SimDuration;
use integrade_simnet::topology::PathQuality;
use serde::{Deserialize, Serialize};

/// Machine parameters of a (virtual) BSP computer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BspMachine {
    /// Seconds of compute per unit of local work (1 / effective speed).
    pub seconds_per_work_unit: f64,
    /// Gap `g`: seconds per message of the h-relation.
    pub g_seconds_per_message: f64,
    /// Barrier latency `l` in seconds.
    pub l_seconds: f64,
}

impl BspMachine {
    /// Derives machine parameters from the *worst* network path among the
    /// assigned nodes and the slowest node speed.
    ///
    /// * `worst_path` — the weakest pairwise link in the placement.
    /// * `min_mips` — slowest node's speed in MIPS.
    /// * `avg_message_bytes` — expected message size for `g`.
    ///
    /// # Panics
    ///
    /// Panics if `min_mips` is zero.
    pub fn from_placement(worst_path: PathQuality, min_mips: u64, avg_message_bytes: u64) -> Self {
        assert!(min_mips > 0, "node speed must be positive");
        let g = worst_path.transfer_time(avg_message_bytes).as_secs_f64();
        // A barrier is a round of small messages: 2x latency as a simple model.
        let l = 2.0 * worst_path.latency.as_secs_f64();
        BspMachine {
            seconds_per_work_unit: 1.0 / (min_mips as f64 * 1e6),
            g_seconds_per_message: g,
            l_seconds: l,
        }
    }

    /// Cost in seconds of one superstep with `w` work units (max over
    /// processes) and an h-relation of `h` messages.
    pub fn superstep_seconds(&self, w: u64, h: u64) -> f64 {
        w as f64 * self.seconds_per_work_unit
            + h as f64 * self.g_seconds_per_message
            + self.l_seconds
    }

    /// Estimated runtime of a whole job from its measured statistics and a
    /// per-superstep work figure.
    pub fn estimate_runtime(&self, stats: &BspStats, work_per_superstep: u64) -> SimDuration {
        let per_step = self.superstep_seconds(work_per_superstep, stats.max_h_relation);
        SimDuration::from_secs_f64(per_step * stats.supersteps as f64)
    }
}

/// Accumulates per-superstep costs for reporting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostLedger {
    /// (w, h, seconds) per superstep.
    pub entries: Vec<(u64, u64, f64)>,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one superstep.
    pub fn record(&mut self, machine: &BspMachine, w: u64, h: u64) {
        self.entries.push((w, h, machine.superstep_seconds(w, h)));
    }

    /// Total modelled seconds.
    pub fn total_seconds(&self) -> f64 {
        self.entries.iter().map(|(_, _, s)| s).sum()
    }

    /// Fraction of total time spent in communication + barrier (the part a
    /// bad placement inflates).
    pub fn comm_fraction(&self, machine: &BspMachine) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            return 0.0;
        }
        let comm: f64 = self
            .entries
            .iter()
            .map(|(_, h, _)| *h as f64 * machine.g_seconds_per_message + machine.l_seconds)
            .sum();
        comm / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use integrade_simnet::time::SimDuration;

    fn lan_path() -> PathQuality {
        PathQuality {
            latency: SimDuration::from_micros(400),
            bottleneck_bps: 100_000_000,
            hops: 2,
        }
    }

    fn wan_path() -> PathQuality {
        PathQuality {
            latency: SimDuration::from_millis(20),
            bottleneck_bps: 10_000_000,
            hops: 4,
        }
    }

    #[test]
    fn superstep_cost_composition() {
        let m = BspMachine {
            seconds_per_work_unit: 1e-6,
            g_seconds_per_message: 1e-3,
            l_seconds: 0.01,
        };
        let cost = m.superstep_seconds(1000, 10);
        assert!((cost - (0.001 + 0.01 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn wan_placement_costs_more_than_lan() {
        let lan = BspMachine::from_placement(lan_path(), 500, 1024);
        let wan = BspMachine::from_placement(wan_path(), 500, 1024);
        assert!(wan.g_seconds_per_message > lan.g_seconds_per_message);
        assert!(wan.l_seconds > lan.l_seconds);
        assert!(wan.superstep_seconds(1000, 20) > lan.superstep_seconds(1000, 20));
    }

    #[test]
    fn estimate_scales_with_supersteps() {
        let m = BspMachine::from_placement(lan_path(), 500, 256);
        let short = BspStats {
            supersteps: 10,
            max_h_relation: 4,
            ..Default::default()
        };
        let long = BspStats {
            supersteps: 100,
            max_h_relation: 4,
            ..Default::default()
        };
        let t_short = m.estimate_runtime(&short, 10_000);
        let t_long = m.estimate_runtime(&long, 10_000);
        assert_eq!(t_long.as_micros(), t_short.as_micros() * 10);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mips_panics() {
        BspMachine::from_placement(lan_path(), 0, 64);
    }

    #[test]
    fn ledger_accumulates_and_attributes() {
        let m = BspMachine {
            seconds_per_work_unit: 0.0,
            g_seconds_per_message: 1.0,
            l_seconds: 0.5,
        };
        let mut ledger = CostLedger::new();
        ledger.record(&m, 0, 2); // 2.5 s, all comm
        ledger.record(&m, 0, 0); // 0.5 s, all comm
        assert!((ledger.total_seconds() - 3.0).abs() < 1e-12);
        assert!((ledger.comm_fraction(&m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let m = BspMachine::from_placement(lan_path(), 100, 64);
        assert_eq!(CostLedger::new().total_seconds(), 0.0);
        assert_eq!(CostLedger::new().comm_fraction(&m), 0.0);
    }
}
