//! # integrade-simnet
//!
//! Deterministic discrete-event simulation substrate for the InteGrade grid
//! middleware reproduction.
//!
//! The InteGrade paper (Goldchleger et al., Middleware 2003) describes grid
//! middleware deployed over campus networks of desktop machines. This crate
//! provides the virtual world those experiments run in:
//!
//! * [`time`] — virtual clock types ([`time::SimTime`], [`time::SimDuration`]).
//! * [`rng`] — deterministic random number generation so every experiment
//!   replays bit-for-bit from a seed.
//! * [`event`] — the event queue and simulation driver.
//! * [`topology`] — hosts, switches, links, clusters, latency-based routing.
//! * [`net`] — message-level delivery delays with NIC egress queueing.
//! * [`faults`] — deterministic fault injection (drops, jitter, partitions,
//!   host outages) threaded through the network.
//! * [`trace`] — event trace recording for tests and harnesses.
//!
//! # Examples
//!
//! Simulate two hosts pinging through a switch:
//!
//! ```
//! use integrade_simnet::event::{EventQueue, World, run_to_completion};
//! use integrade_simnet::net::Network;
//! use integrade_simnet::time::SimTime;
//! use integrade_simnet::topology::{HostId, LinkSpec, Topology};
//!
//! struct Ping {
//!     net: Network,
//!     a: HostId,
//!     b: HostId,
//!     replies: u32,
//! }
//!
//! enum Ev { Deliver { to: HostId } }
//!
//! impl World for Ping {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Deliver { to } if to == self.b => {
//!                 // Pong back.
//!                 let d = self.net.send(now, self.b, self.a, 64).unwrap();
//!                 q.schedule_after(d, Ev::Deliver { to: self.a });
//!             }
//!             Ev::Deliver { .. } => self.replies += 1,
//!         }
//!     }
//! }
//!
//! let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
//! let mut net = Network::new(topo);
//! let mut queue = EventQueue::new();
//! let d = net.send(SimTime::ZERO, hosts[0], hosts[1], 64).unwrap();
//! queue.schedule_after(d, Ev::Deliver { to: hosts[1] });
//! let mut world = Ping { net, a: hosts[0], b: hosts[1], replies: 0 };
//! run_to_completion(&mut world, &mut queue, 100);
//! assert_eq!(world.replies, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod net;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;

pub use event::{run_to_completion, run_until, EventQueue, RunOutcome, World};
pub use faults::{FaultDecision, FaultPlan, HostOutage, Partition};
pub use net::{NetError, NetStats, Network};
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
pub use topology::{ClusterTag, HostId, LinkSpec, PathQuality, Topology, TopologyError};
pub use trace::{TraceLog, TraceRecord};
