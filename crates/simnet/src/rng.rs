//! Deterministic pseudo-random number generation.
//!
//! Experiments must replay bit-for-bit across platforms and runs, so the
//! simulator ships its own small generators instead of depending on external
//! RNG crates whose stream definitions may change between versions:
//!
//! * [`SplitMix64`] — used for seeding and cheap hashing-style streams.
//! * [`Pcg32`] — PCG-XSH-RR 64/32, the general-purpose generator.
//!
//! [`DetRng`] wraps `Pcg32` with the distribution helpers the rest of the
//! workspace needs (uniform ranges, Bernoulli, exponential, normal, shuffle,
//! weighted choice).

use serde::{Deserialize, Serialize};

/// The registry of well-known stream ids.
///
/// Every independent stochastic process in the workspace draws from its own
/// [`Pcg32`] stream so adding draws to one process never perturbs another.
/// The ids live here, in one place, so the per-shard family can be *proven*
/// disjoint from every global stream (see `shard` and the property tests).
///
/// Two streams collide iff their PCG increments collide; the increment is
/// `(stream << 1) | 1`, so ids are distinct whenever their low 63 bits are.
pub mod streams {
    /// The grid world's scheduling/ranking stream (`b"GRID"`).
    pub const GRID_WORLD: u64 = 0x4752_4944;
    /// Retransmission/backoff jitter (`b"RETY"`).
    pub const RETRY: u64 = 0x5245_5459;
    /// The default stream of [`DetRng::new`](super::DetRng::new).
    pub const DEFAULT: u64 = 0xDA3E_39CB_94B9_5BDB;
    /// The federation's wide-area stream (`b"FEDE"`): WAN fault decisions,
    /// request ids for inter-cluster protocol messages. Lives beside the
    /// member grids' streams so a federation run never perturbs any member
    /// cluster's own deterministic draws.
    pub const FED: u64 = 0x4645_4445;
    /// Base of the per-shard stream family (`b"SHRD"` shifted clear of the
    /// global ids). Shard `i` owns stream `SHARD_BASE | i`.
    pub const SHARD_BASE: u64 = 0x5348_5244_0000_0000;
    /// Shard indices the family reserves ids for.
    pub const MAX_SHARDS: u64 = 64;
    /// Every global (non-shard) stream id, for disjointness checks.
    pub const GLOBALS: [u64; 4] = [GRID_WORLD, RETRY, DEFAULT, FED];

    /// The stream id owned by shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= MAX_SHARDS` — the family only reserves ids for
    /// 64 shards, and silently colliding beyond that would be worse.
    pub fn shard(index: u64) -> u64 {
        assert!(
            index < MAX_SHARDS,
            "shard stream family covers indices 0..{MAX_SHARDS}, got {index}"
        );
        SHARD_BASE | index
    }
}

/// SplitMix64 generator (Steele, Lea, Flood 2014). Primarily a seed expander.
///
/// # Examples
///
/// ```
/// use integrade_simnet::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed and stream id. Distinct stream ids
    /// yield statistically independent sequences for the same seed.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Deterministic RNG with the distribution helpers used across the workspace.
///
/// # Examples
///
/// ```
/// use integrade_simnet::rng::DetRng;
///
/// let mut rng = DetRng::new(7);
/// let x = rng.uniform_f64();
/// assert!((0.0..1.0).contains(&x));
/// let k = rng.uniform_range(10, 20);
/// assert!((10..20).contains(&k));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    pcg: Pcg32,
    /// Cached second normal deviate from the Box–Muller transform.
    spare_normal: Option<u64>, // bit pattern of f64 to keep Eq/serde simple
}

impl DetRng {
    /// Creates a generator on the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, 0xDA3E_39CB_94B9_5BDB)
    }

    /// Creates a generator on an explicit stream; use one stream per
    /// independent stochastic process so adding draws to one process does not
    /// perturb another.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ stream.rotate_left(17));
        DetRng {
            pcg: Pcg32::new(sm.next_u64(), stream),
            spare_normal: None,
        }
    }

    /// Derives a child generator; children with distinct tags are independent.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let seed = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::with_stream(seed, tag | 1)
    }

    /// The deterministic per-shard generator for a sharded tick engine.
    ///
    /// Derived from `(seed, shard)` alone — no global generator is consumed
    /// — so a shard replayed in isolation reproduces exactly the draws it
    /// made inside a full run, and the streams of distinct shards (and the
    /// global [`streams`]) never collide for any shard count up to
    /// [`streams::MAX_SHARDS`].
    ///
    /// # Panics
    ///
    /// Panics when `shard >= streams::MAX_SHARDS`.
    pub fn for_shard(seed: u64, shard: u64) -> DetRng {
        DetRng::with_stream(seed, streams::shard(shard))
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.pcg.next_u64()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[lo, hi)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform_range requires lo < hi, got {lo}..{hi}");
        let span = hi - lo;
        // Rejection sampling to remove modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return lo + v % span;
            }
        }
    }

    /// Returns a uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index requires a non-empty range");
        self.uniform_range(0, len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a uniform jitter in `[-amplitude, amplitude]` — the
    /// symmetric perturbation per-slot measurement noise draws from a
    /// shard-local stream. Exactly one `next_u64` is consumed per call, so
    /// stream advancement is independent of the amplitude.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is negative or not finite.
    pub fn jitter(&mut self, amplitude: f64) -> f64 {
        assert!(
            amplitude.is_finite() && amplitude >= 0.0,
            "jitter amplitude must be finite and >= 0, got {amplitude}"
        );
        (self.uniform_f64() * 2.0 - 1.0) * amplitude
    }

    /// Returns an exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        let u = 1.0 - self.uniform_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Returns a normally distributed value (Box–Muller with caching).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if let Some(bits) = self.spare_normal.take() {
            return mean + std_dev * f64::from_bits(bits);
        }
        let (z0, z1) = loop {
            let u1 = self.uniform_f64();
            let u2 = self.uniform_f64();
            if u1 > f64::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = std::f64::consts::TAU * u2;
                break (r * theta.cos(), r * theta.sin());
            }
        };
        self.spare_normal = Some(z1.to_bits());
        mean + std_dev * z0
    }

    /// Returns a normal deviate clamped to `[lo, hi]`.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Picks an index with probability proportional to `weights[i]`.
    ///
    /// Returns `None` if the slice is empty or all weights are zero/negative.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.uniform_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return Some(i);
                }
                target -= w;
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn pcg_is_deterministic_across_instances() {
        let mut a = Pcg32::new(99, 7);
        let mut b = Pcg32::new(99, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = Pcg32::new(99, 1);
        let mut b = Pcg32::new(99, 2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = DetRng::new(5);
        for _ in 0..10_000 {
            let x = rng.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_range_covers_and_respects_bounds() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.uniform_range(10, 20);
            assert!((10..20).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all values in range should appear");
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_range_empty_panics() {
        DetRng::new(1).uniform_range(5, 5);
    }

    #[test]
    fn jitter_is_symmetric_bounded_and_amplitude_independent() {
        let mut rng = DetRng::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let j = rng.jitter(0.05);
            assert!((-0.05..=0.05).contains(&j), "{j}");
            sum += j;
        }
        assert!(sum.abs() < 0.05 * 100.0, "mean should be near zero: {sum}");
        // A zero-amplitude draw still advances the stream by one value, so
        // switching noise on/off never re-aligns later draws differently.
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        assert_eq!(a.jitter(0.0), 0.0);
        let _ = b.jitter(0.3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = DetRng::new(11);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq={freq}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = DetRng::new(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = DetRng::new(17);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
        assert!((var - 9.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move things"
        );
    }

    #[test]
    fn choose_weighted_prefers_heavy_weights() {
        let mut rng = DetRng::new(23);
        let weights = [1.0, 0.0, 9.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[rng.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 9.0).abs() < 1.5, "ratio={ratio}");
    }

    #[test]
    fn choose_weighted_degenerate_cases() {
        let mut rng = DetRng::new(29);
        assert_eq!(rng.choose_weighted(&[]), None);
        assert_eq!(rng.choose_weighted(&[0.0, -1.0, f64::NAN]), None);
        assert_eq!(rng.choose_weighted(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = DetRng::new(31);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn forked_children_are_independent() {
        let mut parent = DetRng::new(101);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    /// The PCG increment `(stream << 1) | 1` only keeps the low 63 bits of
    /// the stream id, so the registry must stay collision-free there too.
    fn effective_inc(stream: u64) -> u64 {
        (stream << 1) | 1
    }

    #[test]
    fn shard_stream_family_is_disjoint_from_globals() {
        for shard in 0..streams::MAX_SHARDS {
            let id = streams::shard(shard);
            for global in streams::GLOBALS {
                assert_ne!(
                    effective_inc(id),
                    effective_inc(global),
                    "shard {shard} collides with global stream {global:#x}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard stream family")]
    fn shard_index_beyond_family_panics() {
        let _ = streams::shard(streams::MAX_SHARDS);
    }

    proptest::proptest! {
        /// For any seed and any shard count up to the family maximum, the
        /// per-shard streams are pairwise distinct, distinct from every
        /// global stream, and their generators produce effectively
        /// independent sequences.
        #[test]
        fn prop_shard_streams_never_collide(
            seed in proptest::prelude::any::<u64>(),
            shards in 1u64..=streams::MAX_SHARDS,
        ) {
            let mut incs: Vec<u64> = (0..shards)
                .map(|s| effective_inc(streams::shard(s)))
                .collect();
            incs.extend(streams::GLOBALS.map(effective_inc));
            let mut sorted = incs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            proptest::prop_assert_eq!(sorted.len(), incs.len(), "stream id collision");

            // Adjacent shard generators must not track each other.
            if shards >= 2 {
                let mut a = DetRng::for_shard(seed, 0);
                let mut b = DetRng::for_shard(seed, 1);
                let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
                proptest::prop_assert!(same < 4, "shard streams track each other");
            }
            // Nor must a shard generator track the global world stream.
            let mut shard0 = DetRng::for_shard(seed, 0);
            let mut world = DetRng::with_stream(seed, streams::GRID_WORLD);
            let same = (0..64).filter(|_| shard0.next_u64() == world.next_u64()).count();
            proptest::prop_assert!(same < 4, "shard stream tracks the world stream");
        }

        /// Replaying a shard in isolation reproduces exactly the draws it
        /// made inside a full run: derivation depends on (seed, shard) only.
        #[test]
        fn prop_shard_replay_reproduces_draws(
            seed in proptest::prelude::any::<u64>(),
            shard in 0u64..streams::MAX_SHARDS,
            draws in 1usize..256,
        ) {
            let mut live = DetRng::for_shard(seed, shard);
            let recorded: Vec<u64> = (0..draws).map(|_| live.next_u64()).collect();
            let mut replay = DetRng::for_shard(seed, shard);
            let replayed: Vec<u64> = (0..draws).map(|_| replay.next_u64()).collect();
            proptest::prop_assert_eq!(recorded, replayed);
        }
    }
}
