//! Network topology: hosts, switches, links, clusters, routing.
//!
//! The topology is an undirected weighted graph. Vertices are either *hosts*
//! (machines that send and receive) or *switches* (pure forwarders); edges
//! carry a latency and a bandwidth. Routing minimises latency (Dijkstra) and
//! routes are cached, since grid topologies are static during a run.
//!
//! Hosts can be tagged with a cluster, which the grid layer uses to model
//! InteGrade's intra-cluster (fast) versus inter-cluster (slow) connectivity
//! — e.g. the paper's "100 Mbps inside each group, 10 Mbps between groups".

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Identifier of a vertex (host or switch) in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifier of a cluster grouping of hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClusterTag(pub u32);

impl fmt::Display for ClusterTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Physical characteristics of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
}

impl LinkSpec {
    /// A standard switched 100 Mbps LAN link (the paper's intra-group network).
    pub fn lan_100mbps() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(200),
            bandwidth_bps: 100_000_000,
        }
    }

    /// A 10 Mbps link (the paper's inter-group network).
    pub fn lan_10mbps() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(500),
            bandwidth_bps: 10_000_000,
        }
    }

    /// A gigabit LAN link.
    pub fn lan_1gbps() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(100),
            bandwidth_bps: 1_000_000_000,
        }
    }

    /// A wide-area link with tens of milliseconds of latency.
    pub fn wan(latency_ms: u64, bandwidth_bps: u64) -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(latency_ms),
            bandwidth_bps,
        }
    }

    /// Metro-area WAN tier: clusters on the same campus or city ring
    /// (~2 ms, 1 Gbps). The default tier for federation links.
    pub fn wan_metro() -> Self {
        LinkSpec::wan(2, 1_000_000_000)
    }

    /// Regional WAN tier: clusters a few hundred kilometres apart
    /// (~20 ms, 100 Mbps).
    pub fn wan_regional() -> Self {
        LinkSpec::wan(20, 100_000_000)
    }

    /// Intercontinental WAN tier: clusters across an ocean
    /// (~120 ms, 10 Mbps).
    pub fn wan_intercontinental() -> Self {
        LinkSpec::wan(120, 10_000_000)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum VertexKind {
    Host,
    Switch,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Vertex {
    kind: VertexKind,
    name: String,
    cluster: Option<ClusterTag>,
    up: bool,
}

/// Quality of the routed path between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathQuality {
    /// Sum of link latencies along the path.
    pub latency: SimDuration,
    /// Minimum link bandwidth along the path (the bottleneck).
    pub bottleneck_bps: u64,
    /// Number of links traversed.
    pub hops: u32,
}

impl PathQuality {
    /// Path quality for a host talking to itself (loopback).
    pub fn loopback() -> Self {
        PathQuality {
            latency: SimDuration::from_micros(5),
            bottleneck_bps: 10_000_000_000,
            hops: 0,
        }
    }

    /// Time to move `bytes` across this path: latency + serialisation at the
    /// bottleneck link.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        let bits = bytes.saturating_mul(8);
        let tx_us = (bits as u128 * 1_000_000 / self.bottleneck_bps.max(1) as u128) as u64;
        self.latency + SimDuration::from_micros(tx_us)
    }
}

/// Errors from topology queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The referenced vertex does not exist.
    UnknownHost(HostId),
    /// The two hosts are not connected by any path of up links.
    Unreachable {
        /// Source host.
        from: HostId,
        /// Destination host.
        to: HostId,
    },
    /// The referenced vertex is a switch where a host was required.
    NotAHost(HostId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownHost(h) => write!(f, "unknown host {h}"),
            TopologyError::Unreachable { from, to } => {
                write!(f, "no path from {from} to {to}")
            }
            TopologyError::NotAHost(h) => write!(f, "vertex {h} is a switch, not a host"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected network graph of hosts, switches and links.
///
/// # Examples
///
/// ```
/// use integrade_simnet::topology::{Topology, LinkSpec};
///
/// let mut topo = Topology::new();
/// let sw = topo.add_switch("sw0");
/// let a = topo.add_host("a", None);
/// let b = topo.add_host("b", None);
/// topo.connect(a, sw, LinkSpec::lan_100mbps());
/// topo.connect(b, sw, LinkSpec::lan_100mbps());
/// let q = topo.path_quality(a, b).unwrap();
/// assert_eq!(q.hops, 2);
/// assert_eq!(q.bottleneck_bps, 100_000_000);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    vertices: Vec<Vertex>,
    adjacency: Vec<Vec<(u32, LinkSpec)>>,
    /// Per-source route tables: one full Dijkstra pass answers every
    /// destination from that source, so n hosts talking to one manager
    /// cost one search total instead of one search each.
    #[serde(skip)]
    route_tables: HashMap<HostId, Vec<Option<PathQuality>>>,
    generation: u64,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_vertex(&mut self, kind: VertexKind, name: &str, cluster: Option<ClusterTag>) -> HostId {
        let id = HostId(self.vertices.len() as u32);
        self.vertices.push(Vertex {
            kind,
            name: name.to_owned(),
            cluster,
            up: true,
        });
        self.adjacency.push(Vec::new());
        self.invalidate_routes();
        id
    }

    /// Adds a host, optionally tagged with a cluster.
    pub fn add_host(&mut self, name: &str, cluster: Option<ClusterTag>) -> HostId {
        self.add_vertex(VertexKind::Host, name, cluster)
    }

    /// Adds a switch (forwarding-only vertex).
    pub fn add_switch(&mut self, name: &str) -> HostId {
        self.add_vertex(VertexKind::Switch, name, None)
    }

    /// Connects two vertices with an undirected link.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist or `a == b`.
    pub fn connect(&mut self, a: HostId, b: HostId, spec: LinkSpec) {
        assert!(a != b, "self-links are not allowed");
        assert!((a.0 as usize) < self.vertices.len(), "unknown vertex {a}");
        assert!((b.0 as usize) < self.vertices.len(), "unknown vertex {b}");
        self.adjacency[a.0 as usize].push((b.0, spec));
        self.adjacency[b.0 as usize].push((a.0, spec));
        self.invalidate_routes();
    }

    fn invalidate_routes(&mut self) {
        self.route_tables.clear();
        self.generation += 1;
    }

    /// Number of vertices (hosts + switches).
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Iterator over all host ids (excluding switches).
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VertexKind::Host)
            .map(|(i, _)| HostId(i as u32))
    }

    /// The cluster tag of a host, if any.
    pub fn cluster_of(&self, host: HostId) -> Option<ClusterTag> {
        self.vertices.get(host.0 as usize).and_then(|v| v.cluster)
    }

    /// All hosts tagged with `cluster`.
    pub fn hosts_in_cluster(&self, cluster: ClusterTag) -> Vec<HostId> {
        self.hosts()
            .filter(|h| self.cluster_of(*h) == Some(cluster))
            .collect()
    }

    /// The display name of a vertex.
    pub fn name_of(&self, host: HostId) -> Option<&str> {
        self.vertices.get(host.0 as usize).map(|v| v.name.as_str())
    }

    /// Marks a host up or down. Down hosts neither originate, receive, nor
    /// forward traffic.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownHost`] for an unknown id.
    pub fn set_up(&mut self, host: HostId, up: bool) -> Result<(), TopologyError> {
        let v = self
            .vertices
            .get_mut(host.0 as usize)
            .ok_or(TopologyError::UnknownHost(host))?;
        if v.up != up {
            v.up = up;
            self.invalidate_routes();
        }
        Ok(())
    }

    /// Whether a host is currently up.
    pub fn is_up(&self, host: HostId) -> bool {
        self.vertices.get(host.0 as usize).is_some_and(|v| v.up)
    }

    fn check_host(&self, h: HostId) -> Result<(), TopologyError> {
        match self.vertices.get(h.0 as usize) {
            None => Err(TopologyError::UnknownHost(h)),
            Some(v) if v.kind != VertexKind::Host => Err(TopologyError::NotAHost(h)),
            Some(_) => Ok(()),
        }
    }

    /// Computes the latency-minimal path quality between two hosts.
    ///
    /// Results are cached until the topology changes.
    ///
    /// # Errors
    ///
    /// Returns an error if either endpoint is unknown, a switch, or no path
    /// of up vertices exists.
    pub fn path_quality(&mut self, from: HostId, to: HostId) -> Result<PathQuality, TopologyError> {
        self.check_host(from)?;
        self.check_host(to)?;
        if from == to {
            return Ok(PathQuality::loopback());
        }
        if !self.is_up(from) || !self.is_up(to) {
            return Err(TopologyError::Unreachable { from, to });
        }
        // Links are undirected, so a table computed from either endpoint
        // answers the pair.
        if let Some(table) = self.route_tables.get(&from) {
            return table[to.0 as usize].ok_or(TopologyError::Unreachable { from, to });
        }
        if let Some(table) = self.route_tables.get(&to) {
            return table[from.0 as usize].ok_or(TopologyError::Unreachable { from, to });
        }
        // Miss: settle every vertex from `to` in one pass. Building the
        // table at the *destination* pays off for fan-in traffic patterns
        // (n nodes reporting to one manager) where the sources are all
        // distinct but the destination repeats.
        let table = self.dijkstra_all(to);
        let result = table[from.0 as usize];
        self.route_tables.insert(to, table);
        result.ok_or(TopologyError::Unreachable { from, to })
    }

    /// Single-source Dijkstra: path quality from `from` to every vertex.
    ///
    /// Settling each vertex at its first pop yields exactly the answer the
    /// old early-exit per-pair search returned for that destination, so
    /// routing behaviour (and thus every simulated latency) is unchanged.
    fn dijkstra_all(&self, from: HostId) -> Vec<Option<PathQuality>> {
        #[derive(PartialEq, Eq)]
        struct State {
            cost: u64, // latency in µs
            vertex: u32,
            bottleneck: u64,
            hops: u32,
        }
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .cost
                    .cmp(&self.cost)
                    .then_with(|| other.vertex.cmp(&self.vertex))
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.vertices.len();
        let mut dist = vec![u64::MAX; n];
        let mut settled: Vec<Option<PathQuality>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        heap.push(State {
            cost: 0,
            vertex: from.0,
            bottleneck: u64::MAX,
            hops: 0,
        });
        while let Some(State {
            cost,
            vertex,
            bottleneck,
            hops,
        }) = heap.pop()
        {
            if cost > dist[vertex as usize] || settled[vertex as usize].is_some() {
                continue;
            }
            settled[vertex as usize] = Some(PathQuality {
                latency: SimDuration::from_micros(cost),
                bottleneck_bps: bottleneck,
                hops,
            });
            for &(next, spec) in &self.adjacency[vertex as usize] {
                if !self.vertices[next as usize].up {
                    continue;
                }
                let next_cost = cost.saturating_add(spec.latency.as_micros());
                if next_cost < dist[next as usize] {
                    dist[next as usize] = next_cost;
                    heap.push(State {
                        cost: next_cost,
                        vertex: next,
                        bottleneck: bottleneck.min(spec.bandwidth_bps),
                        hops: hops + 1,
                    });
                }
            }
        }
        settled
    }
}

/// Convenience constructors for common grid topologies.
impl Topology {
    /// Builds a single switched cluster of `n` hosts (star around one switch).
    /// Returns the topology, the cluster tag and the host ids.
    pub fn star_cluster(n: usize, link: LinkSpec) -> (Topology, ClusterTag, Vec<HostId>) {
        let mut topo = Topology::new();
        let tag = ClusterTag(0);
        let sw = topo.add_switch("sw0");
        let hosts = (0..n)
            .map(|i| {
                let h = topo.add_host(&format!("node{i}"), Some(tag));
                topo.connect(h, sw, link);
                h
            })
            .collect();
        (topo, tag, hosts)
    }

    /// Builds a campus: `clusters` switched groups of `per_cluster` hosts with
    /// `intra` links inside each group, and group switches joined to a core
    /// switch by `inter` links.
    ///
    /// Returns the topology and, per cluster, its tag and host ids.
    pub fn campus(
        clusters: usize,
        per_cluster: usize,
        intra: LinkSpec,
        inter: LinkSpec,
    ) -> (Topology, Vec<(ClusterTag, Vec<HostId>)>) {
        let mut topo = Topology::new();
        let core = topo.add_switch("core");
        let mut out = Vec::with_capacity(clusters);
        for c in 0..clusters {
            let tag = ClusterTag(c as u32);
            let sw = topo.add_switch(&format!("sw{c}"));
            topo.connect(sw, core, inter);
            let hosts: Vec<HostId> = (0..per_cluster)
                .map(|i| {
                    let h = topo.add_host(&format!("c{c}n{i}"), Some(tag));
                    topo.connect(h, sw, intra);
                    h
                })
                .collect();
            out.push((tag, hosts));
        }
        (topo, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_cluster_connects_all_pairs() {
        let (mut topo, tag, hosts) = Topology::star_cluster(4, LinkSpec::lan_100mbps());
        assert_eq!(topo.hosts_in_cluster(tag).len(), 4);
        for &a in &hosts {
            for &b in &hosts {
                let q = topo.path_quality(a, b).unwrap();
                if a == b {
                    assert_eq!(q.hops, 0);
                } else {
                    assert_eq!(q.hops, 2);
                    assert_eq!(q.bottleneck_bps, 100_000_000);
                    assert_eq!(q.latency, SimDuration::from_micros(400));
                }
            }
        }
    }

    #[test]
    fn campus_intra_faster_than_inter() {
        let (mut topo, clusters) =
            Topology::campus(2, 3, LinkSpec::lan_100mbps(), LinkSpec::lan_10mbps());
        let a0 = clusters[0].1[0];
        let a1 = clusters[0].1[1];
        let b0 = clusters[1].1[0];
        let intra = topo.path_quality(a0, a1).unwrap();
        let inter = topo.path_quality(a0, b0).unwrap();
        assert!(intra.latency < inter.latency);
        assert_eq!(intra.bottleneck_bps, 100_000_000);
        assert_eq!(inter.bottleneck_bps, 10_000_000);
        assert_eq!(inter.hops, 4);
    }

    #[test]
    fn transfer_time_accounts_for_size() {
        let q = PathQuality {
            latency: SimDuration::from_micros(100),
            bottleneck_bps: 8_000_000, // 1 MB/s
            hops: 1,
        };
        // 1 MB at 1 MB/s = 1 s + latency.
        let t = q.transfer_time(1_000_000);
        assert_eq!(t, SimDuration::from_micros(1_000_100));
    }

    #[test]
    fn down_host_is_unreachable() {
        let (mut topo, _, hosts) = Topology::star_cluster(3, LinkSpec::lan_100mbps());
        topo.set_up(hosts[1], false).unwrap();
        let err = topo.path_quality(hosts[0], hosts[1]).unwrap_err();
        assert!(matches!(err, TopologyError::Unreachable { .. }));
        // Others remain reachable.
        assert!(topo.path_quality(hosts[0], hosts[2]).is_ok());
        // Bringing it back restores the route.
        topo.set_up(hosts[1], true).unwrap();
        assert!(topo.path_quality(hosts[0], hosts[1]).is_ok());
    }

    #[test]
    fn down_switch_partitions_cluster() {
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let a = topo.add_host("a", None);
        let b = topo.add_host("b", None);
        topo.connect(a, sw, LinkSpec::lan_100mbps());
        topo.connect(b, sw, LinkSpec::lan_100mbps());
        topo.set_up(sw, false).unwrap();
        assert!(topo.path_quality(a, b).is_err());
    }

    #[test]
    fn routing_prefers_lower_latency() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", None);
        let b = topo.add_host("b", None);
        let relay = topo.add_switch("relay");
        // Direct slow-latency link vs two fast links through the relay.
        topo.connect(
            a,
            b,
            LinkSpec {
                latency: SimDuration::from_millis(10),
                bandwidth_bps: 1_000_000_000,
            },
        );
        topo.connect(a, relay, LinkSpec::lan_100mbps());
        topo.connect(relay, b, LinkSpec::lan_100mbps());
        let q = topo.path_quality(a, b).unwrap();
        assert_eq!(q.hops, 2, "should route via the relay (lower latency)");
        assert_eq!(q.bottleneck_bps, 100_000_000);
    }

    #[test]
    fn switch_endpoints_are_rejected() {
        let mut topo = Topology::new();
        let sw = topo.add_switch("sw");
        let a = topo.add_host("a", None);
        topo.connect(a, sw, LinkSpec::lan_100mbps());
        assert_eq!(
            topo.path_quality(a, sw).unwrap_err(),
            TopologyError::NotAHost(sw)
        );
    }

    #[test]
    fn unknown_host_is_an_error() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", None);
        assert_eq!(
            topo.path_quality(a, HostId(42)).unwrap_err(),
            TopologyError::UnknownHost(HostId(42))
        );
    }

    #[test]
    fn cache_invalidated_on_change() {
        let mut topo = Topology::new();
        let a = topo.add_host("a", None);
        let b = topo.add_host("b", None);
        topo.connect(a, b, LinkSpec::lan_10mbps());
        let q1 = topo.path_quality(a, b).unwrap();
        assert_eq!(q1.bottleneck_bps, 10_000_000);
        // Adding a better parallel path must be picked up.
        let sw = topo.add_switch("sw");
        topo.connect(a, sw, LinkSpec::lan_1gbps());
        topo.connect(sw, b, LinkSpec::lan_1gbps());
        let q2 = topo.path_quality(a, b).unwrap();
        assert_eq!(q2.bottleneck_bps, 1_000_000_000);
    }
}
