//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes how unreliable the cluster should be: a
//! per-message drop probability, extra latency jitter, scheduled link
//! partitions with heal times, and host crash/reboot windows. All random
//! decisions come from a dedicated [`DetRng`] stream derived from the
//! plan's seed, so two runs with the same seed and the same traffic see
//! exactly the same faults — chaos tests stay reproducible.
//!
//! The plan is threaded through [`Network::send`](crate::net::Network::send):
//! the network consults it for every message and either drops it, severs it
//! at a partition, or delivers it with extra jitter. Host outages are *not*
//! enforced by the network (it already refuses to deliver to down hosts);
//! instead the embedding world reads [`FaultPlan::outages`] and schedules
//! its own crash/reboot events, so higher layers (LRM state, GRM state) get
//! torn down alongside the host.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::HostId;

/// Dedicated RNG stream for fault decisions ("FALT"). Keeping faults on
/// their own stream means enabling them never perturbs draws made by other
/// stochastic processes (scheduling, workloads) under the same master seed.
const FAULT_STREAM: u64 = 0x4641_4C54;

/// A scheduled network partition: during `[start, heal)` no message can
/// cross between the `island` and the rest of the network. Traffic with
/// both endpoints inside the island (or both outside) is unaffected.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Hosts on one side of the cut.
    pub island: Vec<HostId>,
    /// When the partition begins.
    pub start: SimTime,
    /// When the partition heals (exclusive).
    pub heal: SimTime,
}

impl Partition {
    /// True if this partition severs traffic between `from` and `to` at `now`.
    pub fn severs(&self, now: SimTime, from: HostId, to: HostId) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        let a = self.island.contains(&from);
        let b = self.island.contains(&to);
        a != b
    }
}

/// A scheduled host outage: the host crashes at `down_at` and reboots at
/// `up_at`. Interpreted by the embedding world, not by the network itself.
#[derive(Debug, Clone, Copy)]
pub struct HostOutage {
    /// The host that goes down.
    pub host: HostId,
    /// Crash instant.
    pub down_at: SimTime,
    /// Reboot instant.
    pub up_at: SimTime,
}

/// What the fault layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver, adding `jitter` on top of the modelled delay.
    Deliver {
        /// Extra latency drawn from the jitter distribution.
        jitter: SimDuration,
        /// When `Some(r)`, the payload is corrupted in flight: the embedding
        /// world flips bit `r % (len * 8)` of the frame before delivery. The
        /// raw draw (not a bit index) is carried because the fault layer
        /// never sees message contents or lengths.
        corrupt: Option<u64>,
    },
    /// Drop the message silently (random loss).
    Drop,
    /// The path is severed by an active partition.
    Partitioned,
}

/// A reproducible description of network chaos.
///
/// The default plan ([`FaultPlan::quiet`]) injects nothing and draws no
/// random numbers, so a fault-free `Network` behaves bit-for-bit like one
/// built before this layer existed.
///
/// # Examples
///
/// ```
/// use integrade_simnet::faults::FaultPlan;
/// use integrade_simnet::time::SimDuration;
///
/// let plan = FaultPlan::new(42)
///     .with_drop_probability(0.05)
///     .with_jitter(SimDuration::from_millis(20));
/// assert!(plan.is_active());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    drop_probability: f64,
    corrupt_probability: f64,
    jitter_max: SimDuration,
    partitions: Vec<Partition>,
    outages: Vec<HostOutage>,
    rng: DetRng,
}

impl FaultPlan {
    /// A plan seeded from the master seed, with no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            jitter_max: SimDuration::ZERO,
            partitions: Vec::new(),
            outages: Vec::new(),
            rng: DetRng::with_stream(seed, FAULT_STREAM),
        }
    }

    /// A plan that injects nothing (the default for every `Network`).
    pub fn quiet() -> Self {
        FaultPlan::new(0)
    }

    /// Sets the independent per-message drop probability.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        self.drop_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the independent per-message payload-corruption probability: a
    /// delivered message has one of its bits flipped in flight, exercising
    /// the end-to-end digest verification of the checkpoint repository.
    #[must_use]
    pub fn with_corrupt_probability(mut self, p: f64) -> Self {
        self.corrupt_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum extra latency added to each delivered message.
    /// The actual jitter is uniform in `[0, max]`.
    #[must_use]
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter_max = max;
        self
    }

    /// Adds a scheduled partition.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Adds a scheduled host outage.
    #[must_use]
    pub fn with_outage(mut self, outage: HostOutage) -> Self {
        self.outages.push(outage);
        self
    }

    /// True if the plan can affect traffic at all.
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.corrupt_probability > 0.0
            || self.jitter_max > SimDuration::ZERO
            || !self.partitions.is_empty()
    }

    /// The scheduled host outages, for the embedding world to enact.
    pub fn outages(&self) -> &[HostOutage] {
        &self.outages
    }

    /// Decides the fate of one message sent at `now` from `from` to `to`.
    ///
    /// Partitions are checked first (deterministic, no RNG draw); then the
    /// drop probability; then jitter. A quiet plan never touches the RNG.
    pub fn decide(&mut self, now: SimTime, from: HostId, to: HostId) -> FaultDecision {
        if self.partitions.iter().any(|p| p.severs(now, from, to)) {
            return FaultDecision::Partitioned;
        }
        if self.drop_probability > 0.0 && self.rng.bernoulli(self.drop_probability) {
            return FaultDecision::Drop;
        }
        let jitter = if self.jitter_max > SimDuration::ZERO {
            SimDuration::from_micros(self.rng.uniform_range(0, self.jitter_max.as_micros() + 1))
        } else {
            SimDuration::ZERO
        };
        let corrupt =
            if self.corrupt_probability > 0.0 && self.rng.bernoulli(self.corrupt_probability) {
                Some(self.rng.next_u64())
            } else {
                None
            };
        FaultDecision::Deliver { jitter, corrupt }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::quiet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkSpec, Topology};

    fn two_hosts() -> (HostId, HostId) {
        let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
        let _ = topo;
        (hosts[0], hosts[1])
    }

    #[test]
    fn quiet_plan_always_delivers_without_jitter() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::quiet();
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert_eq!(
                plan.decide(SimTime::ZERO, a, b),
                FaultDecision::Deliver {
                    jitter: SimDuration::ZERO,
                    corrupt: None,
                }
            );
        }
    }

    #[test]
    fn drop_probability_drops_roughly_that_fraction() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(7).with_drop_probability(0.2);
        let drops = (0..10_000)
            .filter(|_| plan.decide(SimTime::ZERO, a, b) == FaultDecision::Drop)
            .count();
        assert!((1_600..=2_400).contains(&drops), "drops {drops}");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let (a, b) = two_hosts();
        let mut p1 = FaultPlan::new(99)
            .with_drop_probability(0.3)
            .with_jitter(SimDuration::from_millis(5));
        let mut p2 = FaultPlan::new(99)
            .with_drop_probability(0.3)
            .with_jitter(SimDuration::from_millis(5));
        for _ in 0..1_000 {
            assert_eq!(
                p1.decide(SimTime::ZERO, a, b),
                p2.decide(SimTime::ZERO, a, b)
            );
        }
    }

    #[test]
    fn partition_severs_cross_traffic_until_heal() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(1).with_partition(Partition {
            island: vec![a],
            start: SimTime::from_secs(10),
            heal: SimTime::from_secs(20),
        });
        let before = SimTime::from_secs(5);
        let during = SimTime::from_secs(15);
        let after = SimTime::from_secs(20);
        assert!(matches!(
            plan.decide(before, a, b),
            FaultDecision::Deliver { .. }
        ));
        assert_eq!(plan.decide(during, a, b), FaultDecision::Partitioned);
        assert_eq!(plan.decide(during, b, a), FaultDecision::Partitioned);
        // Intra-island traffic is unaffected.
        assert!(matches!(
            plan.decide(during, a, a),
            FaultDecision::Deliver { .. }
        ));
        assert!(matches!(
            plan.decide(after, a, b),
            FaultDecision::Deliver { .. }
        ));
    }

    #[test]
    fn jitter_is_bounded_by_max() {
        let (a, b) = two_hosts();
        let max = SimDuration::from_millis(3);
        let mut plan = FaultPlan::new(5).with_jitter(max);
        let mut saw_nonzero = false;
        for _ in 0..500 {
            match plan.decide(SimTime::ZERO, a, b) {
                FaultDecision::Deliver { jitter, .. } => {
                    assert!(jitter <= max);
                    saw_nonzero |= jitter > SimDuration::ZERO;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_nonzero);
    }

    #[test]
    fn corruption_hits_roughly_the_configured_fraction() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(21).with_corrupt_probability(0.1);
        assert!(plan.is_active());
        let corrupted = (0..10_000)
            .filter(|_| {
                matches!(
                    plan.decide(SimTime::ZERO, a, b),
                    FaultDecision::Deliver {
                        corrupt: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!((700..=1_300).contains(&corrupted), "corrupted {corrupted}");
    }

    #[test]
    fn corruption_draws_are_reproducible() {
        let (a, b) = two_hosts();
        let mut p1 = FaultPlan::new(33).with_corrupt_probability(0.5);
        let mut p2 = FaultPlan::new(33).with_corrupt_probability(0.5);
        for _ in 0..500 {
            assert_eq!(
                p1.decide(SimTime::ZERO, a, b),
                p2.decide(SimTime::ZERO, a, b)
            );
        }
    }

    #[test]
    fn outages_are_recorded_for_the_world() {
        let (a, _) = two_hosts();
        let plan = FaultPlan::new(3).with_outage(HostOutage {
            host: a,
            down_at: SimTime::from_secs(60),
            up_at: SimTime::from_secs(120),
        });
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.outages()[0].host, a);
    }
}
