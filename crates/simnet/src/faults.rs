//! Deterministic fault injection for the simulated network.
//!
//! A [`FaultPlan`] describes how unreliable the cluster should be: a
//! per-message drop probability, extra latency jitter, scheduled link
//! partitions with heal times, and host crash/reboot windows. All random
//! decisions come from a dedicated [`DetRng`] stream derived from the
//! plan's seed, so two runs with the same seed and the same traffic see
//! exactly the same faults — chaos tests stay reproducible.
//!
//! The plan is threaded through [`Network::send`](crate::net::Network::send):
//! the network consults it for every message and either drops it, severs it
//! at a partition, or delivers it with extra jitter. Host outages are *not*
//! enforced by the network (it already refuses to deliver to down hosts);
//! instead the embedding world reads [`FaultPlan::outages`] and schedules
//! its own crash/reboot events, so higher layers (LRM state, GRM state) get
//! torn down alongside the host.
//!
//! Besides the clean failures above, the plan models *gray* failures —
//! hosts that are slow but alive, the failure mode that dominates desktop
//! grids:
//!
//! * [`DerateWindow`] — a host's effective CPU is multiplied by a factor
//!   over an interval (owner reclaimed half the machine, thermal
//!   throttling). Enforced by the embedding world, which reads
//!   [`FaultPlan::derates_for`] and slows the node's execution rate.
//! * [`LinkLimp`] — a host pair's traffic suffers persistent added latency
//!   over an interval (a limping NIC), distinct from the one-shot random
//!   jitter. Applied inside [`FaultPlan::decide`] with no RNG draw, so
//!   limping never perturbs the fault stream.
//! * [`HostFlap`] — a host bounces down/up repeatedly. Expanded into the
//!   equivalent [`HostOutage`] sequence at plan-build time.
//! * [`Saboteur`] — a host computes *wrong results* with probability `p`
//!   inside a window (a flaky DIMM, a malicious volunteer), optionally as a
//!   member of a colluding group whose wrong answers all agree. Enforced by
//!   the embedding world via [`FaultPlan::saboteurs_for`]; each per-part
//!   decision is a pure hash ([`scheduled_draw`]), never an RNG-stream
//!   draw.
//!
//! All degradation faults are plain scheduled data — no random draws — so a
//! plan that adds them replays bit-for-bit under any tick engine. Sabotage
//! decisions keep that property despite being probabilistic: the "draw" is
//! a stateless hash of the decision's identity, so it is identical no
//! matter which tick engine asks, in what order, or how many times.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::HostId;

/// Dedicated RNG stream for fault decisions ("FALT"). Keeping faults on
/// their own stream means enabling them never perturbs draws made by other
/// stochastic processes (scheduling, workloads) under the same master seed.
const FAULT_STREAM: u64 = 0x4641_4C54;

/// A scheduled network partition: during `[start, heal)` no message can
/// cross between the `island` and the rest of the network. Traffic with
/// both endpoints inside the island (or both outside) is unaffected.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Hosts on one side of the cut.
    pub island: Vec<HostId>,
    /// When the partition begins.
    pub start: SimTime,
    /// When the partition heals (exclusive).
    pub heal: SimTime,
}

impl Partition {
    /// True if this partition severs traffic between `from` and `to` at `now`.
    pub fn severs(&self, now: SimTime, from: HostId, to: HostId) -> bool {
        if now < self.start || now >= self.heal {
            return false;
        }
        let a = self.island.contains(&from);
        let b = self.island.contains(&to);
        a != b
    }
}

/// A scheduled host outage: the host crashes at `down_at` and reboots at
/// `up_at`. Interpreted by the embedding world, not by the network itself.
#[derive(Debug, Clone, Copy)]
pub struct HostOutage {
    /// The host that goes down.
    pub host: HostId,
    /// Crash instant.
    pub down_at: SimTime,
    /// Reboot instant.
    pub up_at: SimTime,
}

/// A gray CPU degradation: during `[start, end)` the host's effective CPU
/// capacity is multiplied by `factor` (e.g. `0.25` = the machine runs at a
/// quarter speed). The host stays alive and keeps answering messages — only
/// its execution rate suffers, which is exactly what a crash detector
/// cannot see. Enforced by the embedding world via
/// [`FaultPlan::derates_for`].
#[derive(Debug, Clone, Copy)]
pub struct DerateWindow {
    /// The degraded host.
    pub host: HostId,
    /// Degradation onset.
    pub start: SimTime,
    /// Recovery instant (exclusive).
    pub end: SimTime,
    /// Effective-MIPS multiplier in `(0, 1]`.
    pub factor: f64,
}

impl DerateWindow {
    /// The effective factor at `now`: `factor` inside the window, `1.0`
    /// outside it.
    pub fn factor_at(&self, now: SimTime) -> f64 {
        if now >= self.start && now < self.end {
            self.factor
        } else {
            1.0
        }
    }
}

/// A limping link: during `[start, end)` every message between `a` and `b`
/// (either direction) suffers `added_latency` on top of the modelled path
/// delay. Persistent and deterministic — unlike the plan's random jitter it
/// draws nothing from the RNG, modelling a half-broken NIC or a congested
/// uplink rather than transient noise.
#[derive(Debug, Clone, Copy)]
pub struct LinkLimp {
    /// One endpoint.
    pub a: HostId,
    /// The other endpoint.
    pub b: HostId,
    /// Extra one-way latency while limping.
    pub added_latency: SimDuration,
    /// Limp onset.
    pub start: SimTime,
    /// Recovery instant (exclusive).
    pub end: SimTime,
}

impl LinkLimp {
    /// True when this limp slows a message between `from` and `to` at `now`.
    pub fn afflicts(&self, now: SimTime, from: HostId, to: HostId) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        (from == self.a && to == self.b) || (from == self.b && to == self.a)
    }
}

/// A flapping host: starting at `first_down` the host goes down for
/// `down_for`, comes back for `up_for`, and repeats for `cycles` rounds.
/// Expanded into the equivalent [`HostOutage`] sequence when added to a
/// plan, so the embedding world needs no flap-specific handling.
#[derive(Debug, Clone, Copy)]
pub struct HostFlap {
    /// The flapping host.
    pub host: HostId,
    /// First crash instant.
    pub first_down: SimTime,
    /// Length of each down phase.
    pub down_for: SimDuration,
    /// Length of each up phase between crashes.
    pub up_for: SimDuration,
    /// Number of down/up rounds.
    pub cycles: u32,
}

impl HostFlap {
    /// The outage sequence this flap expands to.
    pub fn outages(&self) -> Vec<HostOutage> {
        let mut out = Vec::with_capacity(self.cycles as usize);
        let mut down_at = self.first_down;
        for _ in 0..self.cycles {
            let up_at = down_at + self.down_for;
            out.push(HostOutage {
                host: self.host,
                down_at,
                up_at,
            });
            down_at = up_at + self.up_for;
        }
        out
    }
}

/// A Byzantine executor: during `[start, end)` the host returns *wrong*
/// results with probability `probability` per finished part. The host stays
/// alive, reports progress honestly and answers every message — only the
/// result digest it computes is corrupted, which is exactly what a crash
/// detector and a progress tracker cannot see.
///
/// When `collusion` is `Some(group)`, every saboteur in the same group
/// produces the *same* wrong digest for the same part, so two colluders
/// voting on one part agree with each other and defeat a naive 2-vote
/// quorum. Loners (`collusion: None`) each produce their own node-specific
/// wrong digest.
///
/// Enforced by the embedding world via [`FaultPlan::saboteurs_for`]; the
/// per-part wrong/honest decision must be made with [`scheduled_draw`] so
/// it replays bit-for-bit under any tick engine.
#[derive(Debug, Clone, Copy)]
pub struct Saboteur {
    /// The lying host.
    pub host: HostId,
    /// Sabotage onset.
    pub start: SimTime,
    /// Recovery instant (exclusive).
    pub end: SimTime,
    /// Per-part probability of returning a wrong result, in `(0, 1]`.
    pub probability: f64,
    /// Colluding-group id: members produce matching wrong digests.
    pub collusion: Option<u32>,
}

impl Saboteur {
    /// True when the sabotage window covers `now`.
    pub fn covers(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

/// A deterministic unit-interval "draw" for scheduled-data faults: a pure
/// splitmix64-style hash of `(salt, keys)` mapped to `[0, 1)`. Unlike a
/// [`DetRng`] stream there is no cursor to advance, so the result depends
/// only on the decision's identity — any tick engine, asking in any order,
/// any number of times, sees the same value. This is what lets probabilistic
/// sabotage stay bit-for-bit reproducible across
/// ActiveSet/Reference/Sharded engines.
pub fn scheduled_draw(salt: u64, keys: [u64; 3]) -> f64 {
    let mut h = salt ^ 0x9E37_79B9_7F4A_7C15;
    for k in keys {
        h ^= k.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A rejected [`FaultPlan`] parameter. Mirrors the style of the grid's
/// `ConfigError`: the `try_with_*` builders return it, the panicking
/// `with_*` builders unwrap it with the same message.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability was NaN or outside `[0, 1]`.
    BadProbability {
        /// Which knob was set.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scheduled window (outage, derate, limp, partition) had zero or
    /// negative length.
    EmptyWindow {
        /// Which fault kind carried the window.
        what: &'static str,
    },
    /// A derate factor was NaN or outside `(0, 1]`.
    BadDerateFactor {
        /// The offending value.
        value: f64,
    },
    /// A flap was configured with zero cycles or a zero-length down phase.
    DegenerateFlap,
    /// A sabotage probability was NaN or outside `(0, 1]` (a rate of zero
    /// is an honest host, not a saboteur).
    BadSabotageProbability {
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadProbability { what, value } => {
                write!(f, "{what} probability must be in [0, 1], got {value}")
            }
            FaultError::EmptyWindow { what } => {
                write!(f, "{what} window must have positive length")
            }
            FaultError::BadDerateFactor { value } => {
                write!(f, "derate factor must be in (0, 1], got {value}")
            }
            FaultError::DegenerateFlap => {
                write!(f, "flap needs at least one cycle and a positive down phase")
            }
            FaultError::BadSabotageProbability { value } => {
                write!(f, "sabotage probability must be in (0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// What the fault layer decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver, adding `jitter` on top of the modelled delay.
    Deliver {
        /// Extra latency drawn from the jitter distribution.
        jitter: SimDuration,
        /// When `Some(r)`, the payload is corrupted in flight: the embedding
        /// world flips bit `r % (len * 8)` of the frame before delivery. The
        /// raw draw (not a bit index) is carried because the fault layer
        /// never sees message contents or lengths.
        corrupt: Option<u64>,
    },
    /// Drop the message silently (random loss).
    Drop,
    /// The path is severed by an active partition.
    Partitioned,
}

/// A reproducible description of network chaos.
///
/// The default plan ([`FaultPlan::quiet`]) injects nothing and draws no
/// random numbers, so a fault-free `Network` behaves bit-for-bit like one
/// built before this layer existed.
///
/// # Examples
///
/// ```
/// use integrade_simnet::faults::FaultPlan;
/// use integrade_simnet::time::SimDuration;
///
/// let plan = FaultPlan::new(42)
///     .with_drop_probability(0.05)
///     .with_jitter(SimDuration::from_millis(20));
/// assert!(plan.is_active());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    drop_probability: f64,
    corrupt_probability: f64,
    jitter_max: SimDuration,
    partitions: Vec<Partition>,
    outages: Vec<HostOutage>,
    derates: Vec<DerateWindow>,
    limps: Vec<LinkLimp>,
    saboteurs: Vec<Saboteur>,
    rng: DetRng,
}

impl FaultPlan {
    /// A plan seeded from the master seed, with no faults configured yet.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            jitter_max: SimDuration::ZERO,
            partitions: Vec::new(),
            outages: Vec::new(),
            derates: Vec::new(),
            limps: Vec::new(),
            saboteurs: Vec::new(),
            rng: DetRng::with_stream(seed, FAULT_STREAM),
        }
    }

    /// A plan that injects nothing (the default for every `Network`).
    pub fn quiet() -> Self {
        FaultPlan::new(0)
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadProbability`] when `p` is NaN or outside `[0, 1]`.
    pub fn try_with_drop_probability(mut self, p: f64) -> Result<Self, FaultError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultError::BadProbability {
                what: "drop",
                value: p,
            });
        }
        self.drop_probability = p;
        Ok(self)
    }

    /// Sets the independent per-message drop probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN or outside `[0, 1]`; use
    /// [`FaultPlan::try_with_drop_probability`] to handle the error.
    #[must_use]
    pub fn with_drop_probability(self, p: f64) -> Self {
        match self.try_with_drop_probability(p) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Sets the independent per-message payload-corruption probability: a
    /// delivered message has one of its bits flipped in flight, exercising
    /// the end-to-end digest verification of the checkpoint repository.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadProbability`] when `p` is NaN or outside `[0, 1]`.
    pub fn try_with_corrupt_probability(mut self, p: f64) -> Result<Self, FaultError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(FaultError::BadProbability {
                what: "corrupt",
                value: p,
            });
        }
        self.corrupt_probability = p;
        Ok(self)
    }

    /// Sets the independent per-message payload-corruption probability.
    ///
    /// # Panics
    ///
    /// Panics when `p` is NaN or outside `[0, 1]`; use
    /// [`FaultPlan::try_with_corrupt_probability`] to handle the error.
    #[must_use]
    pub fn with_corrupt_probability(self, p: f64) -> Self {
        match self.try_with_corrupt_probability(p) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Sets the maximum extra latency added to each delivered message.
    /// The actual jitter is uniform in `[0, max]`.
    #[must_use]
    pub fn with_jitter(mut self, max: SimDuration) -> Self {
        self.jitter_max = max;
        self
    }

    /// Adds a scheduled partition.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Adds a scheduled host outage.
    ///
    /// # Errors
    ///
    /// [`FaultError::EmptyWindow`] when `up_at <= down_at`.
    pub fn try_with_outage(mut self, outage: HostOutage) -> Result<Self, FaultError> {
        if outage.up_at <= outage.down_at {
            return Err(FaultError::EmptyWindow { what: "outage" });
        }
        self.outages.push(outage);
        Ok(self)
    }

    /// Adds a scheduled host outage.
    ///
    /// # Panics
    ///
    /// Panics when the window is empty (`up_at <= down_at`); use
    /// [`FaultPlan::try_with_outage`] to handle the error.
    #[must_use]
    pub fn with_outage(self, outage: HostOutage) -> Self {
        match self.try_with_outage(outage) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Adds a gray CPU-degradation window.
    ///
    /// # Errors
    ///
    /// [`FaultError::EmptyWindow`] when `end <= start`;
    /// [`FaultError::BadDerateFactor`] when the factor is NaN or outside
    /// `(0, 1]` (a factor of zero is a crash, not a gray failure — model it
    /// with an outage).
    pub fn try_with_derate(mut self, derate: DerateWindow) -> Result<Self, FaultError> {
        if derate.end <= derate.start {
            return Err(FaultError::EmptyWindow { what: "derate" });
        }
        if !(derate.factor > 0.0 && derate.factor <= 1.0) {
            return Err(FaultError::BadDerateFactor {
                value: derate.factor,
            });
        }
        self.derates.push(derate);
        Ok(self)
    }

    /// Adds a gray CPU-degradation window.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a factor outside `(0, 1]`; use
    /// [`FaultPlan::try_with_derate`] to handle the error.
    #[must_use]
    pub fn with_derate(self, derate: DerateWindow) -> Self {
        match self.try_with_derate(derate) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Adds a limping link.
    ///
    /// # Errors
    ///
    /// [`FaultError::EmptyWindow`] when `end <= start`.
    pub fn try_with_limp(mut self, limp: LinkLimp) -> Result<Self, FaultError> {
        if limp.end <= limp.start {
            return Err(FaultError::EmptyWindow { what: "limp" });
        }
        self.limps.push(limp);
        Ok(self)
    }

    /// Adds a limping link.
    ///
    /// # Panics
    ///
    /// Panics on an empty window; use [`FaultPlan::try_with_limp`] to
    /// handle the error.
    #[must_use]
    pub fn with_limp(self, limp: LinkLimp) -> Self {
        match self.try_with_limp(limp) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Adds a flapping host, expanding it into its outage sequence.
    ///
    /// # Errors
    ///
    /// [`FaultError::DegenerateFlap`] when the flap has zero cycles or a
    /// zero-length down phase.
    pub fn try_with_flap(mut self, flap: HostFlap) -> Result<Self, FaultError> {
        if flap.cycles == 0 || flap.down_for == SimDuration::ZERO {
            return Err(FaultError::DegenerateFlap);
        }
        self.outages.extend(flap.outages());
        Ok(self)
    }

    /// Adds a flapping host, expanding it into its outage sequence.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate flap; use [`FaultPlan::try_with_flap`] to
    /// handle the error.
    #[must_use]
    pub fn with_flap(self, flap: HostFlap) -> Self {
        match self.try_with_flap(flap) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// Adds a Byzantine saboteur window.
    ///
    /// # Errors
    ///
    /// [`FaultError::EmptyWindow`] when `end <= start`;
    /// [`FaultError::BadSabotageProbability`] when the probability is NaN
    /// or outside `(0, 1]` (a saboteur that never lies is an honest host —
    /// leave it out of the plan).
    pub fn try_with_saboteur(mut self, saboteur: Saboteur) -> Result<Self, FaultError> {
        if saboteur.end <= saboteur.start {
            return Err(FaultError::EmptyWindow { what: "saboteur" });
        }
        if !(saboteur.probability > 0.0 && saboteur.probability <= 1.0) {
            return Err(FaultError::BadSabotageProbability {
                value: saboteur.probability,
            });
        }
        self.saboteurs.push(saboteur);
        Ok(self)
    }

    /// Adds a Byzantine saboteur window.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a probability outside `(0, 1]`; use
    /// [`FaultPlan::try_with_saboteur`] to handle the error.
    #[must_use]
    pub fn with_saboteur(self, saboteur: Saboteur) -> Self {
        match self.try_with_saboteur(saboteur) {
            Ok(plan) => plan,
            Err(e) => panic!("invalid fault plan: {e}"),
        }
    }

    /// True if the plan can affect traffic at all.
    pub fn is_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.corrupt_probability > 0.0
            || self.jitter_max > SimDuration::ZERO
            || !self.partitions.is_empty()
            || !self.limps.is_empty()
    }

    /// The scheduled host outages (explicit plus flap-expanded), for the
    /// embedding world to enact.
    pub fn outages(&self) -> &[HostOutage] {
        &self.outages
    }

    /// All gray CPU-degradation windows.
    pub fn derates(&self) -> &[DerateWindow] {
        &self.derates
    }

    /// The degradation windows affecting one host, as `(start, end, factor)`
    /// triples — the per-node slowdown schedule the embedding world hands to
    /// that node's executor.
    pub fn derates_for(&self, host: HostId) -> Vec<(SimTime, SimTime, f64)> {
        self.derates
            .iter()
            .filter(|d| d.host == host)
            .map(|d| (d.start, d.end, d.factor))
            .collect()
    }

    /// All Byzantine saboteur windows.
    pub fn saboteurs(&self) -> &[Saboteur] {
        &self.saboteurs
    }

    /// The saboteur windows afflicting one host — the per-node sabotage
    /// schedule the embedding world hands to that node's executor.
    pub fn saboteurs_for(&self, host: HostId) -> Vec<Saboteur> {
        self.saboteurs
            .iter()
            .filter(|s| s.host == host)
            .copied()
            .collect()
    }

    /// Decides the fate of one message sent at `now` from `from` to `to`.
    ///
    /// Partitions are checked first (deterministic, no RNG draw); then the
    /// drop probability; then jitter. A quiet plan never touches the RNG.
    /// Link limping is folded in last — also without an RNG draw, so adding
    /// a limp to a plan never shifts the fault stream's other decisions.
    pub fn decide(&mut self, now: SimTime, from: HostId, to: HostId) -> FaultDecision {
        if self.partitions.iter().any(|p| p.severs(now, from, to)) {
            return FaultDecision::Partitioned;
        }
        if self.drop_probability > 0.0 && self.rng.bernoulli(self.drop_probability) {
            return FaultDecision::Drop;
        }
        let jitter = if self.jitter_max > SimDuration::ZERO {
            SimDuration::from_micros(self.rng.uniform_range(0, self.jitter_max.as_micros() + 1))
        } else {
            SimDuration::ZERO
        };
        let corrupt =
            if self.corrupt_probability > 0.0 && self.rng.bernoulli(self.corrupt_probability) {
                Some(self.rng.next_u64())
            } else {
                None
            };
        let limp = self
            .limps
            .iter()
            .filter(|l| l.afflicts(now, from, to))
            .fold(SimDuration::ZERO, |acc, l| acc + l.added_latency);
        FaultDecision::Deliver {
            jitter: jitter + limp,
            corrupt,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::quiet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{LinkSpec, Topology};

    fn two_hosts() -> (HostId, HostId) {
        let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
        let _ = topo;
        (hosts[0], hosts[1])
    }

    #[test]
    fn quiet_plan_always_delivers_without_jitter() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::quiet();
        assert!(!plan.is_active());
        for _ in 0..100 {
            assert_eq!(
                plan.decide(SimTime::ZERO, a, b),
                FaultDecision::Deliver {
                    jitter: SimDuration::ZERO,
                    corrupt: None,
                }
            );
        }
    }

    #[test]
    fn drop_probability_drops_roughly_that_fraction() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(7).with_drop_probability(0.2);
        let drops = (0..10_000)
            .filter(|_| plan.decide(SimTime::ZERO, a, b) == FaultDecision::Drop)
            .count();
        assert!((1_600..=2_400).contains(&drops), "drops {drops}");
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let (a, b) = two_hosts();
        let mut p1 = FaultPlan::new(99)
            .with_drop_probability(0.3)
            .with_jitter(SimDuration::from_millis(5));
        let mut p2 = FaultPlan::new(99)
            .with_drop_probability(0.3)
            .with_jitter(SimDuration::from_millis(5));
        for _ in 0..1_000 {
            assert_eq!(
                p1.decide(SimTime::ZERO, a, b),
                p2.decide(SimTime::ZERO, a, b)
            );
        }
    }

    #[test]
    fn partition_severs_cross_traffic_until_heal() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(1).with_partition(Partition {
            island: vec![a],
            start: SimTime::from_secs(10),
            heal: SimTime::from_secs(20),
        });
        let before = SimTime::from_secs(5);
        let during = SimTime::from_secs(15);
        let after = SimTime::from_secs(20);
        assert!(matches!(
            plan.decide(before, a, b),
            FaultDecision::Deliver { .. }
        ));
        assert_eq!(plan.decide(during, a, b), FaultDecision::Partitioned);
        assert_eq!(plan.decide(during, b, a), FaultDecision::Partitioned);
        // Intra-island traffic is unaffected.
        assert!(matches!(
            plan.decide(during, a, a),
            FaultDecision::Deliver { .. }
        ));
        assert!(matches!(
            plan.decide(after, a, b),
            FaultDecision::Deliver { .. }
        ));
    }

    #[test]
    fn jitter_is_bounded_by_max() {
        let (a, b) = two_hosts();
        let max = SimDuration::from_millis(3);
        let mut plan = FaultPlan::new(5).with_jitter(max);
        let mut saw_nonzero = false;
        for _ in 0..500 {
            match plan.decide(SimTime::ZERO, a, b) {
                FaultDecision::Deliver { jitter, .. } => {
                    assert!(jitter <= max);
                    saw_nonzero |= jitter > SimDuration::ZERO;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_nonzero);
    }

    #[test]
    fn corruption_hits_roughly_the_configured_fraction() {
        let (a, b) = two_hosts();
        let mut plan = FaultPlan::new(21).with_corrupt_probability(0.1);
        assert!(plan.is_active());
        let corrupted = (0..10_000)
            .filter(|_| {
                matches!(
                    plan.decide(SimTime::ZERO, a, b),
                    FaultDecision::Deliver {
                        corrupt: Some(_),
                        ..
                    }
                )
            })
            .count();
        assert!((700..=1_300).contains(&corrupted), "corrupted {corrupted}");
    }

    #[test]
    fn corruption_draws_are_reproducible() {
        let (a, b) = two_hosts();
        let mut p1 = FaultPlan::new(33).with_corrupt_probability(0.5);
        let mut p2 = FaultPlan::new(33).with_corrupt_probability(0.5);
        for _ in 0..500 {
            assert_eq!(
                p1.decide(SimTime::ZERO, a, b),
                p2.decide(SimTime::ZERO, a, b)
            );
        }
    }

    #[test]
    fn outages_are_recorded_for_the_world() {
        let (a, _) = two_hosts();
        let plan = FaultPlan::new(3).with_outage(HostOutage {
            host: a,
            down_at: SimTime::from_secs(60),
            up_at: SimTime::from_secs(120),
        });
        assert_eq!(plan.outages().len(), 1);
        assert_eq!(plan.outages()[0].host, a);
    }

    #[test]
    fn builder_rejects_bad_probabilities() {
        let err = FaultPlan::quiet()
            .try_with_drop_probability(f64::NAN)
            .unwrap_err();
        assert!(matches!(
            err,
            FaultError::BadProbability { what: "drop", .. }
        ));
        assert!(FaultPlan::quiet().try_with_drop_probability(1.5).is_err());
        assert!(FaultPlan::quiet().try_with_drop_probability(-0.1).is_err());
        assert!(FaultPlan::quiet()
            .try_with_corrupt_probability(2.0)
            .is_err());
        assert!(FaultPlan::quiet().try_with_drop_probability(1.0).is_ok());
        assert!(FaultPlan::quiet().try_with_corrupt_probability(0.0).is_ok());
        // The error formats as a readable message, mirroring ConfigError.
        let msg = FaultPlan::quiet()
            .try_with_corrupt_probability(-3.0)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("corrupt"), "message {msg}");
    }

    #[test]
    fn builder_rejects_empty_windows() {
        let (a, _) = two_hosts();
        let err = FaultPlan::quiet()
            .try_with_outage(HostOutage {
                host: a,
                down_at: SimTime::from_secs(60),
                up_at: SimTime::from_secs(60),
            })
            .unwrap_err();
        assert!(matches!(err, FaultError::EmptyWindow { what: "outage" }));
        let err = FaultPlan::quiet()
            .try_with_derate(DerateWindow {
                host: a,
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(10),
                factor: 0.5,
            })
            .unwrap_err();
        assert!(matches!(err, FaultError::EmptyWindow { what: "derate" }));
        let (_, b) = two_hosts();
        let err = FaultPlan::quiet()
            .try_with_limp(LinkLimp {
                a,
                b,
                added_latency: SimDuration::from_millis(20),
                start: SimTime::from_secs(5),
                end: SimTime::from_secs(4),
            })
            .unwrap_err();
        assert!(matches!(err, FaultError::EmptyWindow { what: "limp" }));
    }

    #[test]
    fn builder_rejects_bad_derate_factor_and_degenerate_flap() {
        let (a, _) = two_hosts();
        let window = |factor| DerateWindow {
            host: a,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(60),
            factor,
        };
        assert!(matches!(
            FaultPlan::quiet().try_with_derate(window(0.0)).unwrap_err(),
            FaultError::BadDerateFactor { .. }
        ));
        assert!(FaultPlan::quiet()
            .try_with_derate(window(f64::NAN))
            .is_err());
        assert!(FaultPlan::quiet().try_with_derate(window(1.5)).is_err());
        assert!(FaultPlan::quiet().try_with_derate(window(1.0)).is_ok());
        let flap = |cycles, down_ms| HostFlap {
            host: a,
            first_down: SimTime::from_secs(30),
            down_for: SimDuration::from_millis(down_ms),
            up_for: SimDuration::from_secs(10),
            cycles,
        };
        assert!(matches!(
            FaultPlan::quiet().try_with_flap(flap(0, 100)).unwrap_err(),
            FaultError::DegenerateFlap
        ));
        assert!(FaultPlan::quiet().try_with_flap(flap(3, 0)).is_err());
        assert!(FaultPlan::quiet().try_with_flap(flap(3, 100)).is_ok());
    }

    #[test]
    fn derate_windows_report_factor_in_window_only() {
        let (a, b) = two_hosts();
        let plan = FaultPlan::quiet()
            .with_derate(DerateWindow {
                host: a,
                start: SimTime::from_secs(100),
                end: SimTime::from_secs(200),
                factor: 0.25,
            })
            .with_derate(DerateWindow {
                host: b,
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(50),
                factor: 0.5,
            });
        let schedule = plan.derates_for(a);
        assert_eq!(schedule.len(), 1);
        let (start, end, factor) = schedule[0];
        assert_eq!(start, SimTime::from_secs(100));
        assert_eq!(end, SimTime::from_secs(200));
        assert_eq!(factor, 0.25);
        let d = &plan.derates()[0];
        assert_eq!(d.factor_at(SimTime::from_secs(99)), 1.0);
        assert_eq!(d.factor_at(SimTime::from_secs(100)), 0.25);
        assert_eq!(d.factor_at(SimTime::from_secs(199)), 0.25);
        assert_eq!(d.factor_at(SimTime::from_secs(200)), 1.0);
        // Derates alone never touch the message path.
        assert!(!plan.is_active());
    }

    #[test]
    fn limp_adds_latency_deterministically_without_rng_draws() {
        let (a, b) = two_hosts();
        let limp = LinkLimp {
            a,
            b,
            added_latency: SimDuration::from_millis(40),
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(20),
        };
        let mut plan = FaultPlan::new(11).with_limp(limp);
        assert!(plan.is_active());
        // Both directions limp inside the window; outside it nothing happens.
        for (now, expect) in [
            (SimTime::from_secs(5), SimDuration::ZERO),
            (SimTime::from_secs(15), SimDuration::from_millis(40)),
            (SimTime::from_secs(20), SimDuration::ZERO),
        ] {
            for (from, to) in [(a, b), (b, a)] {
                assert_eq!(
                    plan.decide(now, from, to),
                    FaultDecision::Deliver {
                        jitter: expect,
                        corrupt: None,
                    }
                );
            }
        }
        // Adding a limp must not shift the RNG stream: a plan with drops
        // makes the same drop decisions with or without the limp.
        let mut with_limp = FaultPlan::new(77)
            .with_drop_probability(0.3)
            .with_limp(limp);
        let mut without = FaultPlan::new(77).with_drop_probability(0.3);
        for i in 0..1_000 {
            let t = SimTime::from_secs(i % 30);
            let d1 = with_limp.decide(t, a, b);
            let d2 = without.decide(t, a, b);
            let dropped1 = d1 == FaultDecision::Drop;
            let dropped2 = d2 == FaultDecision::Drop;
            assert_eq!(dropped1, dropped2, "tick {i}");
        }
    }

    #[test]
    fn builder_rejects_bad_saboteurs() {
        let (a, _) = two_hosts();
        let saboteur = |start_s, end_s, probability| Saboteur {
            host: a,
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
            probability,
            collusion: None,
        };
        let err = FaultPlan::quiet()
            .try_with_saboteur(saboteur(10, 10, 0.5))
            .unwrap_err();
        assert!(matches!(err, FaultError::EmptyWindow { what: "saboteur" }));
        let err = FaultPlan::quiet()
            .try_with_saboteur(saboteur(0, 60, 0.0))
            .unwrap_err();
        assert!(matches!(err, FaultError::BadSabotageProbability { .. }));
        assert!(FaultPlan::quiet()
            .try_with_saboteur(saboteur(0, 60, f64::NAN))
            .is_err());
        assert!(FaultPlan::quiet()
            .try_with_saboteur(saboteur(0, 60, 1.5))
            .is_err());
        assert!(FaultPlan::quiet()
            .try_with_saboteur(saboteur(0, 60, 1.0))
            .is_ok());
        let msg = FaultPlan::quiet()
            .try_with_saboteur(saboteur(0, 60, -0.3))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("sabotage"), "message {msg}");
    }

    #[test]
    fn saboteur_windows_report_per_host_without_touching_traffic() {
        let (a, b) = two_hosts();
        let plan = FaultPlan::quiet()
            .with_saboteur(Saboteur {
                host: a,
                start: SimTime::from_secs(100),
                end: SimTime::from_secs(200),
                probability: 0.4,
                collusion: Some(1),
            })
            .with_saboteur(Saboteur {
                host: b,
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(50),
                probability: 1.0,
                collusion: None,
            });
        let schedule = plan.saboteurs_for(a);
        assert_eq!(schedule.len(), 1);
        assert_eq!(schedule[0].probability, 0.4);
        assert_eq!(schedule[0].collusion, Some(1));
        assert!(!schedule[0].covers(SimTime::from_secs(99)));
        assert!(schedule[0].covers(SimTime::from_secs(100)));
        assert!(schedule[0].covers(SimTime::from_secs(199)));
        assert!(!schedule[0].covers(SimTime::from_secs(200)));
        assert_eq!(plan.saboteurs().len(), 2);
        // Saboteurs alone never touch the message path.
        assert!(!plan.is_active());
    }

    #[test]
    fn scheduled_draw_is_pure_and_roughly_uniform() {
        // Same identity, same value — no cursor, no order dependence.
        assert_eq!(scheduled_draw(42, [1, 2, 3]), scheduled_draw(42, [1, 2, 3]));
        // Different identity, different value.
        assert_ne!(scheduled_draw(42, [1, 2, 3]), scheduled_draw(42, [1, 2, 4]));
        assert_ne!(scheduled_draw(42, [1, 2, 3]), scheduled_draw(43, [1, 2, 3]));
        // Roughly uniform on [0, 1): a 30% threshold hits ~30% of keys.
        let hits = (0..10_000u64)
            .filter(|&i| scheduled_draw(7, [i, i / 3, i % 5]) < 0.3)
            .count();
        assert!((2_600..=3_400).contains(&hits), "hits {hits}");
        for i in 0..1_000u64 {
            let v = scheduled_draw(9, [i, 0, 0]);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn saboteurs_never_shift_the_rng_stream() {
        let (a, b) = two_hosts();
        let saboteur = Saboteur {
            host: a,
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(3_600),
            probability: 0.5,
            collusion: None,
        };
        let mut with_sab = FaultPlan::new(77)
            .with_drop_probability(0.3)
            .with_saboteur(saboteur);
        let mut without = FaultPlan::new(77).with_drop_probability(0.3);
        for i in 0..1_000 {
            let t = SimTime::from_secs(i % 30);
            assert_eq!(
                with_sab.decide(t, a, b),
                without.decide(t, a, b),
                "tick {i}"
            );
        }
    }

    #[test]
    fn flap_expands_to_alternating_outages() {
        let (a, _) = two_hosts();
        let plan = FaultPlan::quiet().with_flap(HostFlap {
            host: a,
            first_down: SimTime::from_secs(100),
            down_for: SimDuration::from_secs(10),
            up_for: SimDuration::from_secs(30),
            cycles: 3,
        });
        let outages = plan.outages();
        assert_eq!(outages.len(), 3);
        let expect = [(100, 110), (140, 150), (180, 190)];
        for (outage, (down, up)) in outages.iter().zip(expect) {
            assert_eq!(outage.host, a);
            assert_eq!(outage.down_at, SimTime::from_secs(down));
            assert_eq!(outage.up_at, SimTime::from_secs(up));
        }
    }
}
