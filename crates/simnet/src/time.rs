//! Virtual time for discrete-event simulation.
//!
//! The simulator measures time in whole microseconds. Two newtypes keep
//! instants and durations from being mixed up ([`SimTime`] is a point on the
//! virtual clock, [`SimDuration`] is a span), while still being cheap `Copy`
//! values.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in microseconds since simulation start.
///
/// # Examples
///
/// ```
/// use integrade_simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_micros(), 90_000_000);
/// assert_eq!(format!("{t}"), "1m30s");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use integrade_simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the number of whole microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is in the future, so the
    /// result is always well-defined.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating instant + duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Splits the instant into (whole days, time-of-day), with a day defined
    /// as 24 virtual hours. Useful for diurnal workload generation.
    pub fn day_and_offset(self) -> (u64, SimDuration) {
        const DAY: u64 = 24 * 3600 * 1_000_000;
        (self.0 / DAY, SimDuration(self.0 % DAY))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Creates a span from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3600 * 1_000_000)
    }

    /// Creates a span from whole 24-hour days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 24 * 3600 * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Returns the number of whole microseconds in the span.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e6
    }

    /// Returns true if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_us = self.0;
        if total_us == 0 {
            return write!(f, "0s");
        }
        let days = total_us / 86_400_000_000;
        let hours = (total_us / 3_600_000_000) % 24;
        let mins = (total_us / 60_000_000) % 60;
        let secs = (total_us / 1_000_000) % 60;
        let micros = total_us % 1_000_000;
        let mut wrote = false;
        if days > 0 {
            write!(f, "{days}d")?;
            wrote = true;
        }
        if hours > 0 {
            write!(f, "{hours}h")?;
            wrote = true;
        }
        if mins > 0 {
            write!(f, "{mins}m")?;
            wrote = true;
        }
        if secs > 0 || micros > 0 || !wrote {
            if micros == 0 {
                write!(f, "{secs}s")?;
            } else if micros.is_multiple_of(1000) {
                write!(f, "{secs}.{:03}s", micros / 1000)?;
            } else {
                write!(f, "{secs}.{micros:06}s")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1).as_micros(), 3_600_000_000);
        assert_eq!(SimDuration::from_days(1).as_micros(), 86_400_000_000);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::from_secs(10);
        let t1 = t0 + SimDuration::from_secs(5);
        assert_eq!(t1 - t0, SimDuration::from_secs(5));
        assert_eq!(t1 - SimDuration::from_secs(5), t0);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.duration_since(t0), SimDuration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn instant_subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimDuration::from_secs(2);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_fractional_duration_panics() {
        let _ = SimDuration::from_secs_f64(-0.5);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(3).mul_f64(0.5);
        assert_eq!(d.as_micros(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn day_and_offset_splits() {
        let t = SimTime::from_secs(86_400 * 2 + 3600);
        let (day, off) = t.day_and_offset();
        assert_eq!(day, 2);
        assert_eq!(off, SimDuration::from_hours(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
        assert_eq!(SimDuration::from_secs(90).to_string(), "1m30s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(
            (SimDuration::from_days(1) + SimDuration::from_hours(2)).to_string(),
            "1d2h"
        );
        assert_eq!(SimDuration::from_micros(1).to_string(), "0.000001s");
    }

    #[test]
    fn ordering_follows_micros() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
