//! Discrete-event scheduling core.
//!
//! [`EventQueue`] is a priority queue of timestamped events with stable FIFO
//! ordering among events scheduled for the same instant, plus O(log n)
//! cancellation. [`World`] is the handler trait a simulation model
//! implements; [`run_until`] / [`run_to_completion`] drive the loop.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

// Ordering: earliest time first, then insertion order (stable ties).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A timestamped event queue with a monotone virtual clock.
///
/// The clock ([`EventQueue::now`]) advances only when events are popped, so a
/// model can never observe time moving backwards.
///
/// # Examples
///
/// ```
/// use integrade_simnet::event::EventQueue;
/// use integrade_simnet::time::{SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(2), "b");
/// q.schedule_at(SimTime::from_secs(1), "a");
/// assert_eq!(q.pop().map(|(t, e)| (t.as_micros(), e)), Some((1_000_000, "a")));
/// assert_eq!(q.pop().map(|(t, e)| (t.as_micros(), e)), Some((2_000_000, "b")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    fired_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            fired_total: 0,
        }
    }

    /// The current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`EventQueue::now`]).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        }));
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` after the relative delay `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling an already-fired or unknown id is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // We cannot cheaply tell fired-vs-pending apart; record the tombstone
        // and report pending only if a live entry could still exist.
        self.cancelled.insert(id)
    }

    /// Pops the next non-cancelled event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            self.fired_total += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge cancelled entries from the front so the answer is accurate.
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.cancelled.contains(&entry.id) {
                let id = entry.id;
                self.heap.pop();
                self.cancelled.remove(&id);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (possibly including lazily-cancelled) entries.
    #[allow(clippy::len_without_is_empty)] // is_empty needs &mut (purges tombstones)
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.cancelled.len())
    }

    /// True when no live events remain.
    ///
    /// Takes `&mut self` (unlike the convention) because answering
    /// accurately requires purging lazily-cancelled entries.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events fired (popped and not cancelled).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Advances the clock to `time` without firing anything.
    ///
    /// # Panics
    ///
    /// Panics if moving backwards or past the next pending event.
    pub fn advance_clock(&mut self, time: SimTime) {
        assert!(time >= self.now, "clock cannot move backwards");
        if let Some(next) = self.peek_time() {
            assert!(time <= next, "cannot advance past pending event at {next}");
        }
        self.now = time;
    }
}

/// A simulation model: owns state and reacts to events, scheduling follow-ups
/// on the queue it is handed.
pub trait World {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a bounded simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The step budget was exhausted (likely a runaway model).
    StepBudgetExhausted,
}

/// Runs `world` until `horizon` (exclusive of events after it), the queue
/// drains, or `max_steps` events have fired.
///
/// Returns the outcome and the number of events fired.
pub fn run_until<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
    max_steps: u64,
) -> (RunOutcome, u64) {
    let mut steps = 0;
    loop {
        if steps >= max_steps {
            return (RunOutcome::StepBudgetExhausted, steps);
        }
        match queue.peek_time() {
            None => return (RunOutcome::Drained, steps),
            Some(t) if t > horizon => return (RunOutcome::HorizonReached, steps),
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event must pop");
                world.handle(now, ev, queue);
                steps += 1;
            }
        }
    }
}

/// Runs `world` until the queue drains or `max_steps` fire.
pub fn run_to_completion<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    max_steps: u64,
) -> (RunOutcome, u64) {
    run_until(world, queue, SimTime::MAX, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q = EventQueue::<u8>::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_clock_bounded_by_next_event() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.advance_clock(SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "cannot advance past pending event")]
    fn advance_clock_past_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.advance_clock(SimTime::from_secs(2));
    }

    /// A model that counts down: each event schedules the next until zero.
    struct Countdown {
        fired: Vec<u32>,
    }
    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.fired.push(ev);
            if ev > 0 {
                q.schedule_after(SimDuration::from_secs(1), ev - 1);
            }
        }
    }

    #[test]
    fn run_to_completion_drains() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 5u32);
        let (outcome, steps) = run_to_completion(&mut w, &mut q, 1000);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(steps, 6);
        assert_eq!(w.fired, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 100u32);
        let (outcome, _) = run_until(&mut w, &mut q, SimTime::from_secs(3), 1000);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(w.fired, vec![100, 99, 98, 97]);
    }

    #[test]
    fn run_until_step_budget() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, u32::MAX);
        let (outcome, steps) = run_to_completion(&mut w, &mut q, 10);
        assert_eq!(outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(steps, 10);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.fired_total(), 1);
    }
}
