//! Discrete-event scheduling core.
//!
//! [`EventQueue`] is a priority queue of timestamped events with stable FIFO
//! ordering among events scheduled for the same instant, plus O(1)
//! cancellation. [`World`] is the handler trait a simulation model
//! implements; [`run_until`] / [`run_to_completion`] drive the loop.
//!
//! Internally the queue is a hybrid of three structures tuned for the
//! simulator's dominant workload (periodic ticks and retransmission timers a
//! few seconds to minutes out):
//!
//! - a **timer wheel** of [`WHEEL_SLOTS`] one-second buckets covering the
//!   window `[cursor, cursor + WHEEL_SLOTS)` seconds — O(1) insertion for the
//!   common near-future case;
//! - a sorted **due list** holding the bucket currently being drained
//!   (entries strictly before the cursor second);
//! - a **binary heap** for far-future entries beyond the wheel window.
//!
//! Entries never migrate between structures: the wheel bucket for second `s`
//! only ever holds entries for exactly that second (buckets are one second
//! wide, so bucket order implies time order), and the pop path takes the
//! minimum of the due-list front and the heap top, so far-future heap entries
//! interleave correctly even after the cursor passes them. Cancellation
//! removes the id from the live set immediately and leaves a tombstone that
//! is dropped when the entry surfaces; when tombstones outnumber live
//! entries the queue compacts them away eagerly.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt;

/// Width of the timer wheel, in one-second buckets. Covers ~17 simulated
/// minutes ahead of the cursor: update periods, slot ticks and
/// retransmission timers all land inside it.
pub const WHEEL_SLOTS: usize = 1024;

const MICROS_PER_SEC: u64 = 1_000_000;

/// Handle identifying a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: EventId,
    payload: E,
}

// Ordering: earliest time first, then insertion order (stable ties).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Occupancy and maintenance counters of an [`EventQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// High-water mark of the queue's *overflow heaps*: the maximum combined
    /// occupancy of the due heap (the bucket being drained, plus sub-second
    /// schedules landing behind the cursor) and the far-future heap (entries
    /// beyond the wheel window). Entries absorbed by the O(1) wheel buckets
    /// are not counted. Any run that pops at least one event refills the due
    /// heap, so this is nonzero for every non-trivial simulation — a zero
    /// here means the queue was never exercised.
    pub peak_heap_depth: usize,
    /// Tombstone compaction passes performed.
    pub compactions: u64,
    /// Schedules that landed in a timer-wheel bucket (O(1) path).
    pub wheel_scheduled: u64,
    /// Schedules that fell through to the far-future heap.
    pub heap_scheduled: u64,
}

/// A timestamped event queue with a monotone virtual clock.
///
/// The clock ([`EventQueue::now`]) advances only when events are popped, so a
/// model can never observe time moving backwards.
///
/// # Examples
///
/// ```
/// use integrade_simnet::event::EventQueue;
/// use integrade_simnet::time::{SimTime, SimDuration};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(2), "b");
/// q.schedule_at(SimTime::from_secs(1), "a");
/// assert_eq!(q.pop().map(|(t, e)| (t.as_micros(), e)), Some((1_000_000, "a")));
/// assert_eq!(q.pop().map(|(t, e)| (t.as_micros(), e)), Some((2_000_000, "b")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// One-second buckets for `[cursor_sec, cursor_sec + WHEEL_SLOTS)`.
    wheel: Vec<Vec<Entry<E>>>,
    /// Total entries across all wheel buckets.
    wheel_count: usize,
    /// All due-list entries are in seconds `< cursor_sec`; all wheel entries
    /// are in `[cursor_sec, cursor_sec + WHEEL_SLOTS)`.
    cursor_sec: u64,
    /// The bucket being drained, a min-heap on `(time, seq)` — sub-second
    /// schedules land here after their second's bucket was claimed, and a
    /// heap keeps that insert O(log m) instead of a sorted-list memmove.
    due: BinaryHeap<Reverse<Entry<E>>>,
    /// Far-future entries (beyond the wheel window at schedule time).
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids of entries scheduled and neither fired nor cancelled.
    live: HashSet<EventId>,
    /// Cancelled ids whose entries are still buried in a structure.
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    fired_total: u64,
    stats: QueueStats,
}

impl<E: fmt::Debug> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.live.len())
            .field("tombstones", &self.cancelled.len())
            .field("wheel_count", &self.wheel_count)
            .field("due", &self.due.len())
            .field("heap", &self.heap.len())
            .field("cursor_sec", &self.cursor_sec)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            wheel_count: 0,
            cursor_sec: 0,
            due: BinaryHeap::new(),
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
            fired_total: 0,
            stats: QueueStats::default(),
        }
    }

    /// The current virtual time (time of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at the absolute instant `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past (before [`EventQueue::now`]).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {}",
            self.now
        );
        // With the wheel and due list both empty the window start is
        // unconstrained: snap it forward to `now` so near-future schedules
        // keep hitting the O(1) wheel path after heap-driven time jumps.
        if self.wheel_count == 0 && self.due.is_empty() {
            let now_sec = self.now.as_micros() / MICROS_PER_SEC;
            if now_sec > self.cursor_sec {
                self.cursor_sec = now_sec;
            }
        }
        let id = EventId(self.next_seq);
        let entry = Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        };
        let t_sec = time.as_micros() / MICROS_PER_SEC;
        if t_sec < self.cursor_sec {
            // The bucket for this second was already drained: push onto the
            // due heap. `(time, seq)` is a total order, so ties still fire
            // in insertion order.
            self.due.push(Reverse(entry));
            self.note_heap_occupancy();
        } else if t_sec < self.cursor_sec + WHEEL_SLOTS as u64 {
            self.wheel[(t_sec % WHEEL_SLOTS as u64) as usize].push(entry);
            self.wheel_count += 1;
            self.stats.wheel_scheduled += 1;
        } else {
            self.heap.push(Reverse(entry));
            self.stats.heap_scheduled += 1;
            self.note_heap_occupancy();
        }
        self.live.insert(id);
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` after the relative delay `delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending. Cancelling an already-fired or unknown id is a no-op
    /// (and returns `false`).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        self.cancelled.insert(id);
        // Tombstones are dropped lazily when their entry surfaces; if they
        // ever outnumber live entries, sweep them out eagerly so the
        // structures cannot fill up with dead weight.
        if self.cancelled.len() >= 64 && self.cancelled.len() > self.live.len() {
            self.compact();
        }
        true
    }

    /// Rebuilds every structure retaining only live entries, emptying the
    /// tombstone set.
    fn compact(&mut self) {
        let cancelled = std::mem::take(&mut self.cancelled);
        self.due.retain(|Reverse(e)| !cancelled.contains(&e.id));
        for bucket in &mut self.wheel {
            bucket.retain(|e| !cancelled.contains(&e.id));
        }
        self.wheel_count = self.wheel.iter().map(Vec::len).sum();
        let retained: Vec<Reverse<Entry<E>>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(e)| !cancelled.contains(&e.id))
            .collect();
        self.heap = BinaryHeap::from(retained);
        self.stats.compactions += 1;
    }

    /// Records the current combined overflow-heap occupancy into the
    /// [`QueueStats::peak_heap_depth`] high-water mark. Called at every
    /// point that grows either heap (direct pushes and bucket refills).
    fn note_heap_occupancy(&mut self) {
        let depth = self.due.len() + self.heap.len();
        if depth > self.stats.peak_heap_depth {
            self.stats.peak_heap_depth = depth;
        }
    }

    /// Moves the earliest non-empty wheel bucket into the due list and
    /// advances the cursor past it. Caller ensures the due list is empty.
    fn refill_due(&mut self) {
        debug_assert!(self.due.is_empty());
        for offset in 0..WHEEL_SLOTS as u64 {
            let sec = self.cursor_sec + offset;
            let bucket = (sec % WHEEL_SLOTS as u64) as usize;
            if !self.wheel[bucket].is_empty() {
                let entries = std::mem::take(&mut self.wheel[bucket]);
                self.wheel_count -= entries.len();
                self.due.extend(entries.into_iter().map(Reverse));
                self.note_heap_occupancy();
                self.cursor_sec = sec + 1;
                return;
            }
        }
        debug_assert_eq!(self.wheel_count, 0, "wheel count out of sync");
    }

    /// True when the globally minimal entry sits in the due list (as opposed
    /// to the heap). `None` when no entries remain anywhere.
    fn front_is_due(&mut self) -> Option<bool> {
        if self.due.is_empty() && self.wheel_count > 0 {
            self.refill_due();
        }
        // Remaining wheel entries are in seconds >= cursor, strictly after
        // everything in the due list, so the global minimum is the smaller
        // of the due front and the heap top.
        let due_key = self.due.peek().map(|Reverse(e)| (e.time, e.seq));
        let heap_key = self.heap.peek().map(|Reverse(e)| (e.time, e.seq));
        match (due_key, heap_key) {
            (None, None) => None,
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (Some(d), Some(h)) => Some(d < h),
        }
    }

    /// Drops cancelled entries from the front until the minimum is live.
    fn purge_front(&mut self) {
        while let Some(from_due) = self.front_is_due() {
            let id = if from_due {
                self.due.peek().expect("due front exists").0.id
            } else {
                self.heap.peek().expect("heap top exists").0.id
            };
            if !self.cancelled.remove(&id) {
                return;
            }
            if from_due {
                self.due.pop();
            } else {
                self.heap.pop();
            }
        }
    }

    /// Pops the next non-cancelled event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.purge_front();
        let from_due = self.front_is_due()?;
        let entry = if from_due {
            self.due.pop().expect("due front exists").0
        } else {
            self.heap.pop().expect("heap top exists").0
        };
        debug_assert!(entry.time >= self.now);
        self.live.remove(&entry.id);
        self.now = entry.time;
        self.fired_total += 1;
        Some((entry.time, entry.payload))
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_front();
        let from_due = self.front_is_due()?;
        Some(if from_due {
            self.due.peek().expect("due front exists").0.time
        } else {
            self.heap.peek().expect("heap top exists").0.time
        })
    }

    /// Number of pending (scheduled, not yet fired or cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events fired (popped and not cancelled).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Occupancy and maintenance counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Advances the clock to `time` without firing anything.
    ///
    /// # Panics
    ///
    /// Panics if moving backwards or past the next pending event.
    pub fn advance_clock(&mut self, time: SimTime) {
        assert!(time >= self.now, "clock cannot move backwards");
        if let Some(next) = self.peek_time() {
            assert!(time <= next, "cannot advance past pending event at {next}");
        }
        self.now = time;
    }
}

/// A simulation model: owns state and reacts to events, scheduling follow-ups
/// on the queue it is handed.
pub trait World {
    /// The event payload type.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a bounded simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The step budget was exhausted (likely a runaway model).
    StepBudgetExhausted,
}

/// Runs `world` until `horizon` (exclusive of events after it), the queue
/// drains, or `max_steps` events have fired.
///
/// Returns the outcome and the number of events fired.
pub fn run_until<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
    max_steps: u64,
) -> (RunOutcome, u64) {
    let mut steps = 0;
    loop {
        if steps >= max_steps {
            return (RunOutcome::StepBudgetExhausted, steps);
        }
        match queue.peek_time() {
            None => return (RunOutcome::Drained, steps),
            Some(t) if t > horizon => return (RunOutcome::HorizonReached, steps),
            Some(_) => {
                let (now, ev) = queue.pop().expect("peeked event must pop");
                world.handle(now, ev, queue);
                steps += 1;
            }
        }
    }
}

/// Like [`run_until`], but attributes wall time to the two halves of the
/// hot loop — queue operations ([`Phase::QueuePop`]) and world dispatch
/// ([`Phase::Dispatch`]) — through the given profiler. Without the
/// observability crate's `profile` feature the guards are zero-sized
/// no-ops, so this is the same loop at the same cost; the grid routes
/// every run through it unconditionally.
///
/// [`Phase::QueuePop`]: integrade_obs::profile::Phase::QueuePop
/// [`Phase::Dispatch`]: integrade_obs::profile::Phase::Dispatch
pub fn run_until_profiled<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
    max_steps: u64,
    profiler: &integrade_obs::profile::Profiler,
) -> (RunOutcome, u64) {
    use integrade_obs::profile::Phase;
    let mut steps = 0;
    loop {
        if steps >= max_steps {
            return (RunOutcome::StepBudgetExhausted, steps);
        }
        let popped = {
            let _pop = profiler.enter(Phase::QueuePop);
            match queue.peek_time() {
                None => return (RunOutcome::Drained, steps),
                Some(t) if t > horizon => return (RunOutcome::HorizonReached, steps),
                Some(_) => queue.pop().expect("peeked event must pop"),
            }
        };
        let (now, ev) = popped;
        {
            let _dispatch = profiler.enter(Phase::Dispatch);
            world.handle(now, ev, queue);
        }
        steps += 1;
    }
}

/// Runs `world` until the queue drains or `max_steps` fire.
pub fn run_to_completion<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    max_steps: u64,
) -> (RunOutcome, u64) {
    run_until(world, queue, SimTime::MAX, max_steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), 3u32);
        q.schedule_at(SimTime::from_secs(1), 1u32);
        q.schedule_at(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10u32 {
            q.schedule_at(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaves_wheel_and_heap_entries() {
        // Entries beyond the wheel window land in the heap; popping must
        // interleave them with wheel entries in global time order even after
        // the cursor passes their second.
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64; // just past the initial wheel window
        q.schedule_at(SimTime::from_secs(far), 3u32); // heap
        q.schedule_at(SimTime::from_secs(1), 1u32); // wheel
        q.schedule_at(SimTime::from_secs(far + 2), 4u32); // heap
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        // Now the window snaps forward: this lands in the wheel between the
        // two heap entries.
        q.schedule_at(SimTime::from_secs(far), 10u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 10, 4]);
    }

    #[test]
    fn same_instant_across_structures_fires_in_insertion_order() {
        let mut q = EventQueue::new();
        let far = SimTime::from_secs(WHEEL_SLOTS as u64);
        q.schedule_at(far, 1u32); // heap (beyond window)
        q.schedule_at(SimTime::from_secs(1), 0u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        q.schedule_at(far, 2u32); // wheel (window snapped forward)
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut q = EventQueue::<u8>::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn cancel_after_fire_returns_false() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        assert_eq!(q.pop().map(|(t, ())| t), Some(SimTime::from_secs(1)));
        assert!(!q.cancel(a), "cancelling a fired event must report false");
        assert!(q.cancelled.is_empty(), "no tombstone for a fired event");
    }

    #[test]
    fn drain_leaves_no_tombstones() {
        // Regression: cancelling used to leave the id in the tombstone set
        // forever when the entry had already been popped.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..20u32 {
            ids.push(q.schedule_at(SimTime::from_secs(u64::from(i)), i));
        }
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id));
        }
        while q.pop().is_some() {}
        assert!(q.cancelled.is_empty(), "drain must clear every tombstone");
        assert!(q.live.is_empty());
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // Cancelling after the drain adds nothing back.
        for id in ids {
            assert!(!q.cancel(id));
        }
        assert!(q.cancelled.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), 1);
        q.schedule_at(SimTime::from_secs(2), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn mass_cancellation_triggers_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<EventId> = (0..200u64)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        for id in &ids[..150] {
            q.cancel(*id);
        }
        assert!(q.stats().compactions >= 1, "{:?}", q.stats());
        assert!(q.cancelled.len() < 64, "compaction empties tombstones");
        assert_eq!(q.len(), 50);
        let survivors: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(survivors, (150..200).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_wheel_and_heap_placement() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), ()); // wheel
        q.schedule_at(SimTime::from_secs(WHEEL_SLOTS as u64 + 50), ()); // heap
        let stats = q.stats();
        assert_eq!(stats.wheel_scheduled, 1);
        assert_eq!(stats.heap_scheduled, 1);
        assert_eq!(stats.peak_heap_depth, 1);
    }

    /// The high-water mark covers the *due* heap too: a drained bucket's
    /// entries and late sub-second schedules are overflow-heap occupancy
    /// even when the far-future heap never sees a single entry.
    #[test]
    fn peak_depth_counts_due_heap_occupancy() {
        let mut q = EventQueue::new();
        for i in 0..10u32 {
            q.schedule_at(SimTime::from_millis(500 + u64::from(i)), i);
        }
        // All ten land in wheel bucket 0; the first pop refills the due
        // heap with the whole bucket.
        assert_eq!(q.stats().peak_heap_depth, 0, "nothing drained yet");
        assert!(q.pop().is_some());
        assert_eq!(q.stats().peak_heap_depth, 10, "{:?}", q.stats());
        // A sub-second schedule behind the cursor lands in the due heap and
        // raises the mark past the refill size.
        q.schedule_at(SimTime::from_millis(700), 99);
        assert_eq!(q.stats().peak_heap_depth, 10, "9 left + 1 late = 10");
        q.schedule_at(SimTime::from_millis(800), 100);
        assert_eq!(q.stats().peak_heap_depth, 11, "{:?}", q.stats());
        assert_eq!(q.stats().heap_scheduled, 0, "far-future heap untouched");
    }

    #[test]
    fn advance_clock_bounded_by_next_event() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), ());
        q.advance_clock(SimTime::from_secs(10));
        assert_eq!(q.now(), SimTime::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "cannot advance past pending event")]
    fn advance_clock_past_event_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1), ());
        q.advance_clock(SimTime::from_secs(2));
    }

    /// A model that counts down: each event schedules the next until zero.
    struct Countdown {
        fired: Vec<u32>,
    }
    impl World for Countdown {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.fired.push(ev);
            if ev > 0 {
                q.schedule_after(SimDuration::from_secs(1), ev - 1);
            }
        }
    }

    #[test]
    fn run_to_completion_drains() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 5u32);
        let (outcome, steps) = run_to_completion(&mut w, &mut q, 1000);
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(steps, 6);
        assert_eq!(w.fired, vec![5, 4, 3, 2, 1, 0]);
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 100u32);
        let (outcome, _) = run_until(&mut w, &mut q, SimTime::from_secs(3), 1000);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(w.fired, vec![100, 99, 98, 97]);
    }

    #[test]
    fn run_until_step_budget() {
        let mut w = Countdown { fired: vec![] };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, u32::MAX);
        let (outcome, steps) = run_to_completion(&mut w, &mut q, 10);
        assert_eq!(outcome, RunOutcome::StepBudgetExhausted);
        assert_eq!(steps, 10);
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), ());
        q.schedule_at(SimTime::from_secs(2), ());
        q.cancel(a);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.fired_total(), 1);
    }

    #[test]
    fn sub_second_ordering_within_one_bucket() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(500_100), 2u32);
        q.schedule_at(SimTime::from_micros(500_000), 1u32);
        q.schedule_at(SimTime::from_micros(500_200), 3u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn late_schedule_into_drained_second_stays_ordered() {
        // Scheduling at `now` after the bucket for that second was drained
        // exercises the sorted due-list insertion path.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(1_000_100), 1u32);
        q.schedule_at(SimTime::from_micros(1_000_300), 3u32);
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
        q.schedule_at(SimTime::from_micros(1_000_200), 2u32);
        q.schedule_at(SimTime::from_micros(1_000_200), 20u32);
        q.schedule_at(SimTime::from_micros(1_000_400), 4u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 20, 3, 4]);
    }
}
