//! Message-level network model on top of a [`Topology`].
//!
//! [`Network`] computes when a message sent now would arrive, accounting for
//! path latency, serialisation at the bottleneck link, and per-host NIC
//! egress queueing (a host transmits one message at a time). The caller — a
//! discrete-event [`World`](crate::event::World) — schedules its own
//! delivery event after the returned delay, which keeps the network model
//! independent of the event payload type.

use crate::faults::{FaultDecision, FaultPlan};
use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, PathQuality, Topology, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors when sending a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Routing failed (unknown host, switch endpoint or partition).
    Route(TopologyError),
    /// Destination host is down.
    HostDown(HostId),
    /// The message was lost to injected random loss (see [`FaultPlan`]).
    Dropped {
        /// Sending host.
        from: HostId,
        /// Intended destination.
        to: HostId,
    },
    /// An active scheduled partition severs the path (see [`FaultPlan`]).
    Partitioned {
        /// Sending host.
        from: HostId,
        /// Intended destination.
        to: HostId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Route(e) => write!(f, "routing failed: {e}"),
            NetError::HostDown(h) => write!(f, "destination host {h} is down"),
            NetError::Dropped { from, to } => write!(f, "message {from} -> {to} dropped"),
            NetError::Partitioned { from, to } => {
                write!(f, "partition severs {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Route(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for NetError {
    fn from(e: TopologyError) -> Self {
        NetError::Route(e)
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages successfully scheduled for delivery.
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Messages that failed to route.
    pub failures: u64,
    /// Messages lost to injected faults (random loss or partitions).
    pub drops: u64,
    /// Messages delivered with an injected payload corruption.
    pub corrupted: u64,
}

/// A successfully scheduled delivery: when it lands and whether the fault
/// layer corrupted it in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Delay until arrival; the caller schedules delivery at `now + delay`.
    pub delay: SimDuration,
    /// When `Some(r)`, the caller must flip bit `r % (len * 8)` of the frame
    /// before delivering it (see [`FaultDecision::Deliver`]).
    pub corrupt: Option<u64>,
}

/// The network model: topology + per-host egress serialisation + statistics.
///
/// # Examples
///
/// ```
/// use integrade_simnet::net::Network;
/// use integrade_simnet::topology::{Topology, LinkSpec};
/// use integrade_simnet::time::SimTime;
///
/// let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
/// let mut net = Network::new(topo);
/// let delay = net.send(SimTime::ZERO, hosts[0], hosts[1], 1_000).unwrap();
/// assert!(delay.as_micros() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    /// Instant at which each host's NIC becomes free to transmit.
    egress_free: HashMap<HostId, SimTime>,
    stats: NetStats,
    per_host_sent: HashMap<HostId, u64>,
    faults: FaultPlan,
}

impl Network {
    /// Wraps a topology in the message model with no fault injection.
    pub fn new(topology: Topology) -> Self {
        Network {
            topology,
            egress_free: HashMap::new(),
            stats: NetStats::default(),
            per_host_sent: HashMap::new(),
            faults: FaultPlan::quiet(),
        }
    }

    /// Shared access to the underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the underlying topology (e.g. to fail hosts).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Installs a fault plan; subsequent sends are subject to it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The currently installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Computes the delivery delay for a message of `bytes` payload sent at
    /// `now` from `from` to `to`, updating the sender's egress queue.
    ///
    /// The caller should schedule delivery at `now + returned delay`.
    ///
    /// # Errors
    ///
    /// Fails if the destination is a known host that is down
    /// ([`NetError::HostDown`]), if routing fails ([`NetError::Route`]), or
    /// if the installed [`FaultPlan`] severs or drops the message. Routing
    /// and liveness failures count in [`NetStats::failures`]; injected
    /// losses count in [`NetStats::drops`]. Failed sends do not occupy the
    /// NIC.
    pub fn send(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
    ) -> Result<SimDuration, NetError> {
        self.send_checked(now, from, to, bytes).map(|d| d.delay)
    }

    /// Like [`Network::send`], but also surfaces an injected in-flight
    /// payload corruption so the caller can flip the drawn bit in the frame
    /// it delivers. Callers that ignore corruption (abstract traffic whose
    /// bytes never materialise) can keep using `send`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::send`].
    pub fn send_checked(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
    ) -> Result<Delivery, NetError> {
        // Liveness before routing: `path_quality` also fails for a down
        // endpoint, which used to shadow the more precise `HostDown` error.
        // Guard on `name_of` so unknown ids still surface as routing errors
        // (`is_up` reports false for hosts the topology has never seen).
        if self.topology.name_of(to).is_some() && !self.topology.is_up(to) {
            self.stats.failures += 1;
            return Err(NetError::HostDown(to));
        }
        let quality = match self.topology.path_quality(from, to) {
            Ok(q) => q,
            Err(e) => {
                self.stats.failures += 1;
                return Err(e.into());
            }
        };
        let (jitter, corrupt) = match self.faults.decide(now, from, to) {
            FaultDecision::Deliver { jitter, corrupt } => (jitter, corrupt),
            FaultDecision::Drop => {
                self.stats.drops += 1;
                return Err(NetError::Dropped { from, to });
            }
            FaultDecision::Partitioned => {
                self.stats.drops += 1;
                return Err(NetError::Partitioned { from, to });
            }
        };
        let delay = self.enqueue(now, from, bytes, quality) + jitter;
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        if corrupt.is_some() {
            self.stats.corrupted += 1;
        }
        *self.per_host_sent.entry(from).or_default() += 1;
        Ok(Delivery { delay, corrupt })
    }

    fn enqueue(&mut self, now: SimTime, from: HostId, bytes: u64, q: PathQuality) -> SimDuration {
        let free = self
            .egress_free
            .get(&from)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = if free > now { free } else { now };
        let tx_us =
            (bytes.saturating_mul(8) as u128 * 1_000_000 / q.bottleneck_bps.max(1) as u128) as u64;
        let tx = SimDuration::from_micros(tx_us);
        self.egress_free.insert(from, start + tx);
        (start - now) + tx + q.latency
    }

    /// Path quality between two hosts (routing only, no queueing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::path_quality`].
    pub fn path_quality(&mut self, from: HostId, to: HostId) -> Result<PathQuality, NetError> {
        Ok(self.topology.path_quality(from, to)?)
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Messages sent by one host.
    pub fn sent_by(&self, host: HostId) -> u64 {
        self.per_host_sent.get(&host).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn pair() -> (Network, HostId, HostId) {
        let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
        (Network::new(topo), hosts[0], hosts[1])
    }

    #[test]
    fn delay_is_latency_plus_serialisation() {
        let (mut net, a, b) = pair();
        // 100 Mbps, two hops of 200 µs latency; 12_500 bytes = 100_000 bits
        // = 1000 µs at 100 Mbps.
        let d = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(400 + 1000));
    }

    #[test]
    fn egress_serialises_back_to_back_sends() {
        let (mut net, a, b) = pair();
        let d1 = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        let d2 = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        // Second message waits for the first transmission (1000 µs).
        assert_eq!(d2, d1 + SimDuration::from_micros(1000));
    }

    #[test]
    fn egress_frees_up_over_time() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        // Sending after the NIC is free incurs no queueing.
        let later = SimTime::from_micros(10_000);
        let d = net.send(later, a, b, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(1400));
    }

    #[test]
    fn distinct_senders_do_not_queue_on_each_other() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 1_000_000).unwrap();
        let d = net.send(SimTime::ZERO, b, a, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(1400));
    }

    #[test]
    fn send_to_down_host_fails_and_counts() {
        let (mut net, a, b) = pair();
        net.topology_mut().set_up(b, false).unwrap();
        let err = net.send(SimTime::ZERO, a, b, 100).unwrap_err();
        assert_eq!(err, NetError::HostDown(b));
        assert_eq!(net.stats().failures, 1);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn send_to_unknown_host_is_a_routing_error() {
        let (mut net, a, _) = pair();
        let bogus = HostId(u32::MAX);
        let err = net.send(SimTime::ZERO, a, bogus, 100).unwrap_err();
        assert!(matches!(err, NetError::Route(_)));
    }

    #[test]
    fn fault_plan_drops_count_separately_from_failures() {
        use crate::faults::FaultPlan;
        let (mut net, a, b) = pair();
        net.set_fault_plan(FaultPlan::new(11).with_drop_probability(1.0));
        let err = net.send(SimTime::ZERO, a, b, 100).unwrap_err();
        assert_eq!(err, NetError::Dropped { from: a, to: b });
        assert_eq!(net.stats().drops, 1);
        assert_eq!(net.stats().failures, 0);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn partition_severs_then_heals() {
        use crate::faults::{FaultPlan, Partition};
        let (mut net, a, b) = pair();
        net.set_fault_plan(FaultPlan::new(2).with_partition(Partition {
            island: vec![b],
            start: SimTime::ZERO,
            heal: SimTime::from_secs(10),
        }));
        let err = net.send(SimTime::ZERO, a, b, 100).unwrap_err();
        assert_eq!(err, NetError::Partitioned { from: a, to: b });
        assert_eq!(net.stats().drops, 1);
        assert!(net.send(SimTime::from_secs(10), a, b, 100).is_ok());
    }

    #[test]
    fn jitter_inflates_delivery_delay() {
        use crate::faults::FaultPlan;
        let (mut clean, a, b) = pair();
        let baseline = clean.send(SimTime::ZERO, a, b, 12_500).unwrap();
        let (mut net, a, b) = pair();
        net.set_fault_plan(FaultPlan::new(4).with_jitter(SimDuration::from_millis(50)));
        let mut saw_extra = false;
        for i in 0..50u64 {
            let at = SimTime::from_secs(i * 60);
            let d = net.send(at, a, b, 12_500).unwrap();
            assert!(d >= baseline);
            assert!(d <= baseline + SimDuration::from_millis(50));
            saw_extra |= d > baseline;
        }
        assert!(saw_extra);
    }

    #[test]
    fn send_checked_surfaces_corruption_and_counts_it() {
        use crate::faults::FaultPlan;
        let (mut net, a, b) = pair();
        net.set_fault_plan(FaultPlan::new(9).with_corrupt_probability(1.0));
        let delivery = net.send_checked(SimTime::ZERO, a, b, 100).unwrap();
        assert!(delivery.corrupt.is_some());
        assert_eq!(net.stats().corrupted, 1);
        assert_eq!(net.stats().messages, 1, "corrupted frames still deliver");
    }

    #[test]
    fn plain_send_never_corrupts_silently_visible_state() {
        let (mut net, a, b) = pair();
        let d1 = net.send(SimTime::ZERO, a, b, 100).unwrap();
        let d2 = net.send_checked(SimTime::ZERO, b, a, 100).unwrap();
        assert_eq!(d1, d2.delay);
        assert_eq!(d2.corrupt, None);
        assert_eq!(net.stats().corrupted, 0);
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 100).unwrap();
        net.send(SimTime::ZERO, a, b, 200).unwrap();
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
        assert_eq!(net.sent_by(a), 2);
        assert_eq!(net.sent_by(b), 0);
    }

    #[test]
    fn zero_byte_message_still_has_latency() {
        let (mut net, a, b) = pair();
        let d = net.send(SimTime::ZERO, a, b, 0).unwrap();
        assert_eq!(d, SimDuration::from_micros(400));
    }
}
