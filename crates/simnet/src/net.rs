//! Message-level network model on top of a [`Topology`].
//!
//! [`Network`] computes when a message sent now would arrive, accounting for
//! path latency, serialisation at the bottleneck link, and per-host NIC
//! egress queueing (a host transmits one message at a time). The caller — a
//! discrete-event [`World`](crate::event::World) — schedules its own
//! delivery event after the returned delay, which keeps the network model
//! independent of the event payload type.

use crate::time::{SimDuration, SimTime};
use crate::topology::{HostId, PathQuality, Topology, TopologyError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors when sending a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Routing failed (unknown host, switch endpoint or partition).
    Route(TopologyError),
    /// Destination host is down.
    HostDown(HostId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Route(e) => write!(f, "routing failed: {e}"),
            NetError::HostDown(h) => write!(f, "destination host {h} is down"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Route(e) => Some(e),
            NetError::HostDown(_) => None,
        }
    }
}

impl From<TopologyError> for NetError {
    fn from(e: TopologyError) -> Self {
        NetError::Route(e)
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages successfully scheduled for delivery.
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Messages that failed to route.
    pub failures: u64,
}

/// The network model: topology + per-host egress serialisation + statistics.
///
/// # Examples
///
/// ```
/// use integrade_simnet::net::Network;
/// use integrade_simnet::topology::{Topology, LinkSpec};
/// use integrade_simnet::time::SimTime;
///
/// let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
/// let mut net = Network::new(topo);
/// let delay = net.send(SimTime::ZERO, hosts[0], hosts[1], 1_000).unwrap();
/// assert!(delay.as_micros() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    /// Instant at which each host's NIC becomes free to transmit.
    egress_free: HashMap<HostId, SimTime>,
    stats: NetStats,
    per_host_sent: HashMap<HostId, u64>,
}

impl Network {
    /// Wraps a topology in the message model.
    pub fn new(topology: Topology) -> Self {
        Network {
            topology,
            egress_free: HashMap::new(),
            stats: NetStats::default(),
            per_host_sent: HashMap::new(),
        }
    }

    /// Shared access to the underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the underlying topology (e.g. to fail hosts).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Computes the delivery delay for a message of `bytes` payload sent at
    /// `now` from `from` to `to`, updating the sender's egress queue.
    ///
    /// The caller should schedule delivery at `now + returned delay`.
    ///
    /// # Errors
    ///
    /// Fails if routing fails or the destination is down; failed sends count
    /// in [`NetStats::failures`] and do not occupy the NIC.
    pub fn send(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        bytes: u64,
    ) -> Result<SimDuration, NetError> {
        let quality = match self.topology.path_quality(from, to) {
            Ok(q) => q,
            Err(e) => {
                self.stats.failures += 1;
                return Err(e.into());
            }
        };
        if !self.topology.is_up(to) {
            self.stats.failures += 1;
            return Err(NetError::HostDown(to));
        }
        let delay = self.enqueue(now, from, bytes, quality);
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        *self.per_host_sent.entry(from).or_default() += 1;
        Ok(delay)
    }

    fn enqueue(&mut self, now: SimTime, from: HostId, bytes: u64, q: PathQuality) -> SimDuration {
        let free = self
            .egress_free
            .get(&from)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let start = if free > now { free } else { now };
        let tx_us =
            (bytes.saturating_mul(8) as u128 * 1_000_000 / q.bottleneck_bps.max(1) as u128) as u64;
        let tx = SimDuration::from_micros(tx_us);
        self.egress_free.insert(from, start + tx);
        (start - now) + tx + q.latency
    }

    /// Path quality between two hosts (routing only, no queueing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Topology::path_quality`].
    pub fn path_quality(&mut self, from: HostId, to: HostId) -> Result<PathQuality, NetError> {
        Ok(self.topology.path_quality(from, to)?)
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Messages sent by one host.
    pub fn sent_by(&self, host: HostId) -> u64 {
        self.per_host_sent.get(&host).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkSpec;

    fn pair() -> (Network, HostId, HostId) {
        let (topo, _, hosts) = Topology::star_cluster(2, LinkSpec::lan_100mbps());
        (Network::new(topo), hosts[0], hosts[1])
    }

    #[test]
    fn delay_is_latency_plus_serialisation() {
        let (mut net, a, b) = pair();
        // 100 Mbps, two hops of 200 µs latency; 12_500 bytes = 100_000 bits
        // = 1000 µs at 100 Mbps.
        let d = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(400 + 1000));
    }

    #[test]
    fn egress_serialises_back_to_back_sends() {
        let (mut net, a, b) = pair();
        let d1 = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        let d2 = net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        // Second message waits for the first transmission (1000 µs).
        assert_eq!(d2, d1 + SimDuration::from_micros(1000));
    }

    #[test]
    fn egress_frees_up_over_time() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 12_500).unwrap();
        // Sending after the NIC is free incurs no queueing.
        let later = SimTime::from_micros(10_000);
        let d = net.send(later, a, b, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(1400));
    }

    #[test]
    fn distinct_senders_do_not_queue_on_each_other() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 1_000_000).unwrap();
        let d = net.send(SimTime::ZERO, b, a, 12_500).unwrap();
        assert_eq!(d, SimDuration::from_micros(1400));
    }

    #[test]
    fn send_to_down_host_fails_and_counts() {
        let (mut net, a, b) = pair();
        net.topology_mut().set_up(b, false).unwrap();
        let err = net.send(SimTime::ZERO, a, b, 100).unwrap_err();
        assert!(matches!(err, NetError::Route(_)));
        assert_eq!(net.stats().failures, 1);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn stats_accumulate() {
        let (mut net, a, b) = pair();
        net.send(SimTime::ZERO, a, b, 100).unwrap();
        net.send(SimTime::ZERO, a, b, 200).unwrap();
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().bytes, 300);
        assert_eq!(net.sent_by(a), 2);
        assert_eq!(net.sent_by(b), 0);
    }

    #[test]
    fn zero_byte_message_still_has_latency() {
        let (mut net, a, b) = pair();
        let d = net.send(SimTime::ZERO, a, b, 0).unwrap();
        assert_eq!(d, SimDuration::from_micros(400));
    }
}
