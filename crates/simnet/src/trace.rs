//! Lightweight event trace recording for tests and experiment harnesses.
//!
//! A [`TraceLog`] collects `(time, category, detail)` records during a
//! simulation run. Tests assert on ordering or counts; experiment harnesses
//! aggregate per category.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of the occurrence.
    pub time: SimTime,
    /// Machine-matchable category, e.g. `"grm.schedule"`.
    pub category: String,
    /// Free-form human detail.
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.time, self.category, self.detail)
    }
}

/// An append-only record of simulation occurrences.
///
/// # Examples
///
/// ```
/// use integrade_simnet::trace::TraceLog;
/// use integrade_simnet::time::SimTime;
///
/// let mut log = TraceLog::new();
/// log.record(SimTime::from_secs(1), "job.start", "job 1 on node 3");
/// log.record(SimTime::from_secs(5), "job.done", "job 1");
/// assert_eq!(log.count("job.start"), 1);
/// assert!(log.first("job.done").is_some());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceLog {
    /// Creates an enabled, empty log.
    pub fn new() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled log; [`TraceLog::record`] becomes a no-op. Useful
    /// for benchmarks where tracing overhead would pollute measurements.
    pub fn disabled() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: false,
        }
    }

    /// Appends a record (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &str, detail: impl Into<String>) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                category: category.to_owned(),
                detail: detail.into(),
            });
        }
    }

    /// Appends a record whose detail is built lazily — the closure never
    /// runs when the log is disabled, so hot paths pay nothing for
    /// formatting they would throw away.
    pub fn record_with(&mut self, time: SimTime, category: &str, detail: impl FnOnce() -> String) {
        if self.enabled {
            self.records.push(TraceRecord {
                time,
                category: category.to_owned(),
                detail: detail(),
            });
        }
    }

    /// Appends a record whose detail is `prefix` followed by a decimal
    /// index — the common shape of per-node occurrences (`"node 17"`,
    /// `"update from 3"`). Produces exactly what
    /// `format!("{prefix}{index}")` would, without going through the
    /// formatting machinery.
    pub fn record_indexed(&mut self, time: SimTime, category: &str, prefix: &str, index: u64) {
        if !self.enabled {
            return;
        }
        let mut digits = [0u8; 20];
        let mut pos = digits.len();
        let mut rest = index;
        loop {
            pos -= 1;
            digits[pos] = b'0' + (rest % 10) as u8;
            rest /= 10;
            if rest == 0 {
                break;
            }
        }
        let mut detail = String::with_capacity(prefix.len() + (digits.len() - pos));
        detail.push_str(prefix);
        detail.push_str(std::str::from_utf8(&digits[pos..]).expect("ascii digits"));
        self.records.push(TraceRecord {
            time,
            category: category.to_owned(),
            detail,
        });
    }

    /// All records, in insertion (and therefore time) order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose category matches exactly.
    pub fn with_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Number of records in a category.
    pub fn count(&self, category: &str) -> usize {
        self.with_category(category).count()
    }

    /// First record in a category, if any.
    pub fn first(&self, category: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.category == category)
    }

    /// Last record in a category, if any.
    pub fn last(&self, category: &str) -> Option<&TraceRecord> {
        self.records.iter().rev().find(|r| r.category == category)
    }

    /// True when `earlier` has at least one record strictly before every
    /// record of `later`. Vacuously false if either category is absent.
    pub fn happens_before(&self, earlier: &str, later: &str) -> bool {
        match (self.last(earlier), self.first(later)) {
            (Some(e), Some(l)) => e.time < l.time,
            _ => false,
        }
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_secs(1), "a", "one");
        log.record(SimTime::from_secs(2), "b", "two");
        log.record(SimTime::from_secs(3), "a", "three");
        assert_eq!(log.len(), 3);
        assert_eq!(log.count("a"), 2);
        assert_eq!(log.first("a").unwrap().detail, "one");
        assert_eq!(log.last("a").unwrap().detail, "three");
        assert!(log.first("missing").is_none());
    }

    #[test]
    fn happens_before_semantics() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_secs(1), "x", "");
        log.record(SimTime::from_secs(2), "x", "");
        log.record(SimTime::from_secs(3), "y", "");
        assert!(log.happens_before("x", "y"));
        assert!(!log.happens_before("y", "x"));
        assert!(!log.happens_before("x", "missing"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "a", "ignored");
        log.record_with(SimTime::ZERO, "a", || panic!("must not format"));
        log.record_indexed(SimTime::ZERO, "a", "node ", 7);
        assert!(log.is_empty());
    }

    #[test]
    fn indexed_matches_format() {
        let mut log = TraceLog::new();
        for index in [0u64, 7, 10, 409, 18_446_744_073_709_551_615] {
            log.record_indexed(SimTime::ZERO, "c", "node ", index);
            assert_eq!(
                log.records().last().unwrap().detail,
                format!("node {index}")
            );
        }
        log.record_with(SimTime::from_secs(1), "c", || "built".to_owned());
        assert_eq!(log.last("c").unwrap().detail, "built");
    }

    #[test]
    fn clear_empties() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, "a", "");
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn display_is_informative() {
        let r = TraceRecord {
            time: SimTime::from_secs(90),
            category: "job.done".into(),
            detail: "j1".into(),
        };
        assert_eq!(r.to_string(), "[1m30s] job.done: j1");
    }
}
