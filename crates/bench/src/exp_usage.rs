//! E3 (category recovery by clustering) and E4 (idle-prediction accuracy).

use crate::table::{f2, f3, Table};
use integrade_simnet::rng::DetRng;
use integrade_usage::kmeans::{fit, KMeansConfig};
use integrade_usage::patterns::{CategoryLabel, LupaConfig, LupaModel};
use integrade_usage::predict::{
    brier_score, precision_recall, IdlePredictor, LupaPredictor, PersistencePredictor,
    PredictionContext,
};
use integrade_usage::sample::{DayPeriod, SampleWindow, SamplingConfig, UsageSample, Weekday};
use integrade_usage::series::resample;
use integrade_workload::desktop::{generate_trace, Archetype, TraceConfig, SLOTS_PER_DAY};

fn periods_of(trace: &[UsageSample]) -> Vec<DayPeriod> {
    let mut window = SampleWindow::new(SamplingConfig::default());
    for &s in trace {
        window.push(s);
    }
    window.take_completed()
}

/// Adjusted-free Rand index between two labelings (plain Rand index).
fn rand_index(a: &[usize], b: &[usize]) -> f64 {
    let n = a.len();
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (a[i] == a[j]) == (b[i] == b[j]) {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

fn expected_label(archetype: Archetype) -> CategoryLabel {
    match archetype {
        Archetype::OfficeWorker => CategoryLabel::OfficeHours,
        Archetype::NightOwl => CategoryLabel::NightActive,
        Archetype::Server => CategoryLabel::AlwaysBusy,
        Archetype::Spare => CategoryLabel::MostlyIdle,
        Archetype::LabMachine => CategoryLabel::Irregular,
    }
}

/// E3: clustering recovers the planted behavioural categories.
pub fn e3() -> Table {
    let mut table = Table::new(
        "E3: behavioural-category recovery (4 weeks of synthetic traces per node)",
        &[
            "archetype",
            "k_found",
            "dominant_label",
            "label_match",
            "weekend_rand_index",
        ],
    );
    let trace_cfg = TraceConfig::default();
    for archetype in [
        Archetype::OfficeWorker,
        Archetype::NightOwl,
        Archetype::Server,
        Archetype::Spare,
        Archetype::LabMachine,
    ] {
        let mut rng = DetRng::new(archetype as u64 * 31 + 5);
        let trace = generate_trace(archetype, &trace_cfg, &mut rng);
        let periods = periods_of(&trace);
        let model = LupaModel::train(&periods, LupaConfig::default());
        let dominant = model
            .categories()
            .iter()
            .max_by_key(|c| c.day_count)
            .expect("at least one category");
        // Rand index vs weekday/weekend ground truth (only meaningful for
        // office workers, where the split is the planted structure).
        let truth: Vec<usize> = periods
            .iter()
            .map(|p| p.weekday.is_weekend() as usize)
            .collect();
        let assignments: Vec<usize> = model.days().iter().map(|d| d.category).collect();
        let ri = rand_index(&truth, &assignments);
        let expected = expected_label(archetype);
        let labels: Vec<CategoryLabel> = model.categories().iter().map(|c| c.label).collect();
        let matched = labels.contains(&expected);
        table.push_row(vec![
            archetype.label().to_owned(),
            model.categories().len().to_string(),
            dominant.label.to_string(),
            matched.to_string(),
            f3(ri),
        ]);
    }
    table
}

/// E3 supplement: raw k-means on pooled day-curves separates archetypes.
pub fn e3_kmeans() -> Table {
    let mut table = Table::new(
        "E3b: k-means over pooled day-curves of 3 archetypes (Rand index vs truth)",
        &["k", "rand_index", "inertia"],
    );
    let trace_cfg = TraceConfig {
        weeks: 2,
        ..Default::default()
    };
    let mut data = Vec::new();
    let mut truth = Vec::new();
    for (label, archetype) in [
        Archetype::OfficeWorker,
        Archetype::NightOwl,
        Archetype::Server,
    ]
    .iter()
    .enumerate()
    {
        let mut rng = DetRng::new(label as u64 + 77);
        let trace = generate_trace(*archetype, &trace_cfg, &mut rng);
        for p in periods_of(&trace) {
            if !p.weekday.is_weekend() {
                data.push(resample(&p.load_curve(), 48));
                truth.push(label);
            }
        }
    }
    for k in 2..=5 {
        let model = fit(&data, KMeansConfig::new(k, 13));
        table.push_row(vec![
            k.to_string(),
            f3(rand_index(&truth, &model.assignments)),
            f2(model.inertia),
        ]);
    }
    table
}

/// E3c: distance ablation — time-jittered routines. Two planted archetypes
/// take the same-length daily break at well-separated times (a noon lunch
/// vs a 07:00 gym slot), and each day's break position jitters ±45 min.
/// Because the jitter (≤ ~1.5 slots) often exceeds the 1-hour break width,
/// two days of the *same* archetype frequently have non-overlapping dips —
/// Euclidean sees them as far apart as days of different archetypes. A
/// Sakoe–Chiba DTW window sized to the jitter absorbs the within-class
/// shift while the 5-hour between-class offset stays far outside the band.
pub fn e3c() -> Table {
    use integrade_usage::kmedoids::{self, DistanceKind};
    let mut table = Table::new(
        "E3c: clustering distance ablation — 1-h break at 12:00 vs 07:00, position jitter +/-45 min",
        &["method", "distance", "rand_index", "cost"],
    );
    let mut rng = DetRng::new(333);
    let slots = 48usize; // 30-minute resolution
    let slot_of = |hour: f64| ((hour / 24.0) * slots as f64) as usize;
    let make_day = |break_hour: f64, rng: &mut DetRng| -> Vec<f64> {
        let mut curve = vec![0.8; slots];
        let jitter = rng.normal(0.0, 1.5).round() as i64; // ±~45 min
        let start = (slot_of(break_hour) as i64 + jitter).clamp(0, slots as i64 - 2) as usize;
        for value in curve.iter_mut().skip(start).take(2) {
            *value = 0.05; // one-hour break
        }
        curve
    };
    let mut data = Vec::new();
    let mut truth = Vec::new();
    for _ in 0..20 {
        data.push(make_day(12.0, &mut rng));
        truth.push(0usize);
    }
    for _ in 0..20 {
        data.push(make_day(7.0, &mut rng));
        truth.push(1usize);
    }

    let kmeans_model = fit(&data, KMeansConfig::new(2, 4));
    table.push_row(vec![
        "k-means".into(),
        "euclidean".into(),
        f3(rand_index(&truth, &kmeans_model.assignments)),
        f2(kmeans_model.inertia),
    ]);
    let medoid_eu = kmedoids::fit(&data, 2, DistanceKind::Euclidean, 50);
    table.push_row(vec![
        "k-medoids".into(),
        "euclidean".into(),
        f3(rand_index(&truth, &medoid_eu.assignments)),
        f2(medoid_eu.total_cost),
    ]);
    let medoid_dtw = kmedoids::fit(&data, 2, DistanceKind::Dtw { window: 4 }, 50);
    table.push_row(vec![
        "k-medoids".into(),
        "dtw(w=4)".into(),
        f3(rand_index(&truth, &medoid_dtw.assignments)),
        f2(medoid_dtw.total_cost),
    ]);
    table
}

/// E4: idle-period forecast accuracy, LUPA vs persistence.
pub fn e4() -> Table {
    let mut table = Table::new(
        "E4: P(idle >= horizon) forecast quality — train 3 weeks, test 1 week (office archetype)",
        &[
            "horizon_min",
            "lupa_brier",
            "naive_brier",
            "lupa_f1",
            "naive_f1",
            "base_rate",
        ],
    );
    let trace_cfg = TraceConfig::default();
    let mut rng = DetRng::new(4040);
    let trace = generate_trace(Archetype::OfficeWorker, &trace_cfg, &mut rng);
    let periods = periods_of(&trace);
    let split = 21; // train on the first 3 weeks
    let model = LupaModel::train(&periods[..split], LupaConfig::default());
    let lupa = LupaPredictor::new(&model);
    let naive = PersistencePredictor::default();
    let threshold = LupaConfig::default().idle_threshold;

    for &horizon in &[15u32, 30, 60, 120] {
        let mut lupa_preds = Vec::new();
        let mut naive_preds = Vec::new();
        let mut outcomes = Vec::new();
        for period in &periods[split..] {
            let loads: Vec<f64> = period.load_curve();
            // Forecast every 45 minutes through the day.
            for slot in (3..SLOTS_PER_DAY - horizon as usize / 5).step_by(9) {
                let minute = (slot * 5) as u32;
                let ctx = PredictionContext {
                    weekday: period.weekday,
                    minute_of_day: minute,
                    partial_load: &loads[..slot],
                    slots_per_day: SLOTS_PER_DAY,
                    horizon_mins: horizon,
                };
                lupa_preds.push(lupa.prob_idle_for(&ctx));
                naive_preds.push(naive.prob_idle_for(&ctx));
                let end = slot + horizon as usize / 5;
                outcomes.push(loads[slot..end].iter().all(|&v| v < threshold));
            }
        }
        let base = outcomes.iter().filter(|&&o| o).count() as f64 / outcomes.len() as f64;
        let lupa_pr = precision_recall(&lupa_preds, &outcomes, 0.5);
        let naive_pr = precision_recall(&naive_preds, &outcomes, 0.5);
        table.push_row(vec![
            horizon.to_string(),
            f3(brier_score(&lupa_preds, &outcomes)),
            f3(brier_score(&naive_preds, &outcomes)),
            f3(lupa_pr.f1),
            f3(naive_pr.f1),
            f3(base),
        ]);
    }
    let _ = Weekday::new(0);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_recovers_planted_structure() {
        let table = e3();
        // Office worker: recovered office-hours label and weekend split.
        assert_eq!(table.cell(0, "label_match"), Some("true"));
        assert!(table.cell_f64(0, "weekend_rand_index").unwrap() > 0.85);
        // Night owl and server and spare also match.
        assert_eq!(table.cell(1, "label_match"), Some("true"));
        assert_eq!(table.cell(2, "label_match"), Some("true"));
        assert_eq!(table.cell(3, "label_match"), Some("true"));
    }

    #[test]
    fn e3b_kmeans_separates_archetypes_at_k3() {
        let table = e3_kmeans();
        let ri_k3 = table.cell_f64(1, "rand_index").unwrap();
        assert!(ri_k3 > 0.9, "k=3 should separate 3 archetypes: {ri_k3}");
    }

    #[test]
    fn e3c_dtw_absorbs_time_jitter() {
        let table = e3c();
        let kmeans_ri = table.cell_f64(0, "rand_index").unwrap();
        let dtw_ri = table.cell_f64(2, "rand_index").unwrap();
        assert!(dtw_ri > 0.95, "DTW recovers the duration split: {dtw_ri}");
        assert!(
            dtw_ri >= kmeans_ri,
            "elastic distance must not lose to euclidean under jitter ({dtw_ri} vs {kmeans_ri})"
        );
    }

    #[test]
    fn e4_lupa_wins_at_significant_horizons() {
        // The crossover shape: at minutes-scale horizons, last-value
        // persistence is nearly unbeatable ("idle now → idle in 15 min");
        // at the horizons that matter for scheduling ("will it stay idle
        // for a *significant amount of time*?" — §1), the pattern model
        // wins decisively because it anticipates owner arrivals.
        let table = e4();
        // Long horizons (rows 2, 3 = 60 and 120 min): LUPA clearly better.
        for row in [2usize, 3] {
            let lupa = table.cell_f64(row, "lupa_brier").unwrap();
            let naive = table.cell_f64(row, "naive_brier").unwrap();
            assert!(
                lupa * 2.0 < naive,
                "row {row}: lupa brier {lupa} should decisively beat naive {naive}"
            );
            assert!(
                table.cell_f64(row, "lupa_f1").unwrap() > table.cell_f64(row, "naive_f1").unwrap()
            );
        }
        // The naive baseline degrades as the horizon grows; LUPA does not.
        let naive_15 = table.cell_f64(0, "naive_brier").unwrap();
        let naive_120 = table.cell_f64(3, "naive_brier").unwrap();
        assert!(naive_120 > 2.0 * naive_15);
        let lupa_120 = table.cell_f64(3, "lupa_brier").unwrap();
        assert!(lupa_120 < 0.05, "LUPA stays accurate at 2 h: {lupa_120}");
    }
}
