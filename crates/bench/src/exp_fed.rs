//! E20: federated multi-cluster grid — routing-policy comparison at scale.
//!
//! The paper's §4 wide-area claim is qualitative: clusters "arranged in a
//! hierarchy" let one grid "encompass millions of machines", with GRMs
//! exchanging aggregated information and forwarding requests. E20 makes
//! the architecture pay rent: a 21-cluster federation (one root, four
//! hubs, sixteen leaves — 105k nodes at full scale) executes the same
//! mixed workload under each of the three wide-area routing designs the
//! middleware implements:
//!
//! * **linked-traders** — CORBA trading-service federation links probed
//!   breadth-first against *live* offer sets (the InteGrade default);
//! * **flat-directory** — every cluster streams its usage summary to one
//!   root directory that answers every placement query (the centralised
//!   baseline the paper argues against);
//! * **hierarchy-summaries** — requests route over staleness-bounded soft
//!   state built from periodic `FedSummary` aggregation up the tree.
//!
//! Every WAN message (summaries, queries, replies, marshalled forwards,
//! acks, status reports) is charged per-edge latency, serialisation time
//! and bytes, so the table compares what each design *spends* — WAN bytes
//! and messages — against what it *delivers* — placements, completions,
//! and origin-acknowledged completions. The committed artifact is
//! `BENCH_fed.json` (per-policy totals plus per-cluster completions); CI's
//! `e20smoke` gate re-runs a scaled-down federation and fails if
//! linked-trader spillover stops dominating the flat directory on
//! completion at no more than its WAN-byte budget
//! (`BENCH_fed_floor.json`).

use crate::table::Table;
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::federation::{Federation, RoutingPolicy};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_core::types::{ClusterId, ResourceVector};
use integrade_simnet::time::{SimDuration, SimTime};
use integrade_simnet::topology::LinkSpec;
use std::collections::BTreeMap;
use std::time::Instant;

/// Hubs under the root; each hub carries [`LEAVES_PER_HUB`] leaves.
pub const HUBS: u32 = 4;

/// Leaf clusters per hub (total clusters = 1 + HUBS * LEAVES_PER_HUB + HUBS).
pub const LEAVES_PER_HUB: u32 = 4;

/// Nodes per cluster at full E20 scale: 21 clusters × 5000 = 105k nodes.
pub const E20_NODES_PER_CLUSTER: usize = 5_000;

/// Nodes per cluster for the CI smoke gate (same topology, 1260 nodes).
pub const SMOKE_NODES_PER_CLUSTER: usize = 60;

/// Summary/status cadence.
pub const UPDATE_PERIOD_S: u64 = 60;

/// Warm-up before the submission burst: three update periods, so
/// summary-driven arms route on populated soft state.
pub const WARMUP_S: u64 = 3 * UPDATE_PERIOD_S;

/// Virtual horizon of each arm.
pub const HORIZON_S: u64 = 3_600;

/// The pinned seed (everything downstream is deterministic per seed).
pub const SEED: u64 = 20;

/// Total clusters in the E20 topology.
pub fn cluster_count() -> u32 {
    1 + HUBS + HUBS * LEAVES_PER_HUB
}

fn grid_of(seed: u64, n: usize, mips: u64, ram_mb: u64) -> Grid {
    let config = GridConfig::builder().seed(seed).gupa_warmup_days(0).build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..n)
            .map(|_| NodeSetup {
                resources: ResourceVector {
                    cpu_mips: mips,
                    ram_mb,
                    disk_mb: 10_000,
                },
                ..NodeSetup::idle_desktop()
            })
            .collect(),
    );
    builder.build()
}

/// Builds the 21-cluster federation: root(0) with mid-tier nodes, fast
/// big-RAM hubs over regional WAN links, slow small leaves over metro
/// links. Identical member grids across policies (same per-cluster seeds)
/// so the arms differ only in routing.
pub fn build_federation(nodes_per_cluster: usize, policy: RoutingPolicy) -> Federation {
    let mut b = Federation::builder()
        .seed(SEED)
        .routing(policy)
        .update_period(SimDuration::from_secs(UPDATE_PERIOD_S))
        .hop_budget(4)
        .root(ClusterId(0), grid_of(SEED, nodes_per_cluster, 1_000, 512));
    for h in 1..=HUBS {
        b = b.child_linked(
            ClusterId(h),
            ClusterId(0),
            grid_of(SEED ^ u64::from(h), nodes_per_cluster, 1_500, 2_048),
            LinkSpec::wan_regional(),
        );
    }
    for h in 1..=HUBS {
        for l in 0..LEAVES_PER_HUB {
            let id = 1 + HUBS + (h - 1) * LEAVES_PER_HUB + l;
            b = b.child_linked(
                ClusterId(id),
                ClusterId(h),
                grid_of(SEED ^ u64::from(id), nodes_per_cluster, 500, 256),
                LinkSpec::wan_metro(),
            );
        }
    }
    b.build().expect("static E20 topology is valid")
}

/// One policy arm's outcome.
#[derive(Debug, Clone)]
pub struct FedArm {
    /// Routing policy label.
    pub policy: &'static str,
    /// Jobs offered to the federation.
    pub submitted: usize,
    /// Jobs the routing arm found a home for.
    pub placed: usize,
    /// Placed jobs that completed within the horizon.
    pub completed: usize,
    /// Completions the *origin* GRM acknowledged (status loop closed).
    pub origin_acked: usize,
    /// Inter-cluster hops summed over placements.
    pub hops_total: u64,
    /// WAN bytes spent (all message classes, retransmissions included).
    pub wan_bytes: u64,
    /// WAN per-edge message transmissions.
    pub wan_messages: u64,
    /// Jobs forwarded off their origin cluster.
    pub forwards: u64,
    /// Spillover/directory queries issued.
    pub spillover_queries: u64,
    /// Usage summaries produced.
    pub summary_updates: u64,
    /// Wall-clock seconds for the arm.
    pub wall_s: f64,
    /// Completed jobs per executing cluster.
    pub per_cluster_completed: BTreeMap<u32, usize>,
}

/// Runs the mixed workload under one policy: per-leaf local bags, per-leaf
/// fast-CPU jobs that must reach a hub, per-leaf big-RAM bags that
/// overflow leaf memory, plus hub-local work.
pub fn run_arm(nodes_per_cluster: usize, policy: RoutingPolicy) -> FedArm {
    let label = match policy {
        RoutingPolicy::LinkedTraders => "linked-traders",
        RoutingPolicy::FlatDirectory => "flat-directory",
        RoutingPolicy::HierarchySummaries => "hierarchy-summaries",
    };
    let start = Instant::now();
    let mut fed = build_federation(nodes_per_cluster, policy);
    fed.run_until(SimTime::from_secs(WARMUP_S));

    let mut submitted = 0usize;
    let mut placements = Vec::new();
    let first_leaf = 1 + HUBS;
    for id in first_leaf..cluster_count() {
        let origin = ClusterId(id);
        // Fits the leaf's own offer set.
        submitted += 1;
        if let Ok(p) = fed.submit(origin, JobSpec::bag_of_tasks("local", 4, 20_000)) {
            placements.push(p);
        }
        // Needs 1200+ MIPS: only hubs qualify — one spillover hop.
        let mut fast = JobSpec::sequential("fast", 30_000);
        fast.requirements.min_cpu_mips = 1_200;
        submitted += 1;
        if let Ok(p) = fed.submit(origin, fast) {
            placements.push(p);
        }
        // Needs 512 MB per node: overflows the 256 MB leaves.
        let mut wide = JobSpec::bag_of_tasks("big-ram", 8, 15_000);
        wide.requirements.min_ram_mb = 512;
        submitted += 1;
        if let Ok(p) = fed.submit(origin, wide) {
            placements.push(p);
        }
    }
    for h in 1..=HUBS {
        let mut local = JobSpec::sequential("hub-local", 40_000);
        local.requirements.min_cpu_mips = 1_200;
        submitted += 1;
        if let Ok(p) = fed.submit(ClusterId(h), local) {
            placements.push(p);
        }
    }

    fed.run_until(SimTime::from_secs(WARMUP_S + HORIZON_S));
    fed.refresh();

    let mut completed = 0usize;
    let mut origin_acked = 0usize;
    let mut hops_total = 0u64;
    let mut per_cluster_completed: BTreeMap<u32, usize> = BTreeMap::new();
    for p in &placements {
        hops_total += u64::from(p.hops);
        if fed.job_state(p.id) == Some(JobState::Completed) {
            completed += 1;
            *per_cluster_completed.entry(p.id.cluster.0).or_insert(0) += 1;
        }
        if fed.origin_knows_complete(p.id) {
            origin_acked += 1;
        }
    }
    let stats = fed.wan_stats();
    FedArm {
        policy: label,
        submitted,
        placed: placements.len(),
        completed,
        origin_acked,
        hops_total,
        wan_bytes: stats.bytes,
        wan_messages: stats.messages,
        forwards: stats.forwards,
        spillover_queries: stats.spillover_queries,
        summary_updates: stats.summary_updates,
        wall_s: start.elapsed().as_secs_f64(),
        per_cluster_completed,
    }
}

/// All three arms at the given scale, in fixed order.
pub fn run_arms(nodes_per_cluster: usize) -> Vec<FedArm> {
    [
        RoutingPolicy::LinkedTraders,
        RoutingPolicy::FlatDirectory,
        RoutingPolicy::HierarchySummaries,
    ]
    .into_iter()
    .map(|p| run_arm(nodes_per_cluster, p))
    .collect()
}

/// Renders the arms as `BENCH_fed.json` content.
pub fn to_json(experiment: &str, nodes_per_cluster: usize, arms: &[FedArm]) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"{experiment}\",\n  \"clusters\": {},\n  \
         \"nodes_per_cluster\": {nodes_per_cluster},\n  \"total_nodes\": {},\n  \
         \"results\": [\n",
        cluster_count(),
        cluster_count() as usize * nodes_per_cluster,
    );
    for (i, a) in arms.iter().enumerate() {
        let sep = if i + 1 == arms.len() { "" } else { "," };
        let per_cluster: Vec<String> = a
            .per_cluster_completed
            .iter()
            .map(|(c, n)| format!("{{\"cluster\": {c}, \"completed\": {n}}}"))
            .collect();
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"submitted\": {}, \"placed\": {}, \
             \"completed\": {}, \"origin_acked\": {}, \"hops_total\": {}, \
             \"wan_bytes\": {}, \"wan_messages\": {}, \"forwards\": {}, \
             \"spillover_queries\": {}, \"summary_updates\": {}, \
             \"wall_s\": {:.3}, \"per_cluster\": [{}]}}{sep}\n",
            a.policy,
            a.submitted,
            a.placed,
            a.completed,
            a.origin_acked,
            a.hops_total,
            a.wan_bytes,
            a.wan_messages,
            a.forwards,
            a.spillover_queries,
            a.summary_updates,
            a.wall_s,
            per_cluster.join(", "),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn arms_table(title: String, arms: &[FedArm]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "policy",
            "placed",
            "completed",
            "origin_acked",
            "hops",
            "wan_bytes",
            "wan_msgs",
            "queries",
            "summaries",
            "wall_s",
        ],
    );
    for a in arms {
        table.push_row(vec![
            a.policy.to_owned(),
            format!("{}/{}", a.placed, a.submitted),
            a.completed.to_string(),
            a.origin_acked.to_string(),
            a.hops_total.to_string(),
            a.wan_bytes.to_string(),
            a.wan_messages.to_string(),
            a.spillover_queries.to_string(),
            a.summary_updates.to_string(),
            format!("{:.3}", a.wall_s),
        ]);
    }
    table
}

/// E20: the full-scale federation comparison. Side effect: writes
/// `BENCH_fed.json`.
pub fn e20() -> Table {
    let arms = run_arms(E20_NODES_PER_CLUSTER);
    match std::fs::write(
        "BENCH_fed.json",
        to_json("e20", E20_NODES_PER_CLUSTER, &arms),
    ) {
        Ok(()) => eprintln!("e20: wrote BENCH_fed.json"),
        Err(e) => eprintln!("e20: could not write BENCH_fed.json: {e}"),
    }
    arms_table(
        format!(
            "E20: federated routing at {} clusters / {} nodes",
            cluster_count(),
            cluster_count() as usize * E20_NODES_PER_CLUSTER
        ),
        &arms,
    )
}

/// A named numeric field from `BENCH_fed_floor.json`.
fn committed_field(key_name: &str) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_fed_floor.json").ok()?;
    let key = format!("\"{key_name}\":");
    let at = text.find(&key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// E20 smoke — the CI gate.
///
/// Re-runs the linked-traders and flat-directory arms on the same
/// 21-cluster topology at smoke scale and enforces the committed floors:
/// spillover must complete at least `completion_ratio_floor` times what
/// the flat directory completes, while spending no more than
/// `wan_bytes_ratio_ceiling` times its WAN bytes — i.e. linked traders
/// dominate the centralised baseline at an equal byte budget.
///
/// # Panics
///
/// Panics when either committed bound from `BENCH_fed_floor.json` is
/// violated.
pub fn e20smoke() -> Table {
    let linked = run_arm(SMOKE_NODES_PER_CLUSTER, RoutingPolicy::LinkedTraders);
    let flat = run_arm(SMOKE_NODES_PER_CLUSTER, RoutingPolicy::FlatDirectory);
    let completion_floor = committed_field("completion_ratio_floor").unwrap_or(1.0);
    let bytes_ceiling = committed_field("wan_bytes_ratio_ceiling").unwrap_or(1.0);
    let table = arms_table(
        format!(
            "E20 smoke: linked traders vs flat directory at {} clusters / {} nodes \
             (completion floor {completion_floor}, byte ceiling {bytes_ceiling})",
            cluster_count(),
            cluster_count() as usize * SMOKE_NODES_PER_CLUSTER
        ),
        &[linked.clone(), flat.clone()],
    );
    assert!(
        linked.completed as f64 >= flat.completed as f64 * completion_floor,
        "e20smoke: linked-trader completion {} fell below {completion_floor} x \
         flat-directory completion {} (BENCH_fed_floor.json)",
        linked.completed,
        flat.completed,
    );
    assert!(
        linked.wan_bytes as f64 <= flat.wan_bytes as f64 * bytes_ceiling,
        "e20smoke: linked-trader WAN bytes {} exceeded {bytes_ceiling} x \
         flat-directory bytes {} (BENCH_fed_floor.json)",
        linked.wan_bytes,
        flat.wan_bytes,
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny-scale shape check: every arm places and completes the whole
    /// workload, spillover actually crosses clusters, and linked traders
    /// beat the flat directory on WAN bytes (no standing summary stream).
    #[test]
    fn arms_complete_the_workload_and_linked_is_cheapest() {
        let arms = run_arms(20);
        for a in &arms {
            assert_eq!(a.placed, a.submitted, "{}", a.policy);
            assert_eq!(a.completed, a.placed, "{}", a.policy);
            assert_eq!(a.origin_acked, a.placed, "{}", a.policy);
            assert!(a.forwards > 0, "{}: workload must cross clusters", a.policy);
            assert!(a.hops_total > 0, "{}", a.policy);
        }
        let linked = &arms[0];
        let flat = &arms[1];
        assert!(
            linked.wan_bytes < flat.wan_bytes,
            "linked {} vs flat {}: the directory's standing summary stream \
             must cost more than on-demand probes",
            linked.wan_bytes,
            flat.wan_bytes
        );
    }

    #[test]
    fn committed_floor_is_parseable() {
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fed_floor.json"),
        )
        .expect("BENCH_fed_floor.json at repo root");
        assert!(text.contains("completion_ratio_floor"));
        assert!(text.contains("wan_bytes_ratio_ceiling"));
    }
}
