//! E14: simulator hot-loop scaling — active-set ticking, timer-wheel
//! events and allocation-free messaging at desktop-grid population sizes.
//!
//! The paper's premise is a grid "leveraging the idle computing power" of
//! *large numbers* of desktop machines; simulating such populations is only
//! useful if the simulator itself scales. This experiment sweeps cluster
//! sizes from 1k to 50k mostly idle nodes (a small sequential workload keeps
//! grid utilization under 5%, the realistic regime for an opportunistic
//! grid) and measures wall-clock throughput of the event loop:
//!
//! * **sim/wall ratio** — virtual seconds simulated per wall second;
//! * **events/s** — queue events dispatched per wall second;
//! * **peak heap depth** — the high-water mark of pending entries across
//!   the due buffer and the far-future binary heap combined (the timer
//!   wheel should keep it shallow relative to the population);
//! * **active-set vs reference** — at 20k nodes the original O(all nodes)
//!   per-tick walk (`TickMode::Reference`) runs too, and the table reports
//!   the speedup the active-set path buys at identical observable behavior
//!   (see `tests/tick_parity.rs` for the bit-for-bit proof).
//!
//! Emits a machine-readable `BENCH_scale.json`. The committed
//! `BENCH_scale_floor.json` records a conservative throughput floor for the
//! 5k-node cell; CI's `e14smoke` run fails if a regression drops below it.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade_simnet::time::{SimDuration, SimTime};
use std::time::Instant;

/// Node populations swept in active-set mode.
pub const SWEEP_NODES: [usize; 4] = [1_000, 5_000, 20_000, 50_000];

/// Population at which the reference walk runs for the speedup comparison.
pub const REFERENCE_NODES: usize = 20_000;

/// Virtual horizon of every cell, seconds.
pub const HORIZON_S: u64 = 7_200;

/// The pinned seed (the simulation is deterministic per seed).
pub const SEED: u64 = 14;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Node population of this cell.
    pub nodes: usize,
    /// Tick mode the cell ran under.
    pub mode: TickMode,
    /// Virtual seconds simulated per wall-clock second.
    pub sim_per_wall: f64,
    /// Queue events dispatched per wall-clock second.
    pub events_per_s: f64,
    /// Total events dispatched.
    pub events: u64,
    /// High-water mark of pending events (due buffer + far-future heap).
    pub peak_heap_depth: usize,
    /// Jobs that completed (sanity: the workload must actually run).
    pub completed: usize,
}

/// A 50k-node-capable grid: idle traceless nodes, delta suppression on
/// (idle status updates are suppressed after the first), and a crash-
/// detection window beyond the horizon so suppression is not mistaken for
/// death. Utilization stays under 5% by construction: five small
/// sequential jobs against thousands of providers.
fn scale_grid(nodes: usize, mode: TickMode) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(0)
        .delta_suppression(true)
        .crash_silence(SimDuration::from_secs(HORIZON_S * 2))
        .tick_mode(mode)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    grid.disable_trace();
    grid
}

/// Runs one cell: five small sequential jobs, two virtual hours.
pub fn run_cell(nodes: usize, mode: TickMode) -> ScaleCell {
    let mut grid = scale_grid(nodes, mode);
    for i in 0..5 {
        grid.submit(JobSpec::sequential(&format!("e14-{i}"), 60_000));
    }
    let started = Instant::now();
    let (_, events) = grid.run_until_counting(SimTime::from_secs(HORIZON_S));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let stats = grid.queue_stats();
    let completed = grid
        .report()
        .records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    ScaleCell {
        nodes,
        mode,
        sim_per_wall: HORIZON_S as f64 / wall,
        events_per_s: events as f64 / wall,
        events,
        peak_heap_depth: stats.peak_heap_depth,
        completed,
    }
}

/// The full sweep: every population in active-set mode, plus the reference
/// walk at [`REFERENCE_NODES`].
pub fn measure() -> Vec<ScaleCell> {
    let mut cells: Vec<ScaleCell> = SWEEP_NODES
        .iter()
        .map(|&n| run_cell(n, TickMode::ActiveSet))
        .collect();
    cells.push(run_cell(REFERENCE_NODES, TickMode::Reference));
    cells
}

fn mode_name(mode: TickMode) -> &'static str {
    match mode {
        TickMode::ActiveSet => "active-set",
        TickMode::Reference => "reference",
        TickMode::Sharded { .. } => "sharded",
    }
}

/// Renders the sweep as `BENCH_scale.json`, one object per cell, plus the
/// 20k active-set/reference speedup.
pub fn to_json(cells: &[ScaleCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e14\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"mode\": \"{}\", \"sim_per_wall\": {:.1}, \
             \"events_per_s\": {:.0}, \"events\": {}, \"peak_heap_depth\": {}, \
             \"completed\": {}}}{sep}\n",
            c.nodes,
            mode_name(c.mode),
            c.sim_per_wall,
            c.events_per_s,
            c.events,
            c.peak_heap_depth,
            c.completed,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_at_20k\": {:.1}\n}}\n",
        speedup_at_reference(cells).unwrap_or(0.0)
    ));
    out
}

/// Active-set over reference sim/wall ratio at [`REFERENCE_NODES`].
pub fn speedup_at_reference(cells: &[ScaleCell]) -> Option<f64> {
    let fast = cells
        .iter()
        .find(|c| c.nodes == REFERENCE_NODES && c.mode == TickMode::ActiveSet)?;
    let reference = cells
        .iter()
        .find(|c| c.nodes == REFERENCE_NODES && c.mode == TickMode::Reference)?;
    Some(fast.sim_per_wall / reference.sim_per_wall.max(1e-9))
}

/// E14: the scaling sweep. Side effect: writes `BENCH_scale.json`.
pub fn e14() -> Table {
    let cells = measure();
    match std::fs::write("BENCH_scale.json", to_json(&cells)) {
        Ok(()) => eprintln!("e14: wrote BENCH_scale.json"),
        Err(e) => eprintln!("e14: could not write BENCH_scale.json: {e}"),
    }
    let mut table = Table::new(
        "E14: simulator hot-loop scaling (idle desktop populations, <5% grid utilization)",
        &[
            "nodes",
            "mode",
            "sim_s_per_wall_s",
            "events_per_s",
            "events",
            "peak_heap_depth",
            "completed",
        ],
    );
    for c in &cells {
        table.push_row(vec![
            c.nodes.to_string(),
            mode_name(c.mode).to_owned(),
            f2(c.sim_per_wall),
            f2(c.events_per_s),
            c.events.to_string(),
            c.peak_heap_depth.to_string(),
            format!("{}/5", c.completed),
        ]);
    }
    if let Some(speedup) = speedup_at_reference(&cells) {
        table.push_row(vec![
            REFERENCE_NODES.to_string(),
            "speedup".to_owned(),
            f2(speedup),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    table
}

/// The committed throughput floor for the 5k-node cell (sim seconds per
/// wall second), read from `BENCH_scale_floor.json`.
pub(crate) fn committed_floor() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_scale_floor.json").ok()?;
    let key = "\"sim_per_wall_floor_5k\":";
    let at = text.find(key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// E14 smoke: the 5k-node active-set cell alone, compared against the
/// committed floor in `BENCH_scale_floor.json`. CI runs this in release
/// mode and fails the build on a throughput regression.
///
/// # Panics
///
/// Panics when the measured sim/wall ratio falls below the committed floor.
pub fn e14smoke() -> Table {
    let cell = run_cell(5_000, TickMode::ActiveSet);
    let floor = committed_floor().unwrap_or(0.0);
    let mut table = Table::new(
        "E14 smoke: 5k-node active-set throughput vs committed floor",
        &[
            "nodes",
            "sim_s_per_wall_s",
            "floor",
            "events_per_s",
            "completed",
        ],
    );
    table.push_row(vec![
        cell.nodes.to_string(),
        f2(cell.sim_per_wall),
        f2(floor),
        f2(cell.events_per_s),
        format!("{}/5", cell.completed),
    ]);
    assert!(
        cell.completed > 0,
        "e14smoke: no job completed — the scenario exercised nothing"
    );
    assert!(
        cell.sim_per_wall >= floor,
        "e14smoke: throughput regression — {:.1} sim s/wall s is below the \
         committed floor of {floor:.1} (BENCH_scale_floor.json)",
        cell.sim_per_wall
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast shape check (small population, debug build): the active-set
    /// cell completes its workload and keeps the far-future heap shallow
    /// relative to the population.
    #[test]
    fn small_cell_completes_and_keeps_heap_shallow() {
        let cell = run_cell(300, TickMode::ActiveSet);
        assert_eq!(cell.completed, 5, "{cell:?}");
        assert!(
            cell.peak_heap_depth < 300,
            "timer wheel should absorb near-term events: {cell:?}"
        );
        // A zero peak would mean the high-water mark is not being measured
        // at all (the pre-fix bug): any real cell drains events, and every
        // drain leaves pending timers behind.
        assert!(
            cell.peak_heap_depth > 0,
            "peak_heap_depth must report the true occupancy high-water mark: {cell:?}"
        );
        assert!(cell.events > 0);
    }

    /// The active-set path dispatches strictly fewer events than the
    /// reference walk on the same scenario (parked update timers), while
    /// completing the same workload.
    #[test]
    fn active_set_dispatches_fewer_events() {
        let fast = run_cell(400, TickMode::ActiveSet);
        let reference = run_cell(400, TickMode::Reference);
        assert_eq!(
            fast.completed, reference.completed,
            "{fast:?} {reference:?}"
        );
        assert!(
            fast.events < reference.events / 4,
            "parking must eliminate most idle update ticks: \
             {} active-set vs {} reference",
            fast.events,
            reference.events
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = vec![run_cell(200, TickMode::ActiveSet)];
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e14\""));
        assert!(json.contains("\"mode\": \"active-set\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn floor_parser_reads_committed_file() {
        // The floor file is committed at the repo root; when the test runs
        // from the crate directory, fall back to parsing inline.
        let sample = "{\n  \"sim_per_wall_floor_5k\": 123.5\n}\n";
        let key = "\"sim_per_wall_floor_5k\":";
        let at = sample.find(key).unwrap() + key.len();
        let parsed: f64 = sample[at..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((parsed - 123.5).abs() < 1e-9);
    }
}
