//! E9 (hierarchy scalability) and E10 (middleware wire costs).

use crate::table::{f2, Table};
use integrade_core::hierarchy::{ClusterHierarchy, ClusterSummary, FlatDirectory, WideAreaRequest};
use integrade_core::protocol::{LaunchRequest, ReserveRequest, StatusUpdate};
use integrade_core::types::{JobId, NodeId, NodeStatus};
use integrade_orb::cdr::CdrEncode;
use integrade_orb::giop::Message;
use integrade_orb::ior::ObjectKey;

fn leaf_summary() -> ClusterSummary {
    ClusterSummary {
        nodes: 64,
        exporting_nodes: 40,
        max_cpu_mips: 1000,
        max_free_ram_mb: 256,
        ..Default::default()
    }
}

/// E9: per-manager message load, hierarchy vs flat directory, as the grid
/// grows.
pub fn e9() -> Table {
    let mut table = Table::new(
        "E9: wide-area scalability — one summary update per leaf cluster",
        &[
            "fanout",
            "depth",
            "clusters",
            "hier_total_msgs",
            "hier_msgs_per_cluster",
            "flat_root_msgs",
            "route_hops",
        ],
    );
    for &(fanout, depth) in &[(2usize, 2usize), (4, 2), (4, 3), (8, 2), (8, 3), (16, 2)] {
        let (mut hierarchy, leaves) = ClusterHierarchy::uniform(fanout, depth);
        for &leaf in &leaves {
            hierarchy.update_summary(leaf, leaf_summary()).unwrap();
        }
        let hier_msgs = hierarchy.stats().update_messages;
        let mut flat = FlatDirectory::new();
        for (i, _) in leaves.iter().enumerate() {
            flat.update_summary(integrade_core::types::ClusterId(i as u32), leaf_summary());
        }
        // Route a request from the first leaf that only the last leaf's
        // numbers admit — worst-case traversal.
        let mut hierarchy2 = hierarchy.clone();
        let special = ClusterSummary {
            exporting_nodes: 1000,
            ..leaf_summary()
        };
        hierarchy2
            .update_summary(*leaves.last().unwrap(), special)
            .unwrap();
        let request = WideAreaRequest {
            nodes: 500,
            min_cpu_mips: 500,
            min_ram_mb: 64,
        };
        let hops = hierarchy2
            .route_request(leaves[0], &request)
            .unwrap()
            .map(|(_, h)| h)
            .unwrap_or(0);
        table.push_row(vec![
            fanout.to_string(),
            depth.to_string(),
            hierarchy.len().to_string(),
            hier_msgs.to_string(),
            f2(hier_msgs as f64 / leaves.len() as f64),
            flat.root_messages.to_string(),
            hops.to_string(),
        ]);
    }
    table
}

/// E10: wire sizes of the middleware's protocol messages — the "lightweight
/// ORB" claim made concrete.
pub fn e10() -> Table {
    let mut table = Table::new(
        "E10: protocol message wire sizes (CDR body + 12-byte GIOP header)",
        &["message", "body_bytes", "wire_bytes", "overhead_pct"],
    );
    let mut push = |name: &str, body: Vec<u8>, operation: &str| {
        let msg = Message::Request {
            request_id: 1,
            response_expected: true,
            object_key: ObjectKey::new("integrade/lrm"),
            operation: operation.to_owned(),
            body: body.clone().into(),
        };
        let wire = msg.wire_size();
        table.push_row(vec![
            name.to_owned(),
            body.len().to_string(),
            wire.to_string(),
            f2(100.0 * (wire - body.len()) as f64 / wire as f64),
        ]);
    };
    push(
        "StatusUpdate",
        StatusUpdate {
            node: NodeId(42),
            seq: 1234,
            status: NodeStatus {
                free_cpu_fraction: 0.3,
                free_ram_mb: 128,
                owner_active: false,
                exporting: true,
                running_parts: 1,
            },
            replicas: vec![],
            pending_done: vec![],
            pending_evicted: vec![],
            progress: vec![],
        }
        .to_cdr_bytes(),
        "update_status",
    );
    push(
        "ReserveRequest",
        ReserveRequest {
            request_id: 1,
            job: JobId(7),
            part: 3,
            ram_mb: 64,
            min_cpu_fraction: 0.1,
            duration_hint_s: 600,
        }
        .to_cdr_bytes(),
        "reserve",
    );
    push(
        "LaunchRequest",
        LaunchRequest {
            request_id: 2,
            reservation: 99,
            job: JobId(7),
            part: 3,
            work_mips_s: 1_000_000,
            checkpoint_interval_mips_s: 0.0,
            state_bytes: 4096,
            resume_version: 0,
            replicas: vec![],
        }
        .to_cdr_bytes(),
        "launch",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_hierarchy_bounds_per_cluster_load() {
        let table = e9();
        for row in 0..table.rows.len() {
            let depth = table.cell_f64(row, "depth").unwrap();
            let per_cluster = table.cell_f64(row, "hier_msgs_per_cluster").unwrap();
            // Per-leaf update cost = its depth; never the cluster count.
            assert!(
                (per_cluster - depth).abs() < 1e-9,
                "row {row}: {per_cluster} vs depth {depth}"
            );
            // The flat root absorbs one message per cluster (linear).
            let flat = table.cell_f64(row, "flat_root_msgs").unwrap();
            let clusters = table.cell_f64(row, "clusters").unwrap();
            // Leaves only: fanout^depth.
            assert!(flat < clusters);
        }
        // Routing stays within 2×depth hops.
        for row in 0..table.rows.len() {
            let depth = table.cell_f64(row, "depth").unwrap();
            let hops = table.cell_f64(row, "route_hops").unwrap();
            assert!(hops <= 2.0 * depth, "{hops} <= 2×{depth}");
        }
    }

    #[test]
    fn e10_messages_are_small() {
        let table = e10();
        for row in 0..table.rows.len() {
            let wire = table.cell_f64(row, "wire_bytes").unwrap();
            assert!(wire <= 160.0, "protocol messages are tens of bytes: {wire}");
        }
    }
}
