//! E13: the replicated checkpoint repository — wasted work and recovery
//! latency vs the replication factor `k`.
//!
//! The paper's §3 requires checkpoints so applications "resume ... in case
//! of crashes"; this experiment quantifies what distributing those
//! checkpoints buys. Every cell runs the same sequential job under seeded
//! payload corruption, crashes the part's first replica holder *and* its
//! executor at the same instant mid-run, and measures how much work was
//! re-executed and how long detection-to-restart took. With `k = 1` the
//! only replica dies with the holder, so recovery always falls back to a
//! from-zero restart; with `k ∈ {2, 3}` the surviving holders answer the
//! recovery fetch unless corruption eats every copy's transfer. Emits a
//! prose table and a machine-readable `BENCH_repo.json`.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_core::types::NodeId;
use integrade_simnet::faults::FaultPlan;
use integrade_simnet::time::SimTime;

/// The replication factors swept, in table order.
pub const K_FACTORS: [usize; 3] = [1, 2, 3];

/// Per-message payload-corruption probability active for the whole run:
/// high enough that single-copy recovery transfers sometimes fail, so the
/// digest-fallback across `k` replicas is actually exercised.
pub const CORRUPT_PROBABILITY: f64 = 0.15;

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct RepoCell {
    /// Replication factor of this cell.
    pub k: usize,
    /// Seed of this replication.
    pub seed: u64,
    /// Whether the job completed before the horizon.
    pub completed: bool,
    /// Work re-executed because of the crash, MIPS-seconds.
    pub wasted_work_mips_s: u64,
    /// Detection-to-restart latency of the post-crash recovery, seconds.
    /// `None` when the crash needed no relaunch (e.g. the banked checkpoint
    /// already covered the rest of the part, or no part was running at the
    /// crash instant).
    pub recovery_latency_s: Option<f64>,
    /// Digest-verified recovery fetches served by surviving replicas.
    pub recovered_fetches: usize,
    /// Recoveries that found no intact replica and restarted from zero.
    pub recover_failures: usize,
    /// Corrupted payloads caught by a CRC32 digest check.
    pub corrupt_detected: usize,
}

fn chaos_grid(k: usize, seed: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0) // checkpoint every ~200 s
        .replication_factor(k)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    grid.set_fault_plan(FaultPlan::new(seed).with_corrupt_probability(CORRUPT_PROBABILITY));
    grid
}

/// Runs one cell: a ~70-minute sequential job; at t=30 min the part's
/// first replica holder and its executor crash at the same instant (so
/// re-replication cannot refill the factor first), then the run continues
/// to a 12 h horizon.
pub fn run_cell(k: usize, seed: u64) -> RepoCell {
    let mut grid = chaos_grid(k, seed);
    let job = grid.submit(JobSpec::sequential("e13", 600_000));
    grid.run_until(SimTime::from_secs(1800));
    let crash_at = SimTime::from_secs(1800);
    if let Some(&holder) = grid.replica_holders(job, 0).first() {
        grid.crash_node(holder);
    }
    let executor = (0..grid.node_count() as u32)
        .map(NodeId)
        .find(|&n| !grid.lrm(n).unwrap().running().is_empty());
    if let Some(executor) = executor {
        grid.crash_node(executor);
    }
    grid.run_until(SimTime::from_secs(12 * 3600));
    let record = grid.job_record(job).unwrap();
    let log = grid.log();
    // Detection-to-restart: the first crash detection at/after the crash
    // instant, to the first part (re)start after that detection.
    let detected = log
        .with_category("grm.node_dead")
        .map(|r| r.time)
        .find(|t| *t >= crash_at);
    let restarted = detected.and_then(|d| {
        log.with_category("job.part_started")
            .map(|r| r.time)
            .find(|t| *t > d)
    });
    let recovery_latency_s = match (detected, restarted) {
        (Some(d), Some(r)) => Some((r - d).as_secs_f64()),
        _ => None,
    };
    RepoCell {
        k,
        seed,
        completed: record.state == JobState::Completed,
        wasted_work_mips_s: record.wasted_work_mips_s,
        recovery_latency_s,
        recovered_fetches: log.count("repo.fetch"),
        recover_failures: log.count("repo.recover_failed"),
        corrupt_detected: log.count("corrupt_detected"),
    }
}

/// The full sweep: every replication factor replicated across `seeds`.
pub fn measure(seeds: &[u64]) -> Vec<RepoCell> {
    let mut cells = Vec::new();
    for &k in &K_FACTORS {
        for &seed in seeds {
            cells.push(run_cell(k, seed));
        }
    }
    cells
}

/// Renders the sweep as `BENCH_repo.json`, one object per cell.
pub fn to_json(cells: &[RepoCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e13\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let latency = match c.recovery_latency_s {
            Some(s) => format!("{s:.1}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "    {{\"k\": {}, \"seed\": {}, \"completed\": {}, \"wasted_work_mips_s\": {}, \
             \"recovery_latency_s\": {latency}, \"recovered_fetches\": {}, \
             \"recover_failures\": {}, \"corrupt_detected\": {}}}{sep}\n",
            c.k,
            c.seed,
            c.completed,
            c.wasted_work_mips_s,
            c.recovered_fetches,
            c.recover_failures,
            c.corrupt_detected,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Aggregates the cells of one factor: (mean wasted MIPS-s, mean recovery
/// latency s over cells that measured one, completed count, total recover
/// failures, total corruption detections).
fn aggregate(cells: &[RepoCell], k: usize) -> (f64, Option<f64>, usize, usize, usize) {
    let at: Vec<&RepoCell> = cells.iter().filter(|c| c.k == k).collect();
    let n = at.len() as f64;
    let latencies: Vec<f64> = at.iter().filter_map(|c| c.recovery_latency_s).collect();
    let latency = if latencies.is_empty() {
        None
    } else {
        Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
    };
    (
        at.iter().map(|c| c.wasted_work_mips_s as f64).sum::<f64>() / n,
        latency,
        at.iter().filter(|c| c.completed).count(),
        at.iter().map(|c| c.recover_failures).sum(),
        at.iter().map(|c| c.corrupt_detected).sum(),
    )
}

/// Mean wasted work across the cells of one factor, MIPS-seconds.
pub fn mean_wasted(cells: &[RepoCell], k: usize) -> f64 {
    aggregate(cells, k).0
}

/// The seeds every published cell uses (pinned: the simulation is
/// deterministic per seed, so the table regenerates bit-identically).
pub const SEEDS: [u64; 4] = [21, 22, 23, 24];

/// E13: wasted work and recovery latency vs replication factor, with a
/// replica holder + executor double crash mid-run in every cell. Side
/// effect: writes `BENCH_repo.json` to the working directory.
pub fn e13() -> Table {
    let cells = measure(&SEEDS);
    match std::fs::write("BENCH_repo.json", to_json(&cells)) {
        Ok(()) => eprintln!("e13: wrote BENCH_repo.json"),
        Err(e) => eprintln!("e13: could not write BENCH_repo.json: {e}"),
    }
    let mut table = Table::new(
        "E13: replicated checkpoint repository (holder + executor crash, seeded corruption)",
        &[
            "k",
            "completed",
            "mean_wasted_mips_s",
            "mean_recovery_s",
            "recover_failures",
            "corrupt_detected",
        ],
    );
    for &k in &K_FACTORS {
        let (wasted, latency, completed, failures, corrupt) = aggregate(&cells, k);
        table.push_row(vec![
            k.to_string(),
            format!("{completed}/{}", SEEDS.len()),
            f2(wasted),
            latency.map_or_else(|| "n/a".to_string(), f2),
            failures.to_string(),
            corrupt.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wasted_work_strictly_decreases_with_k() {
        let cells = measure(&SEEDS);
        let w1 = mean_wasted(&cells, 1);
        let w2 = mean_wasted(&cells, 2);
        let w3 = mean_wasted(&cells, 3);
        assert!(
            w1 > w2 && w2 > w3,
            "wasted work must strictly decrease with k: {w1:.0} / {w2:.0} / {w3:.0}"
        );
        // Every cell still finishes: losing replicas costs redo, not the job.
        assert!(cells.iter().all(|c| c.completed), "{cells:?}");
    }

    #[test]
    fn single_replica_dies_with_its_holder() {
        // k=1: the sole replica is on the crashed holder, so recovery must
        // report a failure and restart the part from zero.
        let cell = run_cell(1, SEEDS[0]);
        assert!(cell.recover_failures >= 1, "{cell:?}");
        assert!(cell.completed, "{cell:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = to_json(&measure(&[21]).into_iter().take(2).collect::<Vec<_>>());
        assert!(json.contains("\"experiment\": \"e13\""));
        assert!(json.contains("\"k\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
