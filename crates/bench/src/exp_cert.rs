//! E18: result sabotage — certification policies vs a lying minority.
//!
//! A saboteur is the failure mode beyond gray failure: the host keeps
//! every protocol promise — answers on time, computes at full speed,
//! checkpoints dutifully — and then reports a *wrong result*. No crash
//! detector or progress watcher can see it, because the lie is the
//! payload itself. This experiment sweeps the saboteur fraction × lie
//! probability over the same cluster shape and workload, and measures
//! four certification regimes:
//!
//! * **no-cert** — results accepted on arrival; the delivered error
//!   rate is whatever the saboteurs choose it to be.
//! * **r2** — every part is executed twice on distinct nodes and the
//!   digests must agree (majority of 2).
//! * **r3** — three-way replication: robust even to a colluding pair,
//!   at triple the compute.
//! * **adaptive** — Sarmenta-style credibility: unknown nodes pay the
//!   r=2 quorum, nodes that accumulate certified agreements graduate to
//!   single-vote acceptance, seeded spot-check probes keep auditing the
//!   trusted, and one caught mismatch blacklists the node for good.
//!
//! The two delivered quantities per cell are the *wrong results
//! delivered* (an omniscient simulator-side counter — the grid itself
//! never learns ground truth) and the *redundant work bought*, in
//! MIPS-s, off the unified overhead ledger. The claim under test:
//! credibility-adaptive certification delivers zero wrong results at
//! saboteur fractions up to 30% while spending strictly less redundancy
//! than blanket r=3. Every run is simulated-deterministic per seed.
//! Emits a prose table and a machine-readable `BENCH_cert.json`.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_core::types::NodeId;
use integrade_simnet::faults::{FaultPlan, Saboteur};
use integrade_simnet::time::SimTime;

/// Cluster size; saboteur fractions below are multiples of 1/16.
pub const NODES: usize = 16;
/// Parts in the bag: two waves over the cluster, so honest nodes get a
/// chance to earn credibility inside a single job.
pub const PARTS: usize = 32;
/// Work per part, MIPS-s.
pub const WORK_EACH: u64 = 60_000;
/// Fractions of the cluster replaced by loner saboteurs (2/16, 4/16).
/// Collusion is exercised in `tests/cert.rs`; here every liar lies alone.
pub const SABOTEUR_FRACTIONS: [f64; 2] = [0.125, 0.25];
/// Per-part lie probabilities applied to the saboteurs.
pub const SABOTAGE_RATES: [f64; 2] = [0.2, 0.4];
/// Replication seeds: deterministic per seed, so replication — not
/// wall-clock repetition — is the noise control.
pub const SEEDS: [u64; 2] = [31, 32];
/// Credibility threshold for single-vote acceptance in the adaptive arm.
pub const TRUST: u32 = 10;
/// Spot-check probe rate in the adaptive arm.
pub const SPOT_RATE: f64 = 0.15;

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct CertCell {
    /// Certification regime: "no-cert", "r2", "r3" or "adaptive".
    pub arm: &'static str,
    /// Fraction of nodes sabotaging.
    pub saboteur_fraction: f64,
    /// Per-part lie probability on those nodes.
    pub rate: f64,
    /// Seed of this replication.
    pub seed: u64,
    /// Whether the job completed before the horizon.
    pub completed: bool,
    /// Submission-to-completion span, seconds.
    pub makespan_s: f64,
    /// Wrong results delivered to the user (omniscient ground truth).
    pub wrong_delivered: u64,
    /// Redundant certification work bought, MIPS-s.
    pub redundant_mips_s: f64,
    /// Saboteurs blacklisted by a caught mismatch.
    pub blacklisted: u64,
    /// Certification-forced re-executions.
    pub reexecutions: u64,
}

fn saboteur_count(fraction: f64) -> usize {
    (fraction * NODES as f64).round() as usize
}

fn cert_grid(seed: u64, arm: &'static str) -> Grid {
    let mut b = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0);
    b = match arm {
        "no-cert" => b,
        "r2" => b.certification(true).cert_replication(2),
        "r3" => b.certification(true).cert_replication(3),
        "adaptive" => b
            .certification(true)
            .cert_replication(2)
            .cert_adaptive(true)
            .cert_spot_check_rate(SPOT_RATE)
            .cert_trust_threshold(TRUST),
        other => panic!("unknown arm {other}"),
    };
    let mut builder = GridBuilder::new(b.build());
    builder.add_cluster((0..NODES).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// One run at a cell's settings: the first `fraction * NODES` nodes lie
/// with probability `rate` per part, each with its own wrong digest.
pub fn run_cell(arm: &'static str, fraction: f64, rate: f64, seed: u64) -> CertCell {
    let mut grid = cert_grid(seed, arm);
    let saboteurs = saboteur_count(fraction);
    if saboteurs > 0 {
        let mut plan = FaultPlan::new(seed);
        for n in 0..saboteurs {
            plan = plan.with_saboteur(Saboteur {
                host: grid.host_of(NodeId(n as u32)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(48 * 3600),
                probability: rate,
                collusion: None,
            });
        }
        grid.set_fault_plan(plan);
    }
    let job = grid.submit(JobSpec::bag_of_tasks("e18", PARTS, WORK_EACH));
    grid.run_until(SimTime::from_secs(24 * 3600));
    let record = grid.job_record(job).unwrap().clone();
    let snap = grid.metrics_snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    CertCell {
        arm,
        saboteur_fraction: fraction,
        rate: if saboteurs > 0 { rate } else { 0.0 },
        seed,
        completed: record.state == JobState::Completed,
        makespan_s: record
            .makespan()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        wrong_delivered: counter("grid_cert_wrong_delivered"),
        redundant_mips_s: grid.report().overhead.cert_redundant_mips_s,
        blacklisted: counter("grid_cert_blacklisted"),
        reexecutions: counter("grid_cert_reexecutions"),
    }
}

/// The full sweep: every (fraction, rate) cell × arm × seed.
pub fn measure(seeds: &[u64]) -> Vec<CertCell> {
    let mut cells = Vec::new();
    for &fraction in &SABOTEUR_FRACTIONS {
        for &rate in &SABOTAGE_RATES {
            for &seed in seeds {
                for arm in ["no-cert", "r2", "r3", "adaptive"] {
                    cells.push(run_cell(arm, fraction, rate, seed));
                }
            }
        }
    }
    cells
}

/// Renders the sweep as `BENCH_cert.json`, one object per cell.
pub fn to_json(cells: &[CertCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e18\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"saboteur_fraction\": {:.3}, \"rate\": {:.2}, \
             \"seed\": {}, \"completed\": {}, \"makespan_s\": {:.1}, \
             \"wrong_delivered\": {}, \"redundant_mips_s\": {:.0}, \
             \"blacklisted\": {}, \"reexecutions\": {}}}{sep}\n",
            c.arm,
            c.saboteur_fraction,
            c.rate,
            c.seed,
            c.completed,
            c.makespan_s,
            c.wrong_delivered,
            c.redundant_mips_s,
            c.blacklisted,
            c.reexecutions,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// E18: delivered error vs redundancy bought, for no certification,
/// fixed 2-way / 3-way replication and credibility-adaptive voting.
/// Side effect: writes `BENCH_cert.json` to the working directory.
pub fn e18() -> Table {
    let cells = measure(&SEEDS);
    match std::fs::write("BENCH_cert.json", to_json(&cells)) {
        Ok(()) => eprintln!("e18: wrote BENCH_cert.json"),
        Err(e) => eprintln!("e18: could not write BENCH_cert.json: {e}"),
    }
    let mut table = Table::new(
        "E18: result sabotage — certification policies vs a lying minority",
        &[
            "sab_frac",
            "rate",
            "arm",
            "completion_%",
            "makespan_s",
            "wrong",
            "redundant_mips_s",
            "blacklisted",
            "reexec",
        ],
    );
    for &fraction in &SABOTEUR_FRACTIONS {
        for &rate in &SABOTAGE_RATES {
            for arm in ["no-cert", "r2", "r3", "adaptive"] {
                let at: Vec<&CertCell> = cells
                    .iter()
                    .filter(|c| c.arm == arm && c.saboteur_fraction == fraction && c.rate == rate)
                    .collect();
                let n = at.len() as f64;
                let makespan = at.iter().map(|c| c.makespan_s).sum::<f64>() / n;
                let completion = 100.0 * at.iter().filter(|c| c.completed).count() as f64 / n;
                table.push_row(vec![
                    format!("{fraction:.3}"),
                    format!("{rate:.2}"),
                    arm.to_string(),
                    f2(completion),
                    f2(makespan),
                    at.iter()
                        .map(|c| c.wrong_delivered)
                        .sum::<u64>()
                        .to_string(),
                    f2(at.iter().map(|c| c.redundant_mips_s).sum::<f64>() / n),
                    at.iter().map(|c| c.blacklisted).sum::<u64>().to_string(),
                    at.iter().map(|c| c.reexecutions).sum::<u64>().to_string(),
                ]);
            }
        }
    }
    table
}

/// The savings the committed floor guards: fixed-r3 redundant work over
/// adaptive redundant work at the sweep's worst cell (25% saboteurs
/// lying 40% of the time), worst (minimum) over the replication seeds.
/// Both arms must complete and the adaptive arm must deliver zero wrong
/// results — that part is an absolute, not a floor.
pub fn smoke_savings() -> f64 {
    SEEDS
        .iter()
        .map(|&seed| {
            let r3 = run_cell("r3", 0.25, 0.4, seed);
            let adaptive = run_cell("adaptive", 0.25, 0.4, seed);
            assert!(
                r3.completed && adaptive.completed,
                "e18smoke: incomplete job (r3={}, adaptive={})",
                r3.completed,
                adaptive.completed
            );
            assert_eq!(
                adaptive.wrong_delivered, 0,
                "e18smoke: the adaptive arm delivered a wrong result"
            );
            assert!(
                adaptive.redundant_mips_s < r3.redundant_mips_s,
                "e18smoke: adaptive redundancy {} MIPS-s is not below r3's {}",
                adaptive.redundant_mips_s,
                r3.redundant_mips_s
            );
            r3.redundant_mips_s / adaptive.redundant_mips_s
        })
        .fold(f64::INFINITY, f64::min)
}

/// Parses the committed floor out of `BENCH_cert_floor.json`.
pub(crate) fn committed_floor() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_cert_floor.json").ok()?;
    let key = "\"cert_savings_floor_worst_cell\":";
    let at = text.find(key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// E18 smoke: the worst sweep cell alone, compared against the committed
/// floor in `BENCH_cert_floor.json`. The metric is a ratio of *simulated*
/// redundancy ledgers, so it is deterministic per seed — CI failures mean
/// the credibility engine or the quorum regressed, never host noise.
///
/// # Panics
///
/// Panics when the adaptive arm delivers a wrong result, fails to beat
/// r3's redundancy outright, or falls below the committed savings floor.
pub fn e18smoke() -> Table {
    let savings = smoke_savings();
    let floor = committed_floor();
    let mut table = Table::new(
        "E18 smoke: adaptive-vs-r3 redundancy savings at the worst cell vs committed floor",
        &["metric", "value"],
    );
    table.push_row(vec![
        "savings (r3/adaptive)".into(),
        format!("{savings:.2}x"),
    ]);
    table.push_row(vec![
        "committed floor".into(),
        floor.map_or("none".into(), |f| format!("{f:.2}x")),
    ]);
    if let Some(floor) = floor {
        assert!(
            savings >= floor,
            "e18smoke: redundancy savings {savings:.2}x fell below the committed floor {floor:.2}x"
        );
    } else {
        eprintln!("e18smoke: no BENCH_cert_floor.json — floor check skipped");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncertified_grid_delivers_wrong_results() {
        let cell = run_cell("no-cert", 0.25, 0.4, SEEDS[0]);
        assert!(cell.completed, "{cell:?}");
        assert!(
            cell.wrong_delivered >= 1,
            "a lying quarter of the cluster must poison at least one part: {cell:?}"
        );
        assert_eq!(cell.redundant_mips_s, 0.0, "no certification, no bill");
    }

    #[test]
    fn adaptive_beats_r3_and_delivers_nothing_wrong() {
        let savings = smoke_savings();
        assert!(
            savings > 1.0,
            "adaptive must strictly undercut r3 at the worst cell, got {savings:.2}x"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = vec![
            run_cell("no-cert", 0.125, 0.2, 31),
            run_cell("r2", 0.125, 0.2, 31),
        ];
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e18\""));
        assert!(json.contains("\"arm\": \"no-cert\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn floor_parser_reads_the_committed_shape() {
        let sample = "{\n  \"cert_savings_floor_worst_cell\": 1.20\n}\n";
        let key = "\"cert_savings_floor_worst_cell\":";
        let at = sample.find(key).unwrap() + key.len();
        let parsed: f64 = sample[at..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((parsed - 1.20).abs() < 1e-9);
    }
}
