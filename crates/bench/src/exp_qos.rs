//! E6: owner quality-of-service under different protection regimes.

use crate::table::{f3, Table};
use integrade_core::ncc::SharingPolicy;
use integrade_core::qos::{QosLedger, SharingDiscipline};
use integrade_simnet::rng::DetRng;
use integrade_usage::sample::{UsageSample, Weekday};
use integrade_workload::desktop::{generate_trace, Archetype, TraceConfig, SLOTS_PER_DAY};

/// A protection regime for the sweep.
#[derive(Debug, Clone)]
struct Regime {
    name: &'static str,
    policy: SharingPolicy,
    discipline: SharingDiscipline,
    /// If true, grid demand ignores the idleness requirement (runs 24/7).
    ignore_idle: bool,
}

/// E6: replay one week of an office owner's trace with a CPU-hungry grid
/// job pinned to the machine, under increasingly protective regimes.
pub fn e6() -> Table {
    let mut table = Table::new(
        "E6: owner-perceived slowdown, one week, grid job always wanting CPU",
        &[
            "regime",
            "mean_slowdown",
            "p95_slowdown",
            "max_slowdown",
            "cap_violations",
            "grid_active_slots",
        ],
    );
    let regimes = [
        Regime {
            name: "unprotected (no caps, co-run)",
            policy: SharingPolicy {
                max_cpu_fraction: 1.0,
                require_idle: false,
                ..SharingPolicy::default()
            },
            discipline: SharingDiscipline::Proportional,
            ignore_idle: true,
        },
        Regime {
            name: "capped 30% but co-run, no yield",
            policy: SharingPolicy {
                max_cpu_fraction: 0.3,
                require_idle: false,
                ..SharingPolicy::default()
            },
            discipline: SharingDiscipline::Proportional,
            ignore_idle: true,
        },
        Regime {
            name: "InteGrade defaults (30% cap, idle-only, yielding)",
            policy: SharingPolicy::default(),
            discipline: SharingDiscipline::Yielding,
            ignore_idle: false,
        },
    ];

    let trace_cfg = TraceConfig {
        weeks: 1,
        ..Default::default()
    };
    let mut rng = DetRng::new(606);
    let trace = generate_trace(Archetype::OfficeWorker, &trace_cfg, &mut rng);

    for regime in regimes {
        let mut ledger = QosLedger::new();
        for (i, owner) in trace.iter().enumerate() {
            let weekday = Weekday::from_day_number((i / SLOTS_PER_DAY) as u64);
            let minute = ((i % SLOTS_PER_DAY) * 5) as u32;
            // The grid wants the whole machine all the time.
            let allowed = if regime.ignore_idle {
                regime.policy.schedule.allows(weekday, minute)
            } else {
                regime.policy.allows_export(weekday, minute, owner)
            };
            let grid_demand = if allowed { 1.0 } else { 0.0 };
            let grid_usage = if !allowed {
                0.0
            } else {
                match regime.discipline {
                    SharingDiscipline::Yielding => regime.policy.grid_cpu_share(owner),
                    SharingDiscipline::Proportional => {
                        regime.policy.max_cpu_fraction.min(grid_demand)
                    }
                }
            };
            ledger.record(
                owner.cpu,
                grid_usage, // demand after capping — what actually competes
                grid_usage,
                regime.policy.max_cpu_fraction,
                regime.discipline,
            );
        }
        table.push_row(vec![
            regime.name.to_owned(),
            f3(ledger.mean_slowdown()),
            f3(ledger.quantile_slowdown(0.95)),
            f3(ledger.max_slowdown()),
            ledger.cap_violations.to_string(),
            ledger.grid_active_slots.to_string(),
        ]);
    }
    table
}

/// E6b: harvest-vs-protection frontier — how much grid CPU each regime
/// collects per week and what the owner pays.
pub fn e6_harvest() -> Table {
    let mut table = Table::new(
        "E6b: harvested CPU-hours/week vs owner cost (500-MIPS office desktop)",
        &["regime", "grid_cpu_hours", "mean_slowdown"],
    );
    let trace_cfg = TraceConfig {
        weeks: 1,
        ..Default::default()
    };
    let mut rng = DetRng::new(607);
    let trace = generate_trace(Archetype::OfficeWorker, &trace_cfg, &mut rng);
    let slot_hours = 5.0 / 60.0;

    for (name, policy, discipline) in [
        (
            "unprotected",
            SharingPolicy {
                max_cpu_fraction: 1.0,
                require_idle: false,
                ..SharingPolicy::default()
            },
            SharingDiscipline::Proportional,
        ),
        (
            "integrade-defaults",
            SharingPolicy::default(),
            SharingDiscipline::Yielding,
        ),
        (
            "integrade-generous",
            SharingPolicy::generous(),
            SharingDiscipline::Yielding,
        ),
    ] {
        let mut ledger = QosLedger::new();
        let mut harvested = 0.0;
        for (i, owner) in trace.iter().enumerate() {
            let weekday = Weekday::from_day_number((i / SLOTS_PER_DAY) as u64);
            let minute = ((i % SLOTS_PER_DAY) * 5) as u32;
            let allowed = match discipline {
                SharingDiscipline::Yielding => policy.allows_export(weekday, minute, owner),
                SharingDiscipline::Proportional => policy.schedule.allows(weekday, minute),
            };
            let usage = if !allowed {
                0.0
            } else {
                match discipline {
                    SharingDiscipline::Yielding => policy.grid_cpu_share(owner),
                    SharingDiscipline::Proportional => policy.max_cpu_fraction,
                }
            };
            harvested += usage * slot_hours;
            ledger.record(owner.cpu, usage, usage, policy.max_cpu_fraction, discipline);
        }
        table.push_row(vec![
            name.to_owned(),
            f3(harvested),
            f3(ledger.mean_slowdown()),
        ]);
    }
    let _ = UsageSample::idle();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_integrade_regime_is_harmless() {
        let table = e6();
        // Unprotected hurts.
        assert!(table.cell_f64(0, "mean_slowdown").unwrap() > 1.1);
        assert!(table.cell_f64(0, "max_slowdown").unwrap() > 1.5);
        // Capped co-run hurts less but still hurts.
        let capped = table.cell_f64(1, "mean_slowdown").unwrap();
        assert!(capped > 1.0 && capped < table.cell_f64(0, "mean_slowdown").unwrap());
        // InteGrade defaults: no perceived slowdown, no violations — the
        // paper's headline requirement.
        assert_eq!(table.cell_f64(2, "mean_slowdown"), Some(1.0));
        assert_eq!(table.cell_f64(2, "max_slowdown"), Some(1.0));
        assert_eq!(table.cell(2, "cap_violations"), Some("0"));
        // And the grid still got time on the machine.
        assert!(table.cell_f64(2, "grid_active_slots").unwrap() > 500.0);
    }

    #[test]
    fn e6b_frontier_shape() {
        let table = e6_harvest();
        let unprotected = table.cell_f64(0, "grid_cpu_hours").unwrap();
        let defaults = table.cell_f64(1, "grid_cpu_hours").unwrap();
        let generous = table.cell_f64(2, "grid_cpu_hours").unwrap();
        assert!(unprotected > generous && generous > defaults);
        assert_eq!(table.cell_f64(1, "mean_slowdown"), Some(1.0));
        assert_eq!(table.cell_f64(2, "mean_slowdown"), Some(1.0));
        assert!(table.cell_f64(0, "mean_slowdown").unwrap() > 1.0);
        // Even the protective default harvests tens of CPU-hours per week
        // from one desktop — the paper's waste argument.
        assert!(defaults > 20.0, "harvested {defaults} h");
    }
}
