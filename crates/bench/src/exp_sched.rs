//! E5 (scheduling-strategy comparison) and E8 (virtual-topology requests).

use crate::table::{f2, Table};
use integrade_bsp::cost::BspMachine;
use integrade_core::asct::{GroupRequest, JobSpec, TopologyRequest};
use integrade_core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade_core::scheduler::{place_blind, place_groups, worst_path, CandidateNode, Strategy};
use integrade_core::types::{NodeId, NodeStatus, ResourceVector};
use integrade_simnet::rng::DetRng;
use integrade_simnet::time::{SimDuration, SimTime};
use integrade_simnet::topology::{LinkSpec, Topology};
use integrade_workload::desktop::{generate_trace, Archetype, TraceConfig};

/// E5: job outcomes under the three ranking strategies on a mixed
/// (office/lab/spare) population.
pub fn e5() -> Table {
    let mut table = Table::new(
        "E5: scheduling strategies on a mixed desktop population (24 nodes, 36 jobs, 2 days)",
        &[
            "strategy",
            "completed",
            "evictions",
            "wasted_mips_s",
            "mean_makespan_s",
            "refusals",
        ],
    );
    for strategy in [
        Strategy::Random,
        Strategy::AvailabilityOnly,
        Strategy::PatternAware,
    ] {
        let config = GridConfig::builder()
            .strategy(strategy)
            .gupa_warmup_days(14)
            .seed(1234)
            .build();
        let trace_cfg = TraceConfig::default();
        let mut builder = GridBuilder::new(config);
        let mut rng = DetRng::new(555);
        let mut nodes = Vec::new();
        for i in 0..24u64 {
            let archetype = match i % 3 {
                0 => Archetype::OfficeWorker,
                1 => Archetype::LabMachine,
                _ => Archetype::Spare,
            };
            nodes.push(NodeSetup {
                trace: generate_trace(archetype, &trace_cfg, &mut rng.fork(i)),
                ..NodeSetup::idle_desktop()
            });
        }
        builder.add_cluster(nodes);
        let mut grid = builder.build();
        // 36 one-hour-ish jobs submitted through two working days.
        for i in 0..36u64 {
            grid.submit_at(
                JobSpec::sequential(&format!("job{i}"), 450_000),
                SimTime::ZERO + SimDuration::from_mins(20 + i * 75),
            );
        }
        grid.run_until(SimTime::ZERO + SimDuration::from_days(3));
        let report = grid.report();
        let refusals: u64 = report.records.iter().map(|r| r.negotiation_refusals).sum();
        table.push_row(vec![
            strategy.to_string(),
            report.completed().to_string(),
            report.total_evictions().to_string(),
            report.total_wasted_work().to_string(),
            f2(report.mean_makespan_s()),
            refusals.to_string(),
        ]);
    }
    table
}

fn campus_candidates(
    clusters: usize,
    per_cluster: usize,
    intra: LinkSpec,
    inter: LinkSpec,
) -> (Topology, Vec<CandidateNode>) {
    let (topo, groups) = Topology::campus(clusters, per_cluster, intra, inter);
    let mut candidates = Vec::new();
    let mut id = 0u32;
    for (_, hosts) in &groups {
        for &host in hosts {
            candidates.push(CandidateNode {
                node: NodeId(id),
                host,
                status: NodeStatus {
                    free_cpu_fraction: 0.3,
                    free_ram_mb: 128,
                    owner_active: false,
                    exporting: true,
                    running_parts: 0,
                },
                resources: ResourceVector {
                    cpu_mips: 700,
                    ram_mb: 256,
                    disk_mb: 10_000,
                },
                predicted_idle_prob: None,
            });
            id += 1;
        }
    }
    (topo, candidates)
}

/// E8: the paper's §3 virtual-topology request, topology-aware vs blind.
pub fn e8() -> Table {
    let mut table = Table::new(
        "E8: '2 groups x 50 nodes, 100 Mbps intra / 10 Mbps inter' (paper sect. 3 request)",
        &[
            "placement",
            "satisfied",
            "worst_path_mbps",
            "bsp_step_ms",
            "slowdown_vs_aware",
        ],
    );
    let (mut topo, candidates) =
        campus_candidates(2, 60, LinkSpec::lan_100mbps(), LinkSpec::lan_10mbps());
    let request = TopologyRequest::paper_example();
    let message_bytes = 64 * 1024;
    let work_units = 1_000_000u64; // per superstep

    // Topology-aware placement.
    let placement = place_groups(&mut topo, &candidates, &request).expect("satisfiable");
    // The BSP step time is governed by the worst *intra-group* path —
    // groups communicate internally every superstep.
    let aware_path = placement.worst_intra;
    let aware_machine = BspMachine::from_placement(aware_path, 700, message_bytes);
    let aware_step = aware_machine.superstep_seconds(work_units, 8);

    // Blind placement: top-100 by rank straddles the 10 Mbps core.
    let blind = place_blind(&candidates[10..], 100).expect("enough nodes");
    let blind_path = worst_path(&mut topo, &blind).expect("connected");
    let blind_machine = BspMachine::from_placement(blind_path, 700, message_bytes);
    let blind_step = blind_machine.superstep_seconds(work_units, 8);

    table.push_row(vec![
        "topology-aware".into(),
        "true".into(),
        f2(aware_path.bottleneck_bps as f64 / 1e6),
        f2(aware_step * 1e3),
        f2(1.0),
    ]);
    table.push_row(vec![
        "blind-top-rank".into(),
        "n/a".into(),
        f2(blind_path.bottleneck_bps as f64 / 1e6),
        f2(blind_step * 1e3),
        f2(blind_step / aware_step),
    ]);
    table
}

/// E8b: request satisfiability across inter-cluster bandwidth floors.
pub fn e8_sweep() -> Table {
    let mut table = Table::new(
        "E8b: inter-group bandwidth floor sweep (campus core = 10 Mbps)",
        &["min_inter_mbps", "satisfied", "error"],
    );
    for &floor_mbps in &[1u64, 5, 10, 50, 100] {
        let (mut topo, candidates) =
            campus_candidates(2, 60, LinkSpec::lan_100mbps(), LinkSpec::lan_10mbps());
        let request = TopologyRequest {
            groups: vec![
                GroupRequest {
                    nodes: 50,
                    min_intra_bps: 100_000_000,
                },
                GroupRequest {
                    nodes: 50,
                    min_intra_bps: 100_000_000,
                },
            ],
            min_inter_bps: floor_mbps * 1_000_000,
        };
        match place_groups(&mut topo, &candidates, &request) {
            Ok(_) => table.push_row(vec![floor_mbps.to_string(), "true".into(), "-".into()]),
            Err(e) => table.push_row(vec![floor_mbps.to_string(), "false".into(), e.to_string()]),
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_pattern_aware_wins_on_evictions() {
        let table = e5();
        let evictions = |row: usize| table.cell_f64(row, "evictions").unwrap();
        let completed = |row: usize| table.cell_f64(row, "completed").unwrap();
        // Rows: 0=random, 1=availability, 2=pattern-aware.
        assert!(
            evictions(2) <= evictions(0),
            "pattern-aware ({}) <= random ({})",
            evictions(2),
            evictions(0)
        );
        assert!(completed(2) >= completed(0));
        // Everyone should finish most of the work on this light load.
        assert!(completed(1) >= 30.0);
    }

    #[test]
    fn e8_blind_placement_pays_the_core_penalty() {
        let table = e8();
        assert_eq!(table.cell(0, "satisfied"), Some("true"));
        assert!(table.cell_f64(0, "worst_path_mbps").unwrap() >= 100.0);
        assert!(table.cell_f64(1, "worst_path_mbps").unwrap() <= 10.0);
        let slowdown = table.cell_f64(1, "slowdown_vs_aware").unwrap();
        assert!(slowdown > 3.0, "10x bandwidth gap must show: {slowdown}");
    }

    #[test]
    fn e8b_feasibility_boundary_at_core_bandwidth() {
        let table = e8_sweep();
        assert_eq!(table.cell(0, "satisfied"), Some("true")); // 1 Mbps floor
        assert_eq!(table.cell(2, "satisfied"), Some("true")); // 10 Mbps floor
        assert_eq!(table.cell(3, "satisfied"), Some("false")); // 50 Mbps floor
        assert!(table.cell(3, "error").unwrap().contains("bandwidth"));
    }
}
