//! E17: gray failures — straggler speculation vs doing nothing vs
//! BOINC-style deadline reissue.
//!
//! A derated desktop is the failure mode the paper's crash machinery
//! cannot see: the host answers every protocol message on time while
//! computing at a fraction of its advertised MIPS. This experiment sweeps
//! the slow-node fraction × derate factor and measures, for each cell,
//! three mitigation regimes over the same cluster shape and workload:
//!
//! * **spec-off** — the InteGrade grid with the straggler detector
//!   disarmed; the job waits for its slowest part.
//! * **spec-on** — progress-based detection plus a checkpoint-resumed
//!   speculative twin; first copy to finish wins, the loser is cancelled
//!   and its effort truthfully booked as waste.
//! * **boinc** — the pull-based baseline with a reporting deadline: a
//!   unit stuck on a slow client is abandoned wholesale and reissued,
//!   so mitigation arrives only after the deadline and all partial
//!   progress is lost (`crates/baselines/src/boinc.rs`).
//!
//! Because the three regimes price compute differently (the baseline
//! runs clients at full MIPS, the grid at the owner-protected share),
//! cross-arm comparisons use *inflation*: each cell's makespan divided
//! by the same arm's clean-cluster (no derate) makespan. Every run is
//! simulated-deterministic per seed, so cells replicate across seeds
//! rather than wall-clock repetitions; there is nothing to warm up.
//! Emits a prose table and a machine-readable `BENCH_spec.json`.

use crate::table::{f2, Table};
use integrade_baselines::boinc::{BoincConfig, BoincSim};
use integrade_baselines::harness::{BaselineNode, BaselineSystem};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_core::types::NodeId;
use integrade_simnet::faults::{DerateWindow, FaultPlan};
use integrade_simnet::time::{SimDuration, SimTime};

/// Cluster size: one part per node, so a straggling part cannot hide
/// behind queueing and every healthy node frees up as its own part ends.
pub const NODES: usize = 16;
/// Work per part, MIPS-s.
pub const WORK_EACH: u64 = 300_000;
/// Fractions of the cluster quietly degraded. 0.0 is each arm's own
/// inflation baseline.
pub const SLOW_FRACTIONS: [f64; 4] = [0.0, 0.1, 0.2, 0.3];
/// Effective-MIPS multipliers applied to the slow nodes.
pub const DERATE_FACTORS: [f64; 2] = [0.25, 0.4];
/// Replication seeds: deterministic per seed, so replication — not
/// wall-clock repetition — is the noise control.
pub const SEEDS: [u64; 2] = [21, 22];

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct SpecCell {
    /// Mitigation regime: "spec-off", "spec-on" or "boinc".
    pub arm: &'static str,
    /// Fraction of nodes derated.
    pub slow_fraction: f64,
    /// Effective-MIPS multiplier on those nodes (1.0 when none are).
    pub factor: f64,
    /// Seed of this replication.
    pub seed: u64,
    /// Whether the job completed before the horizon.
    pub completed: bool,
    /// Submission-to-completion span, seconds.
    pub makespan_s: f64,
    /// Work lost to evictions, lost races and abandoned instances, MIPS-s.
    pub wasted_mips_s: u64,
    /// Stragglers flagged (spec-on only).
    pub detected: usize,
    /// Speculative twins launched (spec-on only).
    pub launched: usize,
    /// Speculative twins that finished before their primary.
    pub won: usize,
}

fn slow_count(fraction: f64) -> usize {
    (fraction * NODES as f64).round() as usize
}

fn spec_grid(seed: u64, speculation: bool) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .speculation(speculation)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..NODES).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// One InteGrade run (speculation on or off) at a cell's settings.
fn run_grid_cell(arm: &'static str, fraction: f64, factor: f64, seed: u64) -> SpecCell {
    let speculation = arm == "spec-on";
    let mut grid = spec_grid(seed, speculation);
    let slow = slow_count(fraction);
    if slow > 0 {
        let mut plan = FaultPlan::new(seed);
        for n in 0..slow {
            plan = plan.with_derate(DerateWindow {
                host: grid.host_of(NodeId(n as u32)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(48 * 3600),
                factor,
            });
        }
        grid.set_fault_plan(plan);
    }
    let job = grid.submit(JobSpec::bag_of_tasks("e17", NODES, WORK_EACH));
    grid.run_until(SimTime::from_secs(24 * 3600));
    let record = grid.job_record(job).unwrap().clone();
    SpecCell {
        arm,
        slow_fraction: fraction,
        factor: if slow > 0 { factor } else { 1.0 },
        seed,
        completed: record.state == JobState::Completed,
        makespan_s: record
            .makespan()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        wasted_mips_s: record.wasted_work_mips_s,
        detected: grid.log().count("straggler.detected"),
        launched: grid.log().count("spec.launched"),
        won: grid.log().count("spec.won"),
    }
}

/// One BOINC-baseline run at a cell's settings: slow clients are modelled
/// as reduced-MIPS volunteers, and the reporting deadline (1.5× a healthy
/// task's duration) is the reissue trigger. Redundancy/quorum are 1 so the
/// measured waste is the straggler mitigation's alone, not duplication's.
fn run_boinc_cell(fraction: f64, factor: f64, seed: u64) -> SpecCell {
    let slow = slow_count(fraction);
    // Slow volunteers take the highest client indices: the engine's work
    // fetch polls clients in index order, so a low-indexed straggler would
    // re-grab every unit its own deadline miss just freed, starving the
    // healthy clients behind it of the reissue.
    let nodes: Vec<BaselineNode> = (0..NODES)
        .map(|i| {
            let mut node = BaselineNode::desktop(vec![]);
            if i >= NODES - slow {
                node.resources.cpu_mips =
                    ((node.resources.cpu_mips as f64) * factor).round() as u64;
            }
            node
        })
        .collect();
    let healthy_task_s = WORK_EACH / BaselineNode::desktop(vec![]).resources.cpu_mips;
    let config = BoincConfig {
        redundancy: 1,
        quorum: 1,
        deadline: SimDuration::from_secs(healthy_task_s * 3 / 2),
        seed,
        ..BoincConfig::default()
    };
    let submissions = vec![(
        SimTime::from_secs(0),
        JobSpec::bag_of_tasks("e17", NODES, WORK_EACH),
    )];
    let report = BoincSim::new(config).run(&nodes, &submissions, SimTime::from_secs(24 * 3600));
    let job = &report.jobs[0];
    SpecCell {
        arm: "boinc",
        slow_fraction: fraction,
        factor: if slow > 0 { factor } else { 1.0 },
        seed,
        completed: job.completed_at.is_some(),
        makespan_s: job.makespan().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        wasted_mips_s: job.wasted_work_mips_s,
        detected: 0,
        launched: 0,
        won: 0,
    }
}

/// The full sweep: every (fraction, factor) cell × arm × seed. The clean
/// cluster (fraction 0) runs once per arm and seed as the inflation base.
pub fn measure(seeds: &[u64]) -> Vec<SpecCell> {
    let mut cells = Vec::new();
    for &fraction in &SLOW_FRACTIONS {
        let factors: &[f64] = if fraction == 0.0 {
            &[1.0]
        } else {
            &DERATE_FACTORS
        };
        for &factor in factors {
            for &seed in seeds {
                cells.push(run_grid_cell("spec-off", fraction, factor, seed));
                cells.push(run_grid_cell("spec-on", fraction, factor, seed));
                cells.push(run_boinc_cell(fraction, factor, seed));
            }
        }
    }
    cells
}

/// Renders the sweep as `BENCH_spec.json`, one object per cell.
pub fn to_json(cells: &[SpecCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"arm\": \"{}\", \"slow_fraction\": {:.2}, \"factor\": {:.2}, \
             \"seed\": {}, \"completed\": {}, \"makespan_s\": {:.1}, \
             \"wasted_mips_s\": {}, \"detected\": {}, \"launched\": {}, \"won\": {}}}{sep}\n",
            c.arm,
            c.slow_fraction,
            c.factor,
            c.seed,
            c.completed,
            c.makespan_s,
            c.wasted_mips_s,
            c.detected,
            c.launched,
            c.won,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Mean makespan of one arm's cells at (fraction, factor).
fn mean_makespan(cells: &[SpecCell], arm: &str, fraction: f64, factor: f64) -> f64 {
    let at: Vec<&SpecCell> = cells
        .iter()
        .filter(|c| c.arm == arm && c.slow_fraction == fraction && c.factor == factor)
        .collect();
    at.iter().map(|c| c.makespan_s).sum::<f64>() / at.len().max(1) as f64
}

/// E17: makespan inflation and wasted work under gray failure, for
/// speculation off / on and the BOINC reissue baseline. Side effect:
/// writes `BENCH_spec.json` to the working directory.
pub fn e17() -> Table {
    let cells = measure(&SEEDS);
    match std::fs::write("BENCH_spec.json", to_json(&cells)) {
        Ok(()) => eprintln!("e17: wrote BENCH_spec.json"),
        Err(e) => eprintln!("e17: could not write BENCH_spec.json: {e}"),
    }
    let mut table = Table::new(
        "E17: gray failures — speculation off vs on vs BOINC deadline reissue",
        &[
            "slow_frac",
            "derate",
            "arm",
            "completion_%",
            "makespan_s",
            "inflation",
            "wasted_mips_s",
            "detected",
            "won",
        ],
    );
    for &fraction in &SLOW_FRACTIONS[1..] {
        for &factor in &DERATE_FACTORS {
            for arm in ["spec-off", "spec-on", "boinc"] {
                let base = mean_makespan(&cells, arm, 0.0, 1.0);
                let at: Vec<&SpecCell> = cells
                    .iter()
                    .filter(|c| c.arm == arm && c.slow_fraction == fraction && c.factor == factor)
                    .collect();
                let makespan = at.iter().map(|c| c.makespan_s).sum::<f64>() / at.len() as f64;
                let completion =
                    100.0 * at.iter().filter(|c| c.completed).count() as f64 / at.len() as f64;
                table.push_row(vec![
                    format!("{fraction:.1}"),
                    format!("{factor:.2}"),
                    arm.to_string(),
                    f2(completion),
                    f2(makespan),
                    format!("{:.2}x", makespan / base.max(1.0)),
                    (at.iter().map(|c| c.wasted_mips_s).sum::<u64>() / at.len() as u64).to_string(),
                    at.iter().map(|c| c.detected).sum::<usize>().to_string(),
                    at.iter().map(|c| c.won).sum::<usize>().to_string(),
                ]);
            }
        }
    }
    table
}

/// The speedup the committed floor guards: speculation-off makespan over
/// speculation-on makespan at 20% slow nodes, derate 0.25, best of the
/// two replication seeds (both must complete).
pub fn smoke_speedup() -> f64 {
    SEEDS
        .iter()
        .map(|&seed| {
            let off = run_grid_cell("spec-off", 0.2, 0.25, seed);
            let on = run_grid_cell("spec-on", 0.2, 0.25, seed);
            assert!(
                off.completed && on.completed,
                "e17smoke: incomplete job (off={}, on={})",
                off.completed,
                on.completed
            );
            assert!(on.won >= 1, "e17smoke: no speculative win at 20% slow");
            off.makespan_s / on.makespan_s
        })
        .fold(0.0, f64::max)
}

/// Parses the committed floor out of `BENCH_spec_floor.json`.
pub(crate) fn committed_floor() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_spec_floor.json").ok()?;
    let key = "\"spec_speedup_floor_20pct\":";
    let at = text.find(key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// E17 smoke: the 20%-slow, 0.25-derate cell alone, compared against the
/// committed floor in `BENCH_spec_floor.json`. The metric is a ratio of
/// *simulated* makespans, so it is deterministic per seed — CI failures
/// mean the detector or the twin race regressed, never host noise.
///
/// # Panics
///
/// Panics when speculation no longer beats the committed speedup floor,
/// when either arm fails to complete the job, or when no twin wins.
pub fn e17smoke() -> Table {
    let speedup = smoke_speedup();
    let floor = committed_floor();
    let mut table = Table::new(
        "E17 smoke: speculation speedup at 20% slow nodes vs committed floor",
        &["metric", "value"],
    );
    table.push_row(vec!["speedup (off/on)".into(), format!("{speedup:.2}x")]);
    table.push_row(vec![
        "committed floor".into(),
        floor.map_or("none".into(), |f| format!("{f:.2}x")),
    ]);
    if let Some(floor) = floor {
        assert!(
            speedup >= floor,
            "e17smoke: speculation speedup {speedup:.2}x fell below the committed floor \
             {floor:.2}x"
        );
    } else {
        eprintln!("e17smoke: no BENCH_spec_floor.json — floor check skipped");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculation_beats_off_at_20_percent_slow() {
        let speedup = smoke_speedup();
        assert!(
            speedup > 1.0,
            "speculation must strictly improve makespan at 20% slow, got {speedup:.2}x"
        );
    }

    #[test]
    fn boinc_reissue_wastes_the_stragglers_partial_progress() {
        let cell = run_boinc_cell(0.2, 0.25, SEEDS[0]);
        assert!(cell.completed, "{cell:?}");
        assert!(
            cell.wasted_mips_s > 0,
            "deadline reissue must abandon partial work: {cell:?}"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = vec![
            run_grid_cell("spec-off", 0.0, 1.0, 21),
            run_boinc_cell(0.1, 0.25, 21),
        ];
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e17\""));
        assert!(json.contains("\"arm\": \"spec-off\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn floor_parser_reads_the_committed_shape() {
        // Shape-compatibility guard for the key-scan parser.
        let sample = "{\n  \"spec_speedup_floor_20pct\": 1.30\n}\n";
        let key = "\"spec_speedup_floor_20pct\":";
        let at = sample.find(key).unwrap() + key.len();
        let parsed: f64 = sample[at..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((parsed - 1.30).abs() < 1e-9);
    }
}
