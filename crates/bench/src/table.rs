//! Plain-text result tables for the experiment harness.

use std::fmt;

/// A titled, column-aligned results table (what EXPERIMENTS.md records).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id + description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Looks up a cell by (row, column header).
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a cell as f64 (for assertions in tests).
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?.trim_end_matches('%').parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Shorthand: formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Shorthand: formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T: demo", &["name", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-name".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("## T: demo"));
        assert!(s.contains("| long-name | 22    |"));
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push_row(vec!["7".into(), "95%".into()]);
        assert_eq!(t.cell(0, "x"), Some("7"));
        assert_eq!(t.cell_f64(0, "y"), Some(95.0));
        assert_eq!(t.cell(0, "z"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("t", &["a"]).push_row(vec!["1".into(), "2".into()]);
    }
}
