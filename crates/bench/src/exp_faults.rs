//! E12: completion under chaos — fault intensity vs the hardened protocol.
//!
//! The paper argues InteGrade must tolerate "machines crash\[ing\] or
//! disconnect\[ing\] from the network at any time". This experiment injects
//! seeded message loss plus one mid-run GRM crash/restart and measures how
//! the retransmission/dedup/lease/epoch machinery holds the completion
//! rate, and what the faults cost in makespan relative to the clean run.
//! Emits a prose table and a machine-readable `BENCH_faults.json`.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_simnet::faults::FaultPlan;
use integrade_simnet::time::{SimDuration, SimTime};

/// The drop rates swept, in table order. 0.05 is the "default chaos"
/// setting the suite's acceptance bar (≥95% completion) is pinned to.
pub const DROP_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Injected per-message drop probability.
    pub drop_rate: f64,
    /// Seed of this replication.
    pub seed: u64,
    /// Jobs that reached `Completed` before the horizon.
    pub completed: usize,
    /// Jobs submitted.
    pub total: usize,
    /// Mean makespan of completed jobs, seconds.
    pub mean_makespan_s: f64,
    /// Protocol-level retransmissions performed.
    pub retransmits: usize,
    /// Retransmissions answered from the LRM dedup cache.
    pub dedup_hits: usize,
    /// Messages the fault plan destroyed in flight.
    pub drops: u64,
}

fn chaos_grid(seed: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// Runs one cell: a mixed workload under `drop_rate` loss with one GRM
/// crash at t=15min and restart at t=20min, to a 24h horizon.
pub fn run_cell(drop_rate: f64, seed: u64) -> FaultCell {
    let mut grid = chaos_grid(seed);
    if drop_rate > 0.0 {
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(drop_rate)
                .with_jitter(SimDuration::from_millis(20)),
        );
    }
    let jobs = [
        grid.submit(JobSpec::sequential("e12-seq", 400_000)),
        grid.submit(JobSpec::bag_of_tasks("e12-bag", 4, 90_000)),
        grid.submit(JobSpec::sequential("e12-seq2", 200_000)),
    ];
    grid.run_until(SimTime::from_secs(900));
    grid.crash_grm();
    grid.run_until(SimTime::from_secs(1200));
    grid.restart_grm();
    grid.run_until(SimTime::from_secs(24 * 3600));
    let report = grid.report();
    let completed = jobs
        .iter()
        .filter(|j| grid.job_record(**j).unwrap().state == JobState::Completed)
        .count();
    FaultCell {
        drop_rate,
        seed,
        completed,
        total: jobs.len(),
        mean_makespan_s: report.mean_makespan_s(),
        retransmits: grid.log().count("retransmits"),
        dedup_hits: grid.log().count("dedup_hits"),
        drops: report.net.drops,
    }
}

/// The full sweep: every drop rate replicated across `seeds`.
pub fn measure(seeds: &[u64]) -> Vec<FaultCell> {
    let mut cells = Vec::new();
    for &rate in &DROP_RATES {
        for &seed in seeds {
            cells.push(run_cell(rate, seed));
        }
    }
    cells
}

/// Renders the sweep as `BENCH_faults.json`, one object per cell.
pub fn to_json(cells: &[FaultCell]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e12\",\n  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"drop_rate\": {:.2}, \"seed\": {}, \"completed\": {}, \"total\": {}, \
             \"completion_rate\": {:.4}, \"mean_makespan_s\": {:.1}, \"retransmits\": {}, \
             \"dedup_hits\": {}, \"drops\": {}}}{sep}\n",
            c.drop_rate,
            c.seed,
            c.completed,
            c.total,
            c.completed as f64 / c.total as f64,
            c.mean_makespan_s,
            c.retransmits,
            c.dedup_hits,
            c.drops,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Aggregates the cells of one drop rate: (completion %, mean makespan s,
/// total retransmits, total dedup hits, total drops).
fn aggregate(cells: &[FaultCell], rate: f64) -> (f64, f64, usize, usize, u64) {
    let at: Vec<&FaultCell> = cells.iter().filter(|c| c.drop_rate == rate).collect();
    let total: usize = at.iter().map(|c| c.total).sum();
    let completed: usize = at.iter().map(|c| c.completed).sum();
    let makespan = at.iter().map(|c| c.mean_makespan_s).sum::<f64>() / at.len() as f64;
    (
        100.0 * completed as f64 / total as f64,
        makespan,
        at.iter().map(|c| c.retransmits).sum(),
        at.iter().map(|c| c.dedup_hits).sum(),
        at.iter().map(|c| c.drops).sum(),
    )
}

/// E12: completion rate and makespan inflation vs fault intensity, with
/// one mid-run GRM crash/restart in every cell. Side effect: writes
/// `BENCH_faults.json` to the working directory.
pub fn e12() -> Table {
    let cells = measure(&[11, 12, 13]);
    match std::fs::write("BENCH_faults.json", to_json(&cells)) {
        Ok(()) => eprintln!("e12: wrote BENCH_faults.json"),
        Err(e) => eprintln!("e12: could not write BENCH_faults.json: {e}"),
    }
    let (_, baseline_makespan, _, _, _) = aggregate(&cells, 0.0);
    let mut table = Table::new(
        "E12: completion under chaos (seeded loss + one GRM crash/restart)",
        &[
            "drop_rate",
            "completion_%",
            "mean_makespan_s",
            "makespan_inflation",
            "retransmits",
            "dedup_hits",
            "drops",
        ],
    );
    for &rate in &DROP_RATES {
        let (completion, makespan, retransmits, dedup, drops) = aggregate(&cells, rate);
        table.push_row(vec![
            format!("{rate:.2}"),
            f2(completion),
            f2(makespan),
            format!("{:.2}x", makespan / baseline_makespan.max(1.0)),
            retransmits.to_string(),
            dedup.to_string(),
            drops.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chaos_completes_at_least_95_percent() {
        // The acceptance bar: ≥95% completion at the default chaos setting
        // (5% drop + jitter + a mid-run GRM crash/restart).
        let cells: Vec<FaultCell> = [11, 12, 13].iter().map(|&s| run_cell(0.05, s)).collect();
        let total: usize = cells.iter().map(|c| c.total).sum();
        let completed: usize = cells.iter().map(|c| c.completed).sum();
        assert!(
            completed as f64 >= 0.95 * total as f64,
            "completion {completed}/{total} under default chaos"
        );
    }

    #[test]
    fn clean_run_completes_everything_without_retransmits_from_loss() {
        let cell = run_cell(0.0, 11);
        assert_eq!(cell.completed, cell.total, "{cell:?}");
        assert_eq!(cell.drops, 0, "no fault plan, no injected drops");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = to_json(&measure(&[11]).into_iter().take(2).collect::<Vec<_>>());
        assert!(json.contains("\"experiment\": \"e12\""));
        assert!(json.contains("\"drop_rate\": 0.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
