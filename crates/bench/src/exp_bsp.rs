//! E7: BSP superstep checkpointing — overhead vs protection.

use crate::table::{f2, Table};
use integrade_bsp::apps::Stencil1d;
use integrade_bsp::checkpoint::{checkpoint, restore, CheckpointPolicy};
use integrade_bsp::runtime::BspRuntime;
use integrade_simnet::rng::DetRng;

fn job(cells: usize, procs: usize, iterations: u64) -> BspRuntime<Stencil1d> {
    let initial: Vec<f64> = (0..cells).map(|i| (i % 10) as f64 / 10.0).collect();
    BspRuntime::new(Stencil1d::partition(&initial, procs, iterations, 0.0, 1.0))
}

/// E7: checkpoint frequency vs (bytes written, work lost under failures).
///
/// Runs the stencil app to completion while injecting node reclaims at a
/// fixed mean interval; each reclaim rolls the job back to its last global
/// checkpoint. Reports checkpoint volume and re-executed supersteps per
/// policy — the trade-off the paper's §3 discussion anticipates.
pub fn e7() -> Table {
    let mut table = Table::new(
        "E7: BSP checkpoint interval vs overhead and lost work (stencil, 8 procs, 200 supersteps, reclaim ~ every 37 supersteps)",
        &[
            "ckpt_every",
            "checkpoints",
            "ckpt_bytes_total",
            "reclaims",
            "resteps",
            "resteps_pct",
            "completed",
        ],
    );
    let total_supersteps = 200u64;
    let mean_failure_gap = 37.0;

    for &every in &[0usize, 1, 2, 5, 10, 25] {
        let policy = if every == 0 {
            CheckpointPolicy::disabled()
        } else {
            CheckpointPolicy::every(every)
        };
        let mut rng = DetRng::new(4242); // same failure schedule per policy
        let mut rt = job(64, 8, total_supersteps);
        let mut baseline = checkpoint(&rt); // superstep 0 snapshot
        let mut checkpoints = 0u64;
        let mut ckpt_bytes = 0u64;
        let mut reclaims = 0u64;
        let mut executed = 0u64;
        let mut next_failure = rng.exponential(mean_failure_gap).ceil() as u64;
        let budget = 40 * total_supersteps; // give hopeless configs a bound
        let completed = loop {
            if rt.is_halted() {
                break true;
            }
            if executed >= budget {
                break false;
            }
            rt.step();
            executed += 1;
            if policy.due_at(rt.superstep()) {
                baseline = checkpoint(&rt);
                checkpoints += 1;
                ckpt_bytes += baseline.size_bytes() as u64;
            }
            if executed >= next_failure {
                // A node is reclaimed: roll back to the last checkpoint.
                reclaims += 1;
                rt = restore(&baseline).expect("valid checkpoint");
                next_failure = executed + rng.exponential(mean_failure_gap).ceil() as u64;
            }
        };
        let resteps = executed.saturating_sub(rt.superstep() as u64);
        table.push_row(vec![
            if every == 0 {
                "none".into()
            } else {
                every.to_string()
            },
            checkpoints.to_string(),
            ckpt_bytes.to_string(),
            reclaims.to_string(),
            resteps.to_string(),
            f2(100.0 * resteps as f64 / executed.max(1) as f64),
            completed.to_string(),
        ]);
    }
    table
}

/// E7b: checkpoint size scales with problem state, not superstep count.
pub fn e7_size() -> Table {
    let mut table = Table::new(
        "E7b: global checkpoint size vs problem size (CDR-marshalled)",
        &["cells", "procs", "ckpt_bytes", "bytes_per_cell"],
    );
    for &(cells, procs) in &[(32usize, 4usize), (128, 8), (512, 8), (2048, 16)] {
        let mut rt = job(cells, procs, 50);
        for _ in 0..3 {
            rt.step();
        }
        let snap = checkpoint(&rt);
        let bytes = snap.size_bytes();
        table.push_row(vec![
            cells.to_string(),
            procs.to_string(),
            bytes.to_string(),
            f2(bytes as f64 / cells as f64),
        ]);
    }
    table
}

/// E7c: crash recovery in the full grid — the checkpoint *repository* at
/// work. Nodes crash and reboot on a fixed schedule while a batch of
/// sequential jobs runs; the sweep varies the checkpoint interval the LRMs
/// apply (0 = none). With checkpoints, the GRM's repository (fed by status
/// updates) restores most progress after each crash.
pub fn e7c() -> Table {
    use integrade_core::asct::JobSpec;
    use integrade_core::grid::{GridBuilder, GridConfig, NodeSetup};
    use integrade_core::types::NodeId;
    use integrade_simnet::time::{SimDuration, SimTime};

    let mut table = Table::new(
        "E7c: grid crash recovery — 6 nodes, 8 one-hour jobs, a crash every 2 h (reboot after 30 min)",
        &["ckpt_interval_mips_s", "completed", "evictions", "mean_makespan_h"],
    );
    for &interval in &[0.0f64, 90_000.0, 30_000.0] {
        let config = GridConfig::builder()
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(interval)
            .seed(777)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        for i in 0..8u64 {
            // ~1 h at the 150-MIPS grid share.
            grid.submit_at(
                JobSpec::sequential(&format!("job{i}"), 540_000),
                SimTime::ZERO + SimDuration::from_mins(5 + i * 10),
            );
        }
        // Crash schedule: node (k mod 6) dies at 2h, 4h, ..., reboots 30
        // minutes later.
        for k in 0..6u64 {
            let down_at = SimTime::ZERO + SimDuration::from_hours(2 * (k + 1));
            grid.run_until(down_at);
            let victim = NodeId((k % 6) as u32);
            grid.crash_node(victim);
            grid.run_until(down_at + SimDuration::from_mins(30));
            grid.restore_node(victim);
        }
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(30));
        let report = grid.report();
        table.push_row(vec![
            if interval == 0.0 {
                "none".into()
            } else {
                format!("{interval:.0}")
            },
            report.completed().to_string(),
            report.total_evictions().to_string(),
            f2(report.mean_makespan_s() / 3600.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7c_repository_recovery_beats_restart() {
        let table = e7c();
        // Everything completes regardless (crashes are transient), but
        // finer checkpoints shorten recovery.
        for row in 0..table.rows.len() {
            assert_eq!(table.cell_f64(row, "completed"), Some(8.0), "row {row}");
        }
        let none = table.cell_f64(0, "mean_makespan_h").unwrap();
        let fine = table.cell_f64(2, "mean_makespan_h").unwrap();
        assert!(
            fine <= none,
            "checkpointed recovery must not be slower ({fine} vs {none})"
        );
    }

    #[test]
    fn e7_more_frequent_checkpoints_lose_less_work() {
        let table = e7();
        // Row 0 = no checkpointing (restart from 0 every reclaim).
        let resteps_none = table.cell_f64(0, "resteps").unwrap();
        let resteps_every5 = table.cell_f64(3, "resteps").unwrap();
        let resteps_every1 = table.cell_f64(1, "resteps").unwrap();
        assert!(
            resteps_every5 < resteps_none,
            "{resteps_every5} < {resteps_none}"
        );
        assert!(resteps_every1 <= resteps_every5);
        // But checkpoint volume moves the other way.
        let bytes_every1 = table.cell_f64(1, "ckpt_bytes_total").unwrap();
        let bytes_every10 = table.cell_f64(4, "ckpt_bytes_total").unwrap();
        assert!(bytes_every1 > bytes_every10);
        // With checkpointing the job always completes under churn; this is
        // the paper's progress guarantee.
        for row in 1..table.rows.len() {
            assert_eq!(table.cell(row, "completed"), Some("true"), "row {row}");
        }
    }

    #[test]
    fn e7b_size_scales_linearly_with_state() {
        let table = e7_size();
        let small = table.cell_f64(0, "ckpt_bytes").unwrap();
        let large = table.cell_f64(3, "ckpt_bytes").unwrap();
        assert!(
            large > 20.0 * small,
            "2048 cells >> 32 cells: {large} vs {small}"
        );
        // Per-cell cost roughly constant (8-byte f64 + framing).
        let per_cell = table.cell_f64(3, "bytes_per_cell").unwrap();
        assert!((8.0..40.0).contains(&per_cell), "{per_cell}");
    }
}
