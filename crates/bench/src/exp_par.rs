//! E16/E19: sharded parallel tick engine — nodes × workers throughput.
//!
//! E14 scaled the *single-threaded* hot loop to 50k nodes; these
//! experiments measure what `TickMode::Sharded` buys on top by spreading
//! the per-slot node walk, the lazy catch-up replay and the GUPA digestion
//! across worker threads. Every cell is the same deterministic scenario
//! (the parity oracle in `tests/tick_parity.rs` proves the modes
//! observably identical), so the sweeps isolate pure engine throughput:
//!
//! * **sim/wall ratio** — virtual seconds simulated per wall second, over
//!   the run *plus* the report flush (the flush replays every node's
//!   deferred sampling — the O(population) term the shards parallelize);
//! * **events** — queue events dispatched (identical across modes for a
//!   given population: determinism makes the event stream mode-invariant);
//! * **speedup vs active-set** — per population, each sharded width against
//!   the single-threaded `ActiveSet` baseline at identical semantics.
//!
//! **E16** is the frame-overhead sweep: a quiet two-virtual-hour scenario
//! with noise off, where a fraction of the population carries a real
//! weekly owner trace and the rest rides the bulk-idle fast path. It
//! bounds what a sharded frame may *cost*.
//!
//! **E19** supersedes E16's measurement role and puts load-bearing work on
//! the shards: `lupa_noise` is armed (two jitter draws per node per slot,
//! so *every* node leaves the bulk fast path), traced nodes are spread
//! evenly across the id space, each arrives with six warmup days of GUPA
//! history, and the 26-virtual-hour horizon crosses one midnight — so
//! inside the timed region every traced node uploads its seventh day and
//! retrains its pattern model on a shard worker. This is the sweep whose
//! artifact (`BENCH_par.json`) and speedup floor CI enforces.
//!
//! The JSON artifact includes the host's core count — speedups are only
//! meaningful relative to `host_cores`, and a single-core CI runner
//! legitimately shows none. The committed `BENCH_par_floor.json` records
//! both a conservative 50k-node / 4-worker throughput floor calibrated on
//! such a single-core host (the overhead gate) and the parallel speedup
//! floor enforced on hosts with at least four cores; CI's `e16smoke`
//! fails if either regresses.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade_simnet::time::{SimDuration, SimTime};
use integrade_usage::sample::{UsageSample, Weekday};
use std::time::Instant;

/// Node populations swept.
pub const SWEEP_NODES: [usize; 2] = [5_000, 50_000];

/// Worker widths swept in sharded mode (the active-set baseline runs too).
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Virtual horizon of every cell, seconds.
pub const HORIZON_S: u64 = 7_200;

/// The pinned seed (the simulation is deterministic per seed).
pub const SEED: u64 = 16;

/// One in this many nodes carries the office-hours owner trace.
pub const TRACED_DIVISOR: usize = 20;

/// Timed repeats per cell; the best is kept. The first cell of a
/// population otherwise absorbs one-off process costs (first-touch page
/// faults, allocator heap growth) that masquerade as mode differences —
/// a discarded warmup cell per population plus best-of-N keeps the sweep
/// comparing engines, not memory-subsystem history.
pub const REPEATS: usize = 2;

/// E19 virtual horizon: 26 hours, crossing one midnight so every traced
/// node completes a day period, uploads it, and — having arrived with
/// [`E19_WARMUP_DAYS`] of history — retrains its pattern model inside the
/// timed region, on a shard worker.
pub const E19_HORIZON_S: u64 = 26 * 3600;

/// E19 measurement-jitter amplitude: every node draws twice per slot from
/// its shard's stream, so no node rides the bulk-idle fast path.
pub const E19_NOISE: f64 = 0.05;

/// Warmup days of GUPA history each traced node starts with: one short of
/// the seven-day training threshold, so the first in-run upload is exactly
/// the one that triggers training.
pub const E19_WARMUP_DAYS: usize = 6;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ParCell {
    /// Node population of this cell.
    pub nodes: usize,
    /// Worker shards, or `None` for the single-threaded active-set baseline.
    pub workers: Option<usize>,
    /// Virtual seconds simulated per wall-clock second (run + flush).
    pub sim_per_wall: f64,
    /// Wall-clock seconds of the timed region.
    pub wall_s: f64,
    /// Total events dispatched.
    pub events: u64,
    /// Jobs that completed (sanity: the workload must actually run).
    pub completed: usize,
}

/// Office-hours owner trace: busy weekdays 9–18h, near-idle otherwise.
fn office_trace() -> Vec<UsageSample> {
    let slots_per_day = 288;
    let mut trace = Vec::with_capacity(slots_per_day * 7);
    for day in 0..7u64 {
        let weekday = Weekday::from_day_number(day);
        for slot in 0..slots_per_day {
            let hour = slot as f64 * 24.0 / slots_per_day as f64;
            let busy = !weekday.is_weekend() && (9.0..18.0).contains(&hour);
            trace.push(if busy {
                UsageSample::new(0.8, 0.5, 0.1, 0.05)
            } else {
                UsageSample::new(0.02, 0.05, 0.0, 0.0)
            });
        }
    }
    trace
}

/// The sweep grid: every `TRACED_DIVISOR`-th node traced (replay work for
/// the shards), the rest idle on the bulk catch-up fast path; update
/// traffic quieted so dispatch does not dominate.
fn par_grid(nodes: usize, mode: TickMode) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(0)
        .delta_suppression(true)
        .update_period(SimDuration::from_secs(HORIZON_S * 4))
        .crash_silence(SimDuration::from_secs(HORIZON_S * 4))
        .tick_mode(mode)
        .build();
    let traced = nodes / TRACED_DIVISOR;
    let trace = office_trace();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..nodes)
            .map(|i| {
                if i < traced {
                    NodeSetup {
                        trace: trace.clone(),
                        ..NodeSetup::idle_desktop()
                    }
                } else {
                    NodeSetup::idle_desktop()
                }
            })
            .collect(),
    );
    builder.build()
}

/// The E19 grid: like [`par_grid`] but with the measurement jitter armed,
/// warmup history one day short of the training threshold, and the traced
/// nodes spread evenly across the id space (every `TRACED_DIVISOR`-th node)
/// — the distribution that makes occupancy balancing matter, since a
/// contiguous traced block would hand one shard all the replay and retrain
/// work.
fn e19_grid(nodes: usize, mode: TickMode) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(E19_WARMUP_DAYS)
        .lupa_noise(E19_NOISE)
        .delta_suppression(true)
        .update_period(SimDuration::from_secs(E19_HORIZON_S * 4))
        .crash_silence(SimDuration::from_secs(E19_HORIZON_S * 4))
        .tick_mode(mode)
        .build();
    let trace = office_trace();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..nodes)
            .map(|i| {
                if i % TRACED_DIVISOR == 0 {
                    NodeSetup {
                        trace: trace.clone(),
                        ..NodeSetup::idle_desktop()
                    }
                } else {
                    NodeSetup::idle_desktop()
                }
            })
            .collect(),
    );
    builder.build()
}

/// The shared timed region: five small sequential jobs, `horizon_s`
/// virtual seconds, and the full-population report flush.
fn timed_cell(mut grid: Grid, nodes: usize, mode: TickMode, horizon_s: u64) -> ParCell {
    for i in 0..5 {
        grid.submit(JobSpec::sequential(&format!("par-{i}"), 60_000));
    }
    let started = Instant::now();
    let (_, events) = grid.run_until_counting(SimTime::from_secs(horizon_s));
    let report = grid.report();
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let completed = report
        .records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    ParCell {
        nodes,
        workers: match mode {
            TickMode::Sharded { workers } => Some(workers),
            _ => None,
        },
        sim_per_wall: horizon_s as f64 / wall,
        wall_s: wall,
        events,
        completed,
    }
}

/// Runs one E16 cell: quiet scenario, two virtual hours, noise off.
pub fn run_cell(nodes: usize, mode: TickMode) -> ParCell {
    timed_cell(par_grid(nodes, mode), nodes, mode, HORIZON_S)
}

/// Runs one E19 cell: noise on, warmup history, one midnight rollover.
pub fn run_e19_cell(nodes: usize, mode: TickMode) -> ParCell {
    timed_cell(e19_grid(nodes, mode), nodes, mode, E19_HORIZON_S)
}

/// Best (highest sim/wall) of [`REPEATS`] timed runs of one cell.
pub fn best_cell(nodes: usize, mode: TickMode) -> ParCell {
    (0..REPEATS.max(1))
        .map(|_| run_cell(nodes, mode))
        .max_by(|a, b| a.sim_per_wall.total_cmp(&b.sim_per_wall))
        .expect("REPEATS >= 1")
}

/// Best of [`REPEATS`] timed runs of one E19 cell.
pub fn best_e19_cell(nodes: usize, mode: TickMode) -> ParCell {
    (0..REPEATS.max(1))
        .map(|_| run_e19_cell(nodes, mode))
        .max_by(|a, b| a.sim_per_wall.total_cmp(&b.sim_per_wall))
        .expect("REPEATS >= 1")
}

/// The full E16 sweep: per population, one discarded warmup cell, then the
/// active-set baseline and every sharded width (best of [`REPEATS`] each).
pub fn measure() -> Vec<ParCell> {
    let mut cells = Vec::new();
    for &nodes in &SWEEP_NODES {
        let _warmup = run_cell(nodes, TickMode::ActiveSet);
        cells.push(best_cell(nodes, TickMode::ActiveSet));
        for &workers in &WORKER_SWEEP {
            cells.push(best_cell(nodes, TickMode::Sharded { workers }));
        }
    }
    cells
}

/// The full E19 sweep, same discipline as [`measure`] over the E19 cells.
pub fn measure_e19() -> Vec<ParCell> {
    let mut cells = Vec::new();
    for &nodes in &SWEEP_NODES {
        let _warmup = run_e19_cell(nodes, TickMode::ActiveSet);
        cells.push(best_e19_cell(nodes, TickMode::ActiveSet));
        for &workers in &WORKER_SWEEP {
            cells.push(best_e19_cell(nodes, TickMode::Sharded { workers }));
        }
    }
    cells
}

/// Cores available to this process — speedups are bounded by it, and a
/// single-core host legitimately shows none.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn mode_label(cell: &ParCell) -> String {
    match cell.workers {
        Some(w) => format!("sharded/{w}"),
        None => "active-set".to_owned(),
    }
}

/// Sharded-over-active-set sim/wall ratio at `nodes` and `workers`.
pub fn speedup_at(cells: &[ParCell], nodes: usize, workers: usize) -> Option<f64> {
    let sharded = cells
        .iter()
        .find(|c| c.nodes == nodes && c.workers == Some(workers))?;
    let baseline = cells
        .iter()
        .find(|c| c.nodes == nodes && c.workers.is_none())?;
    Some(sharded.sim_per_wall / baseline.sim_per_wall.max(1e-9))
}

/// Renders a sweep as `BENCH_par.json` content, one object per cell,
/// stamped with the experiment id and the host core count.
pub fn to_json(experiment: &str, cells: &[ParCell]) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"{experiment}\",\n  \"host_cores\": {},\n  \"results\": [\n",
        host_cores()
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"mode\": \"{}\", \"workers\": {}, \
             \"sim_per_wall\": {:.1}, \"wall_s\": {:.3}, \"events\": {}, \
             \"completed\": {}}}{sep}\n",
            c.nodes,
            mode_label(c),
            c.workers.unwrap_or(0),
            c.sim_per_wall,
            c.wall_s,
            c.events,
            c.completed,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_50k_w4\": {:.2}\n}}\n",
        speedup_at(cells, 50_000, 4).unwrap_or(0.0)
    ));
    out
}

/// E16: the quiet frame-overhead sweep (noise off). The committed
/// `BENCH_par.json` artifact now comes from [`e19`], which measures the
/// engine with load-bearing per-node work; E16 remains as the overhead
/// comparison table.
pub fn e16() -> Table {
    let cells = measure();
    let mut table = Table::new(
        format!(
            "E16: sharded parallel tick engine, nodes x workers \
             (host_cores = {})",
            host_cores()
        ),
        &[
            "nodes",
            "mode",
            "sim_s_per_wall_s",
            "wall_s",
            "events",
            "completed",
            "speedup_vs_active_set",
        ],
    );
    for c in &cells {
        let speedup = match c.workers {
            Some(w) => speedup_at(&cells, c.nodes, w).map(f2).unwrap_or_default(),
            None => "1.00 (baseline)".to_owned(),
        };
        table.push_row(vec![
            c.nodes.to_string(),
            mode_label(c),
            f2(c.sim_per_wall),
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
            format!("{}/5", c.completed),
            speedup,
        ]);
    }
    table
}

/// E19: the load-bearing nodes × workers sweep — jitter draws on every
/// node, GUPA retrains inside the timed region. Side effect: writes
/// `BENCH_par.json`.
pub fn e19() -> Table {
    let cells = measure_e19();
    match std::fs::write("BENCH_par.json", to_json("e19", &cells)) {
        Ok(()) => eprintln!("e19: wrote BENCH_par.json"),
        Err(e) => eprintln!("e19: could not write BENCH_par.json: {e}"),
    }
    let mut table = Table::new(
        format!(
            "E19: sharded engine under load-bearing per-node work, \
             nodes x workers (noise {E19_NOISE}, host_cores = {})",
            host_cores()
        ),
        &[
            "nodes",
            "mode",
            "sim_s_per_wall_s",
            "wall_s",
            "events",
            "completed",
            "speedup_vs_active_set",
        ],
    );
    for c in &cells {
        let speedup = match c.workers {
            Some(w) => speedup_at(&cells, c.nodes, w).map(f2).unwrap_or_default(),
            None => "1.00 (baseline)".to_owned(),
        };
        table.push_row(vec![
            c.nodes.to_string(),
            mode_label(c),
            f2(c.sim_per_wall),
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
            format!("{}/5", c.completed),
            speedup,
        ]);
    }
    table
}

/// A named numeric field from `BENCH_par_floor.json`.
fn committed_field(key_name: &str) -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_par_floor.json").ok()?;
    let key = format!("\"{key_name}\":");
    let at = text.find(&key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// The committed throughput floor for the 50k-node, 4-worker cell (sim
/// seconds per wall second), read from `BENCH_par_floor.json`.
pub(crate) fn committed_floor() -> Option<f64> {
    committed_field("sim_per_wall_floor_50k_w4")
}

/// The committed parallel-speedup floor for the 50k-node, 4-worker E19
/// cell over the active-set baseline, enforced only on hosts with at
/// least four cores.
pub(crate) fn committed_speedup_floor() -> Option<f64> {
    committed_field("speedup_floor_50k_w4")
}

/// E16/E19 smoke — the CI gate, core-count-aware.
///
/// Always: the quiet (noise-off) 50k-node, 4-worker E16 cell against the
/// committed sim/wall floor in `BENCH_par_floor.json`. That floor is
/// calibrated on a single-core runner, so it guards the engine's
/// *overhead* — a sharded frame must never cost materially more than the
/// walk it replaces — not a parallel speedup the host cannot physically
/// deliver.
///
/// On hosts with at least four cores it additionally runs the E19 50k-node
/// cell (load-bearing per-node work: jitter draws everywhere, retrains in
/// the timed region) in both active-set and 4-worker sharded mode and
/// asserts the sharded engine actually delivers the committed parallel
/// speedup.
///
/// # Panics
///
/// Panics when the measured sim/wall ratio falls below the committed
/// overhead floor, or — on a multicore host — when the E19 speedup falls
/// below the committed speedup floor.
pub fn e16smoke() -> Table {
    let _warmup = run_cell(50_000, TickMode::Sharded { workers: 4 });
    let cell = best_cell(50_000, TickMode::Sharded { workers: 4 });
    let floor = committed_floor().unwrap_or(0.0);
    let mut table = Table::new(
        format!(
            "E16/E19 smoke: 50k-node 4-worker gates (host_cores = {})",
            host_cores()
        ),
        &["gate", "mode", "sim_s_per_wall_s", "floor", "completed"],
    );
    table.push_row(vec![
        "e16 overhead".to_owned(),
        "sharded/4".to_owned(),
        f2(cell.sim_per_wall),
        f2(floor),
        format!("{}/5", cell.completed),
    ]);
    assert!(
        cell.completed > 0,
        "e16smoke: no job completed — the scenario exercised nothing"
    );
    assert!(
        cell.sim_per_wall >= floor,
        "e16smoke: throughput regression — {:.1} sim s/wall s is below the \
         committed floor of {floor:.1} (BENCH_par_floor.json)",
        cell.sim_per_wall
    );
    if host_cores() >= 4 {
        let base = best_e19_cell(50_000, TickMode::ActiveSet);
        let sharded = best_e19_cell(50_000, TickMode::Sharded { workers: 4 });
        let speedup = sharded.sim_per_wall / base.sim_per_wall.max(1e-9);
        let speedup_floor = committed_speedup_floor().unwrap_or(0.0);
        table.push_row(vec![
            "e19 speedup".to_owned(),
            "active-set".to_owned(),
            f2(base.sim_per_wall),
            "(baseline)".to_owned(),
            format!("{}/5", base.completed),
        ]);
        table.push_row(vec![
            "e19 speedup".to_owned(),
            "sharded/4".to_owned(),
            f2(sharded.sim_per_wall),
            format!("{}x (got {speedup:.2}x)", f2(speedup_floor)),
            format!("{}/5", sharded.completed),
        ]);
        assert!(
            base.completed > 0 && sharded.completed > 0,
            "e16smoke: E19 cells completed nothing — the scenario is vacuous"
        );
        assert!(
            speedup >= speedup_floor,
            "e16smoke: parallel speedup regression — sharded/4 at {speedup:.2}x \
             the active-set baseline is below the committed floor of \
             {speedup_floor:.2}x (BENCH_par_floor.json) on a {}-core host",
            host_cores()
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast shape check (small population, debug build): the sharded
    /// cell completes its workload, and — determinism — dispatches exactly
    /// the event stream of the active-set baseline.
    #[test]
    fn sharded_cell_matches_active_set_event_stream() {
        let baseline = run_cell(300, TickMode::ActiveSet);
        assert_eq!(baseline.completed, 5, "{baseline:?}");
        for workers in [1, 4] {
            let sharded = run_cell(300, TickMode::Sharded { workers });
            assert_eq!(sharded.completed, 5, "{sharded:?}");
            assert_eq!(
                sharded.events, baseline.events,
                "event stream must be mode-invariant: {sharded:?} vs {baseline:?}"
            );
        }
    }

    /// The E19 cell at a small population: the workload completes, and the
    /// event stream stays mode-invariant even with the jitter streams
    /// drawing and retrains landing inside the run.
    #[test]
    fn e19_cell_is_mode_invariant_and_completes() {
        let baseline = run_e19_cell(200, TickMode::ActiveSet);
        assert_eq!(baseline.completed, 5, "{baseline:?}");
        for workers in [1, 4] {
            let sharded = run_e19_cell(200, TickMode::Sharded { workers });
            assert_eq!(sharded.completed, 5, "{sharded:?}");
            assert_eq!(
                sharded.events, baseline.events,
                "event stream must be mode-invariant: {sharded:?} vs {baseline:?}"
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = vec![
            run_cell(200, TickMode::ActiveSet),
            run_cell(200, TickMode::Sharded { workers: 2 }),
        ];
        let json = to_json("e19", &cells);
        assert!(json.contains("\"experiment\": \"e19\""));
        assert!(json.contains("\"host_cores\":"));
        assert!(json.contains("\"mode\": \"sharded/2\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn floor_parser_shape() {
        let sample = "{\n  \"sim_per_wall_floor_50k_w4\": 987.5\n}\n";
        let key = "\"sim_per_wall_floor_50k_w4\":";
        let at = sample.find(key).unwrap() + key.len();
        let parsed: f64 = sample[at..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((parsed - 987.5).abs() < 1e-9);
    }

    #[test]
    fn committed_floor_file_has_both_gates() {
        // The repo-root floor file must carry both the single-core
        // overhead floor and the multicore speedup floor; tests run with
        // the crate as cwd, so read it relative to the manifest.
        let text = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_par_floor.json"),
        )
        .expect("BENCH_par_floor.json at repo root");
        assert!(text.contains("\"sim_per_wall_floor_50k_w4\":"));
        assert!(text.contains("\"speedup_floor_50k_w4\":"));
    }

    #[test]
    fn speedup_lookup_uses_matching_population() {
        let cells = vec![
            ParCell {
                nodes: 50_000,
                workers: None,
                sim_per_wall: 100.0,
                wall_s: 72.0,
                events: 10,
                completed: 5,
            },
            ParCell {
                nodes: 50_000,
                workers: Some(4),
                sim_per_wall: 300.0,
                wall_s: 24.0,
                events: 10,
                completed: 5,
            },
        ];
        let speedup = speedup_at(&cells, 50_000, 4).unwrap();
        assert!((speedup - 3.0).abs() < 1e-9, "{speedup}");
        assert!(speedup_at(&cells, 5_000, 4).is_none());
    }
}
