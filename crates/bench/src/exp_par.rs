//! E16: sharded parallel tick engine — nodes × workers throughput sweep.
//!
//! E14 scaled the *single-threaded* hot loop to 50k nodes; this experiment
//! measures what `TickMode::Sharded` buys on top by spreading the per-slot
//! node walk and the lazy catch-up replay across worker threads. Every cell
//! is the same deterministic scenario (the parity oracle in
//! `tests/tick_parity.rs` proves the modes observably identical), so the
//! sweep isolates pure engine throughput:
//!
//! * **sim/wall ratio** — virtual seconds simulated per wall second, over
//!   the run *plus* the report flush (the flush replays every node's
//!   deferred sampling — the O(population) term the shards parallelize);
//! * **events** — queue events dispatched (identical across modes for a
//!   given population: determinism makes the event stream mode-invariant);
//! * **speedup vs active-set** — per population, each sharded width against
//!   the single-threaded `ActiveSet` baseline at identical semantics.
//!
//! A fraction of the population carries a real weekly owner trace so the
//! replay has per-slot work to parallelize; the rest rides the bulk-idle
//! fast path. The update protocol is quieted (long update period, delta
//! suppression) so the single-threaded dispatch loop does not drown the
//! signal.
//!
//! Emits `BENCH_par.json`, including the host's core count — speedups are
//! only meaningful relative to `host_cores`, and a single-core CI runner
//! legitimately shows none. The committed `BENCH_par_floor.json` records a
//! conservative 50k-node / 4-worker throughput floor calibrated on such a
//! single-core host; CI's `e16smoke` fails if a regression drops below it.

use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade_simnet::time::{SimDuration, SimTime};
use integrade_usage::sample::{UsageSample, Weekday};
use std::time::Instant;

/// Node populations swept.
pub const SWEEP_NODES: [usize; 2] = [5_000, 50_000];

/// Worker widths swept in sharded mode (the active-set baseline runs too).
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Virtual horizon of every cell, seconds.
pub const HORIZON_S: u64 = 7_200;

/// The pinned seed (the simulation is deterministic per seed).
pub const SEED: u64 = 16;

/// One in this many nodes carries the office-hours owner trace.
pub const TRACED_DIVISOR: usize = 20;

/// Timed repeats per cell; the best is kept. The first cell of a
/// population otherwise absorbs one-off process costs (first-touch page
/// faults, allocator heap growth) that masquerade as mode differences —
/// a discarded warmup cell per population plus best-of-N keeps the sweep
/// comparing engines, not memory-subsystem history.
pub const REPEATS: usize = 2;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ParCell {
    /// Node population of this cell.
    pub nodes: usize,
    /// Worker shards, or `None` for the single-threaded active-set baseline.
    pub workers: Option<usize>,
    /// Virtual seconds simulated per wall-clock second (run + flush).
    pub sim_per_wall: f64,
    /// Wall-clock seconds of the timed region.
    pub wall_s: f64,
    /// Total events dispatched.
    pub events: u64,
    /// Jobs that completed (sanity: the workload must actually run).
    pub completed: usize,
}

/// Office-hours owner trace: busy weekdays 9–18h, near-idle otherwise.
fn office_trace() -> Vec<UsageSample> {
    let slots_per_day = 288;
    let mut trace = Vec::with_capacity(slots_per_day * 7);
    for day in 0..7u64 {
        let weekday = Weekday::from_day_number(day);
        for slot in 0..slots_per_day {
            let hour = slot as f64 * 24.0 / slots_per_day as f64;
            let busy = !weekday.is_weekend() && (9.0..18.0).contains(&hour);
            trace.push(if busy {
                UsageSample::new(0.8, 0.5, 0.1, 0.05)
            } else {
                UsageSample::new(0.02, 0.05, 0.0, 0.0)
            });
        }
    }
    trace
}

/// The sweep grid: every `TRACED_DIVISOR`-th node traced (replay work for
/// the shards), the rest idle on the bulk catch-up fast path; update
/// traffic quieted so dispatch does not dominate.
fn par_grid(nodes: usize, mode: TickMode) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(0)
        .delta_suppression(true)
        .update_period(SimDuration::from_secs(HORIZON_S * 4))
        .crash_silence(SimDuration::from_secs(HORIZON_S * 4))
        .tick_mode(mode)
        .build();
    let traced = nodes / TRACED_DIVISOR;
    let trace = office_trace();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..nodes)
            .map(|i| {
                if i < traced {
                    NodeSetup {
                        trace: trace.clone(),
                        ..NodeSetup::idle_desktop()
                    }
                } else {
                    NodeSetup::idle_desktop()
                }
            })
            .collect(),
    );
    builder.build()
}

/// Runs one cell: five small sequential jobs, two virtual hours, and the
/// full-population report flush inside the timed region.
pub fn run_cell(nodes: usize, mode: TickMode) -> ParCell {
    let mut grid = par_grid(nodes, mode);
    for i in 0..5 {
        grid.submit(JobSpec::sequential(&format!("e16-{i}"), 60_000));
    }
    let started = Instant::now();
    let (_, events) = grid.run_until_counting(SimTime::from_secs(HORIZON_S));
    let report = grid.report();
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let completed = report
        .records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    ParCell {
        nodes,
        workers: match mode {
            TickMode::Sharded { workers } => Some(workers),
            _ => None,
        },
        sim_per_wall: HORIZON_S as f64 / wall,
        wall_s: wall,
        events,
        completed,
    }
}

/// Best (highest sim/wall) of [`REPEATS`] timed runs of one cell.
pub fn best_cell(nodes: usize, mode: TickMode) -> ParCell {
    (0..REPEATS.max(1))
        .map(|_| run_cell(nodes, mode))
        .max_by(|a, b| a.sim_per_wall.total_cmp(&b.sim_per_wall))
        .expect("REPEATS >= 1")
}

/// The full sweep: per population, one discarded warmup cell, then the
/// active-set baseline and every sharded width (best of [`REPEATS`] each).
pub fn measure() -> Vec<ParCell> {
    let mut cells = Vec::new();
    for &nodes in &SWEEP_NODES {
        let _warmup = run_cell(nodes, TickMode::ActiveSet);
        cells.push(best_cell(nodes, TickMode::ActiveSet));
        for &workers in &WORKER_SWEEP {
            cells.push(best_cell(nodes, TickMode::Sharded { workers }));
        }
    }
    cells
}

/// Cores available to this process — speedups are bounded by it, and a
/// single-core host legitimately shows none.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn mode_label(cell: &ParCell) -> String {
    match cell.workers {
        Some(w) => format!("sharded/{w}"),
        None => "active-set".to_owned(),
    }
}

/// Sharded-over-active-set sim/wall ratio at `nodes` and `workers`.
pub fn speedup_at(cells: &[ParCell], nodes: usize, workers: usize) -> Option<f64> {
    let sharded = cells
        .iter()
        .find(|c| c.nodes == nodes && c.workers == Some(workers))?;
    let baseline = cells
        .iter()
        .find(|c| c.nodes == nodes && c.workers.is_none())?;
    Some(sharded.sim_per_wall / baseline.sim_per_wall.max(1e-9))
}

/// Renders the sweep as `BENCH_par.json`, one object per cell, stamped
/// with the host core count.
pub fn to_json(cells: &[ParCell]) -> String {
    let mut out = format!(
        "{{\n  \"experiment\": \"e16\",\n  \"host_cores\": {},\n  \"results\": [\n",
        host_cores()
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"mode\": \"{}\", \"workers\": {}, \
             \"sim_per_wall\": {:.1}, \"wall_s\": {:.3}, \"events\": {}, \
             \"completed\": {}}}{sep}\n",
            c.nodes,
            mode_label(c),
            c.workers.unwrap_or(0),
            c.sim_per_wall,
            c.wall_s,
            c.events,
            c.completed,
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"speedup_50k_w4\": {:.2}\n}}\n",
        speedup_at(cells, 50_000, 4).unwrap_or(0.0)
    ));
    out
}

/// E16: the nodes × workers sweep. Side effect: writes `BENCH_par.json`.
pub fn e16() -> Table {
    let cells = measure();
    match std::fs::write("BENCH_par.json", to_json(&cells)) {
        Ok(()) => eprintln!("e16: wrote BENCH_par.json"),
        Err(e) => eprintln!("e16: could not write BENCH_par.json: {e}"),
    }
    let mut table = Table::new(
        format!(
            "E16: sharded parallel tick engine, nodes x workers \
             (host_cores = {})",
            host_cores()
        ),
        &[
            "nodes",
            "mode",
            "sim_s_per_wall_s",
            "wall_s",
            "events",
            "completed",
            "speedup_vs_active_set",
        ],
    );
    for c in &cells {
        let speedup = match c.workers {
            Some(w) => speedup_at(&cells, c.nodes, w).map(f2).unwrap_or_default(),
            None => "1.00 (baseline)".to_owned(),
        };
        table.push_row(vec![
            c.nodes.to_string(),
            mode_label(c),
            f2(c.sim_per_wall),
            format!("{:.3}", c.wall_s),
            c.events.to_string(),
            format!("{}/5", c.completed),
            speedup,
        ]);
    }
    table
}

/// The committed throughput floor for the 50k-node, 4-worker cell (sim
/// seconds per wall second), read from `BENCH_par_floor.json`.
pub(crate) fn committed_floor() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_par_floor.json").ok()?;
    let key = "\"sim_per_wall_floor_50k_w4\":";
    let at = text.find(key)? + key.len();
    text[at..]
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

/// E16 smoke: the 50k-node, 4-worker cell alone, compared against the
/// committed floor in `BENCH_par_floor.json`. CI runs this in release mode
/// and fails the build on a throughput regression. The floor is calibrated
/// on a single-core runner, so it guards the engine's *overhead* (a sharded
/// frame must never cost materially more than the walk it replaces), not a
/// parallel speedup the host cannot physically deliver.
///
/// # Panics
///
/// Panics when the measured sim/wall ratio falls below the committed floor.
pub fn e16smoke() -> Table {
    let _warmup = run_cell(50_000, TickMode::Sharded { workers: 4 });
    let cell = best_cell(50_000, TickMode::Sharded { workers: 4 });
    let floor = committed_floor().unwrap_or(0.0);
    let mut table = Table::new(
        "E16 smoke: 50k-node 4-worker sharded throughput vs committed floor",
        &["nodes", "workers", "sim_s_per_wall_s", "floor", "completed"],
    );
    table.push_row(vec![
        cell.nodes.to_string(),
        "4".to_owned(),
        f2(cell.sim_per_wall),
        f2(floor),
        format!("{}/5", cell.completed),
    ]);
    assert!(
        cell.completed > 0,
        "e16smoke: no job completed — the scenario exercised nothing"
    );
    assert!(
        cell.sim_per_wall >= floor,
        "e16smoke: throughput regression — {:.1} sim s/wall s is below the \
         committed floor of {floor:.1} (BENCH_par_floor.json)",
        cell.sim_per_wall
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast shape check (small population, debug build): the sharded
    /// cell completes its workload, and — determinism — dispatches exactly
    /// the event stream of the active-set baseline.
    #[test]
    fn sharded_cell_matches_active_set_event_stream() {
        let baseline = run_cell(300, TickMode::ActiveSet);
        assert_eq!(baseline.completed, 5, "{baseline:?}");
        for workers in [1, 4] {
            let sharded = run_cell(300, TickMode::Sharded { workers });
            assert_eq!(sharded.completed, 5, "{sharded:?}");
            assert_eq!(
                sharded.events, baseline.events,
                "event stream must be mode-invariant: {sharded:?} vs {baseline:?}"
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cells = vec![
            run_cell(200, TickMode::ActiveSet),
            run_cell(200, TickMode::Sharded { workers: 2 }),
        ];
        let json = to_json(&cells);
        assert!(json.contains("\"experiment\": \"e16\""));
        assert!(json.contains("\"host_cores\":"));
        assert!(json.contains("\"mode\": \"sharded/2\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn floor_parser_shape() {
        let sample = "{\n  \"sim_per_wall_floor_50k_w4\": 987.5\n}\n";
        let key = "\"sim_per_wall_floor_50k_w4\":";
        let at = sample.find(key).unwrap() + key.len();
        let parsed: f64 = sample[at..]
            .trim_start()
            .split(|c: char| !(c.is_ascii_digit() || c == '.'))
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((parsed - 987.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_lookup_uses_matching_population() {
        let cells = vec![
            ParCell {
                nodes: 50_000,
                workers: None,
                sim_per_wall: 100.0,
                wall_s: 72.0,
                events: 10,
                completed: 5,
            },
            ParCell {
                nodes: 50_000,
                workers: Some(4),
                sim_per_wall: 300.0,
                wall_s: 24.0,
                events: 10,
                completed: 5,
            },
        ];
        let speedup = speedup_at(&cells, 50_000, 4).unwrap();
        assert!((speedup - 3.0).abs() < 1e-9, "{speedup}");
        assert!(speedup_at(&cells, 5_000, 4).is_none());
    }
}
