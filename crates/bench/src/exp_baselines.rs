//! E11: InteGrade vs Condor-style vs BOINC-style vs naive on identical
//! desktop traces and workloads.

use crate::table::{f2, Table};
use integrade_baselines::{
    BaselineNode, BaselineSystem, BoincConfig, BoincSim, CondorConfig, CondorSim, NaiveSim,
};
use integrade_core::asct::JobSpec;
use integrade_core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade_core::scheduler::Strategy;
use integrade_simnet::rng::DetRng;
use integrade_simnet::time::{SimDuration, SimTime};
use integrade_usage::sample::UsageSample;
use integrade_workload::desktop::{generate_trace, Archetype, TraceConfig};

fn population(n: usize) -> Vec<Vec<UsageSample>> {
    let cfg = TraceConfig::default();
    let mut rng = DetRng::new(1111);
    (0..n)
        .map(|i| {
            let archetype = match i % 3 {
                0 => Archetype::OfficeWorker,
                1 => Archetype::LabMachine,
                _ => Archetype::Spare,
            };
            generate_trace(archetype, &cfg, &mut rng.fork(i as u64))
        })
        .collect()
}

fn workload() -> Vec<(SimTime, JobSpec)> {
    let mut jobs = Vec::new();
    for i in 0..8u64 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_hours(1 + 2 * i),
            JobSpec::sequential(&format!("seq{i}"), 300_000),
        ));
    }
    for i in 0..3u64 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_hours(2 + 5 * i),
            JobSpec::bag_of_tasks(&format!("bag{i}"), 6, 120_000),
        ));
    }
    for i in 0..3u64 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_hours(4 + 6 * i),
            JobSpec::bsp(&format!("bsp{i}"), 3, 40, 2_000, 8_192),
        ));
    }
    jobs
}

/// E11: the headline comparison table.
pub fn e11() -> Table {
    let mut table = Table::new(
        "E11: systems comparison — 12 nodes, 14 jobs (8 seq + 3 bag + 3 BSP), 60 h",
        &[
            "system",
            "completed",
            "unsupported",
            "evictions",
            "wasted_mips_s",
            "mean_makespan_h",
            "owner_slowdown",
        ],
    );
    let traces = population(12);
    let jobs = workload();
    let horizon = SimTime::ZERO + SimDuration::from_hours(60);

    // InteGrade (pattern-aware, full protocol simulation).
    {
        let config = GridConfig::builder()
            .strategy(Strategy::PatternAware)
            .gupa_warmup_days(14)
            .seed(99)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster(
            traces
                .iter()
                .map(|t| NodeSetup {
                    trace: t.clone(),
                    ..NodeSetup::idle_desktop()
                })
                .collect(),
        );
        let mut grid = builder.build();
        for (at, spec) in &jobs {
            grid.submit_at(spec.clone(), *at);
        }
        grid.run_until(horizon);
        let report = grid.report();
        table.push_row(vec![
            "integrade".into(),
            report.completed().to_string(),
            "0".into(),
            report.total_evictions().to_string(),
            report.total_wasted_work().to_string(),
            f2(report.mean_makespan_s() / 3600.0),
            f2(report.qos.mean_slowdown()),
        ]);
    }

    // Baselines. Note the fairness caveat recorded in EXPERIMENTS.md:
    // Condor uses the whole idle machine while InteGrade caps itself at the
    // NCC fraction, so makespans are not directly comparable across rows —
    // capability and waste columns are.
    let nodes: Vec<BaselineNode> = traces.iter().cloned().map(BaselineNode::desktop).collect();
    let mut reserved_nodes = nodes.clone();
    for node in reserved_nodes.iter_mut().take(3) {
        node.reserved_for_parallel = true;
        node.trace.clear();
    }
    let runs: Vec<(Box<dyn BaselineSystem>, &Vec<BaselineNode>)> = vec![
        (Box::new(CondorSim::new(CondorConfig::default())), &nodes),
        (
            Box::new(CondorSim::new(CondorConfig {
                checkpointing: true,
                ..Default::default()
            })),
            &nodes,
        ),
        (
            Box::new(CondorSim::new(CondorConfig {
                checkpointing: true,
                ..Default::default()
            })),
            &reserved_nodes,
        ),
        (Box::new(BoincSim::new(BoincConfig::default())), &nodes),
        (Box::new(NaiveSim::new(5)), &nodes),
    ];
    let labels = [
        "condor",
        "condor+ckpt",
        "condor+ckpt+3res",
        "boinc",
        "naive-random",
    ];
    for ((mut system, node_set), label) in runs.into_iter().zip(labels) {
        let report = system.run(node_set, &jobs, horizon);
        table.push_row(vec![
            label.into(),
            report.completed().to_string(),
            report.unsupported().to_string(),
            report.total_evictions().to_string(),
            report.total_wasted_work().to_string(),
            f2(report.mean_makespan_s() / 3600.0),
            // Condor/BOINC run only while the owner is idle → slowdown 1.0
            // by construction; naive may co-run but our model evicts, so
            // it is also 1.0. Recorded for the column's completeness.
            f2(1.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_capability_shape_holds() {
        let table = e11();
        let row_of = |name: &str| {
            (0..table.rows.len())
                .find(|&r| table.cell(r, "system") == Some(name))
                .unwrap_or_else(|| panic!("row {name}"))
        };
        let integrade = row_of("integrade");
        let condor = row_of("condor");
        let condor_res = row_of("condor+ckpt+3res");
        let boinc = row_of("boinc");
        let naive = row_of("naive-random");

        // InteGrade runs everything, including the 3 BSP jobs, unreserved.
        assert_eq!(table.cell_f64(integrade, "unsupported"), Some(0.0));
        assert!(table.cell_f64(integrade, "completed").unwrap() >= 13.0);

        // BOINC cannot run the parallel jobs at all (§2).
        assert_eq!(table.cell_f64(boinc, "unsupported"), Some(3.0));

        // Condor without reservation can't either; with 3 reserved nodes it
        // can (at the cost of withdrawing those machines).
        assert_eq!(table.cell_f64(condor, "unsupported"), Some(3.0));
        assert_eq!(table.cell_f64(condor_res, "unsupported"), Some(0.0));

        // The naive control wastes at least as much as checkpointed Condor.
        let ckpt = row_of("condor+ckpt");
        assert!(
            table.cell_f64(naive, "wasted_mips_s").unwrap()
                >= table.cell_f64(ckpt, "wasted_mips_s").unwrap()
        );

        // InteGrade never slows owners.
        assert_eq!(table.cell_f64(integrade, "owner_slowdown"), Some(1.0));
    }
}
