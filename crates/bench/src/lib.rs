//! # integrade-bench
//!
//! The experiment harness that regenerates every table in EXPERIMENTS.md.
//! The InteGrade paper contains no quantitative evaluation (its single
//! figure is the architecture diagram), so the experiment suite is
//! *claim-driven*: every prose claim becomes a measurable table — see
//! DESIGN.md §5 for the full index.
//!
//! Each experiment is a pure function returning a [`table::Table`]; the
//! `experiments` binary prints them, and each module's tests assert the
//! expected *shape* of its results (who wins, where the boundaries fall).
//! Criterion micro-benchmarks for E10's marshalling/dispatch/query costs
//! live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_baselines;
pub mod exp_bsp;
pub mod exp_cert;
pub mod exp_faults;
pub mod exp_fed;
pub mod exp_info;
pub mod exp_obs;
pub mod exp_par;
pub mod exp_qos;
pub mod exp_repo;
pub mod exp_scale;
pub mod exp_scale14;
pub mod exp_sched;
pub mod exp_spec;
pub mod exp_trader;
pub mod exp_usage;
pub mod table;

use table::Table;

/// One registered experiment: `(id, description, runner)`.
pub type ExperimentEntry = (&'static str, &'static str, fn() -> Table);

/// All experiments, as `(id, description, runner)`.
pub fn experiments() -> Vec<ExperimentEntry> {
    vec![
        (
            "f1",
            "Figure-1 architecture inventory",
            exp_info::f1 as fn() -> Table,
        ),
        ("e1", "Information Update Protocol cost", exp_info::e1),
        ("e2", "stale hints vs negotiation repair", exp_info::e2),
        ("e2b", "ablation: next-candidate failover", exp_info::e2b),
        ("e3", "behavioural-category recovery", exp_usage::e3),
        ("e3b", "k-means archetype separation", exp_usage::e3_kmeans),
        (
            "e3c",
            "ablation: DTW vs euclidean under time jitter",
            exp_usage::e3c,
        ),
        ("e4", "idle-prediction accuracy", exp_usage::e4),
        ("e5", "scheduling-strategy comparison", exp_sched::e5),
        ("e6", "owner QoS under protection regimes", exp_qos::e6),
        ("e6b", "harvest vs protection frontier", exp_qos::e6_harvest),
        ("e7", "BSP checkpoint interval trade-off", exp_bsp::e7),
        ("e7b", "checkpoint size scaling", exp_bsp::e7_size),
        (
            "e7c",
            "grid crash recovery via the checkpoint repository",
            exp_bsp::e7c,
        ),
        ("e8", "virtual-topology request placement", exp_sched::e8),
        (
            "e8b",
            "inter-group bandwidth feasibility",
            exp_sched::e8_sweep,
        ),
        ("e9", "hierarchy scalability", exp_scale::e9),
        ("e10", "protocol wire sizes", exp_scale::e10),
        (
            "e10b",
            "trader query scaling: indexed vs seed scan",
            exp_trader::e10b,
        ),
        ("e11", "systems comparison", exp_baselines::e11),
        (
            "e12",
            "completion under chaos: faults vs the hardened protocol",
            exp_faults::e12,
        ),
        (
            "e13",
            "replicated checkpoint repository: wasted work vs k",
            exp_repo::e13,
        ),
        (
            "e14",
            "simulator hot-loop scaling to 50k nodes",
            exp_scale14::e14,
        ),
        (
            "e14smoke",
            "5k-node throughput smoke vs committed floor",
            exp_scale14::e14smoke,
        ),
        (
            "e15",
            "observability overhead: metrics on vs off at 5k nodes",
            exp_obs::e15,
        ),
        (
            "e16",
            "sharded parallel tick engine: nodes x workers sweep",
            exp_par::e16,
        ),
        (
            "e16smoke",
            "50k-node 4-worker overhead floor + E19 speedup gate on multicore hosts",
            exp_par::e16smoke,
        ),
        (
            "e17",
            "gray failures: speculation off vs on vs BOINC reissue",
            exp_spec::e17,
        ),
        (
            "e17smoke",
            "speculation speedup smoke at 20% slow nodes vs committed floor",
            exp_spec::e17smoke,
        ),
        (
            "e18",
            "result sabotage: certification policies vs a lying minority",
            exp_cert::e18,
        ),
        (
            "e18smoke",
            "adaptive-vs-r3 redundancy savings smoke vs committed floor",
            exp_cert::e18smoke,
        ),
        (
            "e19",
            "sharded engine under load-bearing per-node work (writes BENCH_par.json)",
            exp_par::e19,
        ),
        (
            "e20",
            "federated routing: linked traders vs flat directory vs hierarchy summaries (writes BENCH_fed.json)",
            exp_fed::e20,
        ),
        (
            "e20smoke",
            "linked-trader spillover dominates the flat directory at equal WAN budget vs committed floor",
            exp_fed::e20smoke,
        ),
    ]
}

/// Runs one experiment by id.
pub fn run(id: &str) -> Option<Table> {
    experiments()
        .into_iter()
        .find(|(eid, _, _)| *eid == id)
        .map(|(_, _, f)| f())
}
