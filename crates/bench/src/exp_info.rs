//! F1 (architecture), E1 (Information Update Protocol cost) and
//! E2 (staleness vs negotiation repair).

use crate::table::{f2, Table};
use integrade_core::asct::JobSpec;
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade_core::scheduler::Strategy;
use integrade_simnet::rng::DetRng;
use integrade_simnet::time::{SimDuration, SimTime};

fn idle_grid(nodes: usize, update_period: SimDuration, delta: bool) -> Grid {
    let config = GridConfig::builder()
        .gupa_warmup_days(0)
        .update_period(update_period)
        .delta_suppression(delta)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// F1: instantiate Figure 1 and inventory its components.
pub fn f1() -> Table {
    let mut grid = idle_grid(8, SimDuration::from_secs(30), false);
    let job = grid.submit(JobSpec::sequential("f1-probe", 1500));
    grid.run_until(SimTime::from_secs(900));
    let report = grid.report();
    let record = grid.job_record(job).expect("probe job");

    let mut table = Table::new(
        "F1: Figure-1 architecture instantiated (8 providers + cluster manager)",
        &["component", "instantiated", "evidence"],
    );
    let mut row = |c: &str, n: String, e: String| table.push_row(vec![c.into(), n, e]);
    row(
        "LRM (per node)",
        format!("{}", grid.node_count()),
        format!(
            "{} status updates accepted by the GRM",
            report.updates.accepted
        ),
    );
    row(
        "GRM + Trader",
        "1".into(),
        format!("{} trader queries during scheduling", report.trader_queries),
    );
    row(
        "LUPA collection",
        format!("{}", grid.node_count()),
        "5-minute sampling into day periods".into(),
    );
    row(
        "GUPA",
        "1".into(),
        format!("{} trained node models", report.gupa_models),
    );
    row(
        "NCC policies",
        format!("{}", grid.node_count()),
        format!("{} cap violations (must be 0)", report.qos.cap_violations),
    );
    row(
        "ASCT",
        "1".into(),
        format!(
            "probe job {} in {}",
            record.state,
            record.makespan().map(|d| d.to_string()).unwrap_or_default()
        ),
    );
    row(
        "Protocols over GIOP",
        "2".into(),
        format!(
            "{} wire messages, {} bytes",
            report.net.messages, report.net.bytes
        ),
    );
    table
}

/// E1: update-protocol cost vs cluster size, period and delta-suppression.
pub fn e1() -> Table {
    let mut table = Table::new(
        "E1: Information Update Protocol cost (1 virtual hour, idle cluster)",
        &[
            "nodes",
            "period_s",
            "delta",
            "updates",
            "wire_msgs",
            "wire_bytes",
            "bytes/node/min",
        ],
    );
    for &nodes in &[10usize, 50, 100, 200] {
        for &(period, delta) in &[(10u64, false), (30, false), (60, false), (30, true)] {
            let mut grid = idle_grid(nodes, SimDuration::from_secs(period), delta);
            grid.run_until(SimTime::from_secs(3600));
            let report = grid.report();
            let per_node_min = report.net.bytes as f64 / nodes as f64 / 60.0;
            table.push_row(vec![
                nodes.to_string(),
                period.to_string(),
                delta.to_string(),
                report.updates.accepted.to_string(),
                report.net.messages.to_string(),
                report.net.bytes.to_string(),
                f2(per_node_min),
            ]);
        }
    }
    table
}

/// E2: the GRM's hint is stale; direct negotiation repairs it. Vary the
/// update period and measure refusals per successful placement on a
/// churning population.
pub fn e2() -> Table {
    let mut table = Table::new(
        "E2: scheduling with stale hints — negotiation repairs (churny lab nodes)",
        &[
            "update_period_s",
            "jobs",
            "completed",
            "refusals",
            "refusals/job",
            "mean_wait_s",
        ],
    );
    // Fast churn: each node alternates 10 minutes busy / 10 minutes idle
    // with a random phase, so a status snapshot older than a few minutes is
    // frequently wrong — exactly the staleness the direct negotiation step
    // exists to repair.
    let mut rng = DetRng::new(99);
    let square_wave = |phase: usize| -> Vec<integrade_usage::sample::UsageSample> {
        use integrade_usage::sample::UsageSample;
        (0..288 * 7)
            .map(|slot| {
                if ((slot + phase) / 2).is_multiple_of(2) {
                    UsageSample::new(0.9, 0.5, 0.0, 0.0)
                } else {
                    UsageSample::idle()
                }
            })
            .collect()
    };
    for &period in &[10u64, 60, 300, 900] {
        let config = GridConfig::builder()
            .gupa_warmup_days(0)
            .strategy(Strategy::AvailabilityOnly)
            .seed(7)
            .update_period(SimDuration::from_secs(period))
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster(
            (0..16)
                .map(|_| NodeSetup {
                    trace: square_wave(rng.index(4)),
                    ..NodeSetup::idle_desktop()
                })
                .collect(),
        );
        let mut grid = builder.build();
        let jobs = 48;
        for i in 0..jobs {
            grid.submit_at(
                JobSpec::sequential(&format!("job{i}"), 30_000),
                SimTime::ZERO + SimDuration::from_mins(10 * i + 3),
            );
        }
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(16));
        let report = grid.report();
        let refusals: u64 = report.records.iter().map(|r| r.negotiation_refusals).sum();
        let waits: Vec<f64> = report
            .records
            .iter()
            .filter_map(|r| r.wait_time().map(|d| d.as_secs_f64()))
            .collect();
        let mean_wait = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        table.push_row(vec![
            period.to_string(),
            jobs.to_string(),
            report.completed().to_string(),
            refusals.to_string(),
            f2(refusals as f64 / jobs as f64),
            f2(mean_wait),
        ]);
    }
    table
}

/// E2b ablation: the same churny workload at 900-s staleness, with the §4
/// next-candidate failover enabled vs disabled. Without it, refusals send
/// the job back to a fresh query that re-picks the same stale head of the
/// ranked list — a livelock this reproduction hit before implementing the
/// paper's step.
pub fn e2b() -> Table {
    let mut table = Table::new(
        "E2b: ablation — next-candidate failover on refusal (900-s updates, churny nodes)",
        &["failover", "completed", "failed", "refusals", "mean_wait_s"],
    );
    let mut rng = DetRng::new(99);
    let square_wave = |phase: usize| -> Vec<integrade_usage::sample::UsageSample> {
        use integrade_usage::sample::UsageSample;
        (0..288 * 7)
            .map(|slot| {
                if ((slot + phase) / 2).is_multiple_of(2) {
                    UsageSample::new(0.9, 0.5, 0.0, 0.0)
                } else {
                    UsageSample::idle()
                }
            })
            .collect()
    };
    let phases: Vec<usize> = (0..16).map(|_| rng.index(4)).collect();
    for &failover in &[true, false] {
        let config = GridConfig::builder()
            .gupa_warmup_days(0)
            .strategy(Strategy::AvailabilityOnly)
            .seed(7)
            .candidate_failover(failover)
            .max_attempts(60)
            .update_period(SimDuration::from_secs(900))
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster(
            phases
                .iter()
                .map(|&p| NodeSetup {
                    trace: square_wave(p),
                    ..NodeSetup::idle_desktop()
                })
                .collect(),
        );
        let mut grid = builder.build();
        let jobs = 48;
        for i in 0..jobs {
            grid.submit_at(
                JobSpec::sequential(&format!("job{i}"), 30_000),
                SimTime::ZERO + SimDuration::from_mins(10 * i + 3),
            );
        }
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(16));
        let report = grid.report();
        let refusals: u64 = report.records.iter().map(|r| r.negotiation_refusals).sum();
        let waits: Vec<f64> = report
            .records
            .iter()
            .filter_map(|r| r.wait_time().map(|d| d.as_secs_f64()))
            .collect();
        let mean_wait = if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        table.push_row(vec![
            failover.to_string(),
            report.completed().to_string(),
            report.failed().to_string(),
            refusals.to_string(),
            f2(mean_wait),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_shows_all_components() {
        let table = f1();
        assert_eq!(table.rows.len(), 7);
        // NCC invariant encoded in the table itself.
        assert!(table
            .cell(4, "evidence")
            .unwrap()
            .starts_with("0 cap violations"));
    }

    #[test]
    fn e1_cost_scales_with_nodes_and_period() {
        let table = e1();
        // messages grow with node count at fixed period (rows 1 and 5 are
        // 10-node/30s and 50-node/30s).
        let msgs_10 = table.cell_f64(1, "wire_msgs").unwrap();
        let msgs_50 = table.cell_f64(5, "wire_msgs").unwrap();
        assert!(msgs_50 > 4.0 * msgs_10);
        // Shorter period costs more than longer at fixed size.
        let msgs_10s = table.cell_f64(0, "wire_msgs").unwrap();
        let msgs_60s = table.cell_f64(2, "wire_msgs").unwrap();
        assert!(msgs_10s > 4.0 * msgs_60s);
        // Delta suppression slashes idle-cluster traffic.
        let updates_plain = table.cell_f64(1, "updates").unwrap();
        let updates_delta = table.cell_f64(3, "updates").unwrap();
        assert!(updates_delta * 10.0 < updates_plain);
    }

    #[test]
    fn e2b_failover_is_load_bearing() {
        let table = e2b();
        assert!(table.cell_f64(0, "completed").unwrap() >= 40.0);
        // Without the paper's failover step the job keeps re-querying into
        // the same stale head-of-list: far more refusals and a wait that
        // jumps from ~10 ms to minutes.
        let wait_with = table.cell_f64(0, "mean_wait_s").unwrap();
        let wait_without = table.cell_f64(1, "mean_wait_s").unwrap();
        assert!(
            wait_without > 100.0 * wait_with.max(0.001),
            "{wait_without} vs {wait_with}"
        );
        assert!(table.cell_f64(1, "refusals").unwrap() > table.cell_f64(0, "refusals").unwrap());
    }

    #[test]
    fn e2_staleness_increases_refusals() {
        let table = e2();
        let fresh = table.cell_f64(0, "refusals/job").unwrap();
        let stale = table.cell_f64(3, "refusals/job").unwrap();
        assert!(
            stale > fresh,
            "staler hints → more refusals ({fresh} vs {stale})"
        );
        // Negotiation still gets jobs through despite the stale hints —
        // the protocol's whole point.
        for row in 0..table.rows.len() {
            let done = table.cell_f64(row, "completed").unwrap();
            assert!(done >= 40.0, "row {row}: completed={done}");
        }
    }
}
