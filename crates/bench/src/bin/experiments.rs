//! Experiment runner: regenerates the EXPERIMENTS.md tables.
//!
//! Usage:
//!   experiments           # list experiments
//!   experiments all       # run everything
//!   experiments e5 e11    # run specific experiments

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        println!("InteGrade experiment harness. Available experiments:\n");
        for (id, description, _) in integrade_bench::experiments() {
            println!("  {id:<5} {description}");
        }
        println!("\nUsage: experiments <id>... | all");
        return;
    }
    let ids: Vec<String> = if args.len() == 1 && args[0] == "all" {
        integrade_bench::experiments()
            .into_iter()
            .map(|(id, _, _)| id.to_owned())
            .collect()
    } else {
        args
    };
    for id in ids {
        match integrade_bench::run(&id) {
            Some(table) => println!("{table}"),
            None => eprintln!("unknown experiment '{id}' (run with no args to list)"),
        }
    }
}
