//! E10b: trader query scaling — indexed engine vs the seed linear scan.
//!
//! The GRM consults the trader on every scheduling pass, so query cost
//! bounds how large a cluster one manager can serve. This experiment times
//! the paper's example constraint at growing offer counts across four
//! variants and emits both a prose table and a machine-readable
//! `BENCH_trader.json` for tooling.

use crate::table::{f2, Table};
use integrade_orb::any::AnyValue;
use integrade_orb::ior::{Endpoint, Ior, ObjectKey};
use integrade_orb::trading::Trader;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

/// The paper's example constraint (§3.3's "machines with more than X MIPS").
pub const PAPER_CONSTRAINT: &str = "exporting == true and cpu_mips >= 500 and free_ram_mb >= 16";

/// The query variants measured, in the order they appear in the table.
pub const VARIANTS: [&str; 4] = ["seed_reference", "cold_plan", "bucket_scan", "warm_indexed"];

fn trader_with(offers: usize) -> Trader {
    let mut trader = Trader::new(7);
    for i in 0..offers {
        let properties: BTreeMap<String, AnyValue> = [
            (
                "cpu_mips".to_owned(),
                AnyValue::Long(300 + (i as i64 * 13) % 1700),
            ),
            (
                "free_ram_mb".to_owned(),
                AnyValue::Long((i as i64 * 7) % 512),
            ),
            ("exporting".to_owned(), AnyValue::Bool(i % 5 != 0)),
        ]
        .into_iter()
        .collect();
        trader
            .export(
                "integrade::node",
                &Ior::new(
                    "IDL:integrade/Lrm:1.0",
                    Endpoint::new(i as u32, 0),
                    ObjectKey::new(format!("lrm{i}")),
                ),
                properties,
            )
            .unwrap();
    }
    trader
}

/// Median ns/call of `f` over `samples` timed blocks of `iters` calls each,
/// after one untimed warm-up block.
fn time_ns(mut f: impl FnMut(), iters: usize, samples: usize) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_call[per_call.len() / 2]
}

/// Times every variant at each offer count, returning
/// `(offers, variant, ns_per_query)` tuples.
pub fn measure(sizes: &[usize], iters: usize, samples: usize) -> Vec<(usize, &'static str, f64)> {
    let mut results = Vec::new();
    for &offers in sizes {
        let run = |trader: &mut Trader| {
            black_box(
                trader
                    .query("integrade::node", PAPER_CONSTRAINT, "max cpu_mips", 64)
                    .unwrap(),
            )
        };

        let mut trader = trader_with(offers);
        results.push((
            offers,
            "seed_reference",
            time_ns(
                || {
                    black_box(
                        trader
                            .query_reference(
                                "integrade::node",
                                PAPER_CONSTRAINT,
                                "max cpu_mips",
                                64,
                            )
                            .unwrap(),
                    );
                },
                iters,
                samples,
            ),
        ));

        let mut trader = trader_with(offers);
        results.push((
            offers,
            "cold_plan",
            time_ns(
                || {
                    trader.clear_plan_cache();
                    run(&mut trader);
                },
                iters,
                samples,
            ),
        ));

        let mut trader = trader_with(offers);
        trader.set_use_indexes(false);
        results.push((
            offers,
            "bucket_scan",
            time_ns(
                || {
                    run(&mut trader);
                },
                iters,
                samples,
            ),
        ));

        let mut trader = trader_with(offers);
        results.push((
            offers,
            "warm_indexed",
            time_ns(
                || {
                    run(&mut trader);
                },
                iters,
                samples,
            ),
        ));
    }
    results
}

/// Renders the measurements as `BENCH_trader.json` (machine-readable, one
/// object per `(offers, variant)` cell).
pub fn to_json(results: &[(usize, &'static str, f64)]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"e10b\",\n  \"unit\": \"ns_per_query\",\n  \"constraint\": \"",
    );
    out.push_str(PAPER_CONSTRAINT);
    out.push_str("\",\n  \"results\": [\n");
    for (i, (offers, variant, ns)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"offers\": {offers}, \"variant\": \"{variant}\", \"ns_per_query\": {ns:.1}}}{sep}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// E10b: trader query cost by offer count and engine variant, with the
/// warm-indexed speedup over the seed implementation. Side effect: writes
/// `BENCH_trader.json` to the working directory.
pub fn e10b() -> Table {
    let sizes = [100usize, 1000, 5000];
    let results = measure(&sizes, 40, 5);
    match std::fs::write("BENCH_trader.json", to_json(&results)) {
        Ok(()) => eprintln!("e10b: wrote BENCH_trader.json"),
        Err(e) => eprintln!("e10b: could not write BENCH_trader.json: {e}"),
    }

    let mut table = Table::new(
        "E10b: trader query ns/call — indexed engine vs seed linear scan",
        &[
            "offers",
            "seed_reference",
            "cold_plan",
            "bucket_scan",
            "warm_indexed",
            "speedup_vs_seed",
        ],
    );
    for &offers in &sizes {
        let ns = |variant: &str| {
            results
                .iter()
                .find(|(o, v, _)| *o == offers && *v == variant)
                .map(|(_, _, ns)| *ns)
                .unwrap()
        };
        let seed = ns("seed_reference");
        let warm = ns("warm_indexed");
        table.push_row(vec![
            offers.to_string(),
            f2(seed),
            f2(ns("cold_plan")),
            f2(ns("bucket_scan")),
            f2(warm),
            format!("{:.1}x", seed / warm),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_covers_every_variant_and_size() {
        let results = measure(&[50, 200], 3, 2);
        assert_eq!(results.len(), VARIANTS.len() * 2);
        for (_, _, ns) in &results {
            assert!(*ns > 0.0);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = to_json(&[(100, "warm_indexed", 123.45)]);
        assert!(json.contains("\"experiment\": \"e10b\""));
        assert!(json.contains("\"offers\": 100"));
        assert!(json.contains("\"ns_per_query\": 123.5"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn warm_indexed_beats_seed_at_scale() {
        // Shape assertion, deliberately loose: at 2000 offers the indexed
        // engine with a warm plan must not be slower than the seed scan.
        let results = measure(&[2000], 20, 3);
        let ns = |variant: &str| {
            results
                .iter()
                .find(|(_, v, _)| *v == variant)
                .map(|(_, _, ns)| *ns)
                .unwrap()
        };
        assert!(
            ns("warm_indexed") <= ns("seed_reference"),
            "warm {} vs seed {}",
            ns("warm_indexed"),
            ns("seed_reference")
        );
    }
}
