//! E15: observability overhead — the metrics registry, trace spans and
//! mirror sync must be free enough that nobody ever turns them off.
//!
//! The observability layer (`integrade-obs`) is wired through the grid hot
//! path: counters bump on retransmits and drops, histograms observe
//! negotiation and checkpoint round-trips, spans open and close around
//! every traced RPC. All of it is designed to be cheap — pre-resolved
//! handles (no name hashing after registration), `Cell` bumps, no
//! allocation on the update path — and *passive*: disabling it changes no
//! event, no message, no log line.
//!
//! This experiment prices that design at the e14 smoke scale: the 5k-node
//! active-set cell runs twice with metrics+spans enabled and twice
//! disabled (best-of-2 per config damps scheduler noise), and the guard
//! asserts
//!
//! * the enabled/disabled sim-per-wall delta stays under 5%, and
//! * the enabled run still clears the committed `BENCH_scale_floor.json`
//!   throughput floor — observability does not cost the e14 regression
//!   budget.
//!
//! Emits `BENCH_obs.json` plus `BENCH_obs.prom`, the Prometheus text dump
//! of the enabled run's final snapshot (the demo artifact for the export
//! API).

use crate::exp_scale14::{committed_floor, HORIZON_S, SEED};
use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade_obs::metrics::MetricsSnapshot;
use integrade_simnet::time::{SimDuration, SimTime};
use std::time::Instant;

/// Node population of the overhead cell (matches `e14smoke`).
pub const NODES: usize = 5_000;

/// Runs per configuration; the best run is kept.
pub const RUNS: usize = 2;

/// Relative overhead budget for metrics-on vs metrics-off.
pub const MAX_OVERHEAD_FRAC: f64 = 0.05;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ObsCell {
    /// Whether metrics and span recording were enabled.
    pub metrics_on: bool,
    /// Virtual seconds simulated per wall-clock second (best of [`RUNS`]).
    pub sim_per_wall: f64,
    /// Events dispatched (identical across configs — instrumentation is
    /// passive, so this doubles as a determinism check).
    pub events: u64,
    /// Jobs completed out of 5.
    pub completed: usize,
    /// Trace spans recorded (0 when disabled).
    pub spans: usize,
}

/// The e14smoke grid with observability toggled: 5k idle nodes, delta
/// suppression, crash detection pushed past the horizon, trace log off so
/// only the metrics layer separates the two configs.
fn obs_grid(metrics_on: bool) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(0)
        .delta_suppression(true)
        .crash_silence(SimDuration::from_secs(HORIZON_S * 2))
        .tick_mode(TickMode::ActiveSet)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..NODES).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    grid.disable_trace();
    grid.set_metrics_enabled(metrics_on);
    grid
}

/// Runs one cell and returns it with the final snapshot (for the export
/// demo). The workload is e14smoke's: five small sequential jobs over two
/// virtual hours.
fn run_once(metrics_on: bool) -> (ObsCell, MetricsSnapshot) {
    let mut grid = obs_grid(metrics_on);
    for i in 0..5 {
        grid.submit(JobSpec::sequential(&format!("e15-{i}"), 60_000));
    }
    let started = Instant::now();
    let (_, events) = grid.run_until_counting(SimTime::from_secs(HORIZON_S));
    let wall = started.elapsed().as_secs_f64().max(1e-9);
    let spans = grid.spans().len();
    let snapshot = grid.metrics_snapshot();
    let completed = grid
        .report()
        .records
        .iter()
        .filter(|r| r.state == JobState::Completed)
        .count();
    (
        ObsCell {
            metrics_on,
            sim_per_wall: HORIZON_S as f64 / wall,
            events,
            completed,
            spans,
        },
        snapshot,
    )
}

/// Best-of-[`RUNS`] for one configuration.
pub fn run_cell(metrics_on: bool) -> (ObsCell, MetricsSnapshot) {
    let mut best: Option<(ObsCell, MetricsSnapshot)> = None;
    for _ in 0..RUNS {
        let (cell, snap) = run_once(metrics_on);
        if best
            .as_ref()
            .map(|(b, _)| cell.sim_per_wall > b.sim_per_wall)
            .unwrap_or(true)
        {
            best = Some((cell, snap));
        }
    }
    best.expect("RUNS >= 1")
}

/// Relative slowdown of the enabled config: `(off - on) / off`. Negative
/// when the enabled run was faster (noise).
pub fn overhead_frac(on: &ObsCell, off: &ObsCell) -> f64 {
    (off.sim_per_wall - on.sim_per_wall) / off.sim_per_wall.max(1e-9)
}

/// Renders the pair as `BENCH_obs.json`.
pub fn to_json(on: &ObsCell, off: &ObsCell, floor: f64) -> String {
    let cell = |c: &ObsCell| {
        format!(
            "{{\"metrics_on\": {}, \"sim_per_wall\": {:.1}, \"events\": {}, \
             \"completed\": {}, \"spans\": {}}}",
            c.metrics_on, c.sim_per_wall, c.events, c.completed, c.spans
        )
    };
    format!(
        "{{\n  \"experiment\": \"e15\",\n  \"nodes\": {NODES},\n  \
         \"enabled\": {},\n  \"disabled\": {},\n  \
         \"overhead_pct\": {:.2},\n  \"floor_5k\": {:.1}\n}}\n",
        cell(on),
        cell(off),
        overhead_frac(on, off) * 100.0,
        floor
    )
}

/// E15: the overhead guard. Side effects: writes `BENCH_obs.json` and
/// `BENCH_obs.prom` (the enabled run's Prometheus dump).
///
/// # Panics
///
/// Panics when instrumentation perturbs the run (event counts differ),
/// when the overhead exceeds [`MAX_OVERHEAD_FRAC`], or when the enabled
/// run falls below the committed e14 floor.
pub fn e15() -> Table {
    let (on, snapshot) = run_cell(true);
    let (off, _) = run_cell(false);
    let floor = committed_floor().unwrap_or(0.0);
    match std::fs::write("BENCH_obs.json", to_json(&on, &off, floor)) {
        Ok(()) => eprintln!("e15: wrote BENCH_obs.json"),
        Err(e) => eprintln!("e15: could not write BENCH_obs.json: {e}"),
    }
    match std::fs::write("BENCH_obs.prom", snapshot.to_prometheus()) {
        Ok(()) => eprintln!("e15: wrote BENCH_obs.prom"),
        Err(e) => eprintln!("e15: could not write BENCH_obs.prom: {e}"),
    }
    let mut table = Table::new(
        "E15: observability overhead at 5k nodes (best of 2 per config)",
        &[
            "metrics",
            "sim_s_per_wall_s",
            "events",
            "completed",
            "spans",
        ],
    );
    for c in [&on, &off] {
        table.push_row(vec![
            if c.metrics_on { "on" } else { "off" }.to_owned(),
            f2(c.sim_per_wall),
            c.events.to_string(),
            format!("{}/5", c.completed),
            c.spans.to_string(),
        ]);
    }
    table.push_row(vec![
        "overhead".to_owned(),
        format!("{:.2}%", overhead_frac(&on, &off) * 100.0),
        String::new(),
        String::new(),
        String::new(),
    ]);
    assert_eq!(
        on.events, off.events,
        "e15: instrumentation perturbed the simulation — event counts differ"
    );
    assert!(
        on.completed > 0,
        "e15: no job completed — the scenario exercised nothing"
    );
    assert!(on.spans > 0, "e15: the enabled run recorded no trace spans");
    assert!(
        overhead_frac(&on, &off) < MAX_OVERHEAD_FRAC,
        "e15: metrics overhead {:.2}% exceeds the {:.0}% budget \
         ({:.1} on vs {:.1} off sim s/wall s)",
        overhead_frac(&on, &off) * 100.0,
        MAX_OVERHEAD_FRAC * 100.0,
        on.sim_per_wall,
        off.sim_per_wall
    );
    assert!(
        on.sim_per_wall >= floor,
        "e15: with metrics enabled, {:.1} sim s/wall s is below the \
         committed floor of {floor:.1} (BENCH_scale_floor.json)",
        on.sim_per_wall
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-population shape check: toggling metrics changes neither the
    /// event stream nor the outcome, the enabled run carries a populated
    /// snapshot and spans, and the disabled run records nothing.
    #[test]
    fn instrumentation_is_passive_and_populated() {
        let run = |metrics_on: bool| {
            let config = GridConfig::builder()
                .seed(SEED)
                .gupa_warmup_days(0)
                .delta_suppression(true)
                .crash_silence(SimDuration::from_secs(HORIZON_S * 2))
                .build();
            let mut builder = GridBuilder::new(config);
            builder.add_cluster((0..200).map(|_| NodeSetup::idle_desktop()).collect());
            let mut grid = builder.build();
            grid.disable_trace();
            grid.set_metrics_enabled(metrics_on);
            for i in 0..3 {
                grid.submit(JobSpec::sequential(&format!("t-{i}"), 30_000));
            }
            let (_, events) = grid.run_until_counting(SimTime::from_secs(3600));
            let spans = grid.spans().len();
            let snap = grid.metrics_snapshot();
            (events, spans, snap)
        };
        let (events_on, spans_on, snap_on) = run(true);
        let (events_off, spans_off, snap_off) = run(false);
        assert_eq!(events_on, events_off, "instrumentation must be passive");
        assert!(spans_on > 0, "enabled run should trace negotiation RPCs");
        assert_eq!(spans_off, 0, "disabled run must record nothing");
        assert!(snap_on.counter_total("grm_updates") > 0);
        // Mirrors sync regardless of the enable flag (they shadow stats the
        // components keep anyway), so both snapshots see ORB traffic.
        assert!(snap_off.counter("orb_requests_sent").unwrap() > 0);
        // Live histograms only populate when enabled.
        let hist = snap_on
            .histogram("grid_negotiation_latency_seconds")
            .unwrap();
        assert!(hist.count > 0, "reserve/launch RPCs should be observed");
        assert_eq!(
            snap_off
                .histogram("grid_negotiation_latency_seconds")
                .unwrap()
                .count,
            0
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cell = |on: bool| ObsCell {
            metrics_on: on,
            sim_per_wall: 100.0,
            events: 42,
            completed: 5,
            spans: if on { 7 } else { 0 },
        };
        let json = to_json(&cell(true), &cell(false), 50.0);
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"overhead_pct\": 0.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
