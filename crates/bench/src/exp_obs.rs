//! E15: observability overhead — the metrics registry, trace spans and
//! mirror sync must be free enough that nobody ever turns them off.
//!
//! The observability layer (`integrade-obs`) is wired through the grid hot
//! path: counters bump on retransmits and drops, histograms observe
//! negotiation and checkpoint round-trips, spans open and close around
//! every traced RPC. All of it is designed to be cheap — pre-resolved
//! handles (no name hashing after registration), `Cell` bumps, no
//! allocation on the update path — and *passive*: disabling it changes no
//! event, no message, no log line.
//!
//! This experiment prices that design at the e14 smoke scale: eight
//! independent replicas of the 5k-node e14smoke cell run with
//! metrics+spans enabled and disabled (the replicas' run times sum into
//! one few-hundred-ms timed region per measurement; a discarded warmup,
//! replica-by-replica off/on interleaving and the median over four such
//! pairs make the comparison robust to host noise), and the guard asserts
//!
//! * the enabled/disabled sim-per-wall delta stays under the 10%
//!   regression budget (the measured cost is ~1–2%; the budget leaves
//!   headroom for the median's residual noise), and
//! * the enabled run still clears the committed `BENCH_scale_floor.json`
//!   throughput floor — observability does not cost the e14 regression
//!   budget.
//!
//! Emits `BENCH_obs.json` plus `BENCH_obs.prom`, the Prometheus text dump
//! of the enabled run's final snapshot (the demo artifact for the export
//! API).

use crate::exp_scale14::{committed_floor, SEED};
use crate::table::{f2, Table};
use integrade_core::asct::{JobSpec, JobState};
use integrade_core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade_obs::metrics::MetricsSnapshot;
use integrade_simnet::time::{SimDuration, SimTime};
use std::time::Instant;

/// Node population of the overhead cell (matches `e14smoke`).
pub const NODES: usize = 5_000;

/// Replica-interleaved measurement pairs; the median-overhead pair is
/// kept. The on-vs-off delta this experiment measures (a few percent)
/// is the same order as host throughput noise on a shared runner, so
/// the guard interleaves the configs replica-by-replica (noise lands in
/// both buckets) and takes the median pair (spikes discarded) — see
/// [`run_pairs`].
pub const RUNS: usize = 4;

/// Relative overhead budget for metrics-on vs metrics-off. This is a
/// regression tripwire, not the measured cost: the true instrumentation
/// cost is ~1–2 % (see EXPERIMENTS.md E15), but the median interleaved
/// pair still wanders ±5 % on a noisy single-core host, so the budget
/// sits at twice the worst observed noise excursion. A real hot-path
/// regression (say, string hashing back on the update path) shifts
/// *every* pair and blows well past this.
pub const MAX_OVERHEAD_FRAC: f64 = 0.10;

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ObsCell {
    /// Whether metrics and span recording were enabled.
    pub metrics_on: bool,
    /// Virtual seconds simulated per wall-clock second, summed over the
    /// configuration's [`REPLICAS`] timed event loops.
    pub sim_per_wall: f64,
    /// Events dispatched (identical across configs — instrumentation is
    /// passive, so this doubles as a determinism check).
    pub events: u64,
    /// Jobs completed out of 5.
    pub completed: usize,
    /// Trace spans recorded (0 when disabled).
    pub spans: usize,
}

/// Replicas of the e14smoke cell aggregated into one measurement. The
/// on-vs-off delta gated here is a few percent, and a single cell's timed
/// region is only tens of wall-ms — small enough for scheduler noise to
/// fake or mask a 5 % difference. Summing the run time of eight
/// independent replicas (grid construction stays untimed) grows the
/// region to a few hundred ms without changing what a cell *is*, so the
/// committed e14 floor still applies unchanged.
pub const REPLICAS: u64 = 8;

/// Virtual horizon of each replica, seconds (the e14 cell's).
pub const HORIZON_S: u64 = crate::exp_scale14::HORIZON_S;

/// The e14smoke grid with observability toggled: 5k idle nodes, delta
/// suppression, crash detection pushed past the horizon, trace log off so
/// only the metrics layer separates the two configs.
fn obs_grid(metrics_on: bool) -> Grid {
    let config = GridConfig::builder()
        .seed(SEED)
        .gupa_warmup_days(0)
        .delta_suppression(true)
        .crash_silence(SimDuration::from_secs(HORIZON_S * 2))
        .tick_mode(TickMode::ActiveSet)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..NODES).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    grid.disable_trace();
    grid.set_metrics_enabled(metrics_on);
    grid
}

/// One e14smoke replica (five small sequential jobs, two virtual hours):
/// raw wall seconds of the event loop (grid construction untimed) plus
/// the outcome counters and the final metrics snapshot.
struct Replica {
    wall: f64,
    events: u64,
    completed: usize,
    spans: usize,
    snapshot: MetricsSnapshot,
}

fn run_replica(metrics_on: bool) -> Replica {
    let mut grid = obs_grid(metrics_on);
    for i in 0..5 {
        grid.submit(JobSpec::sequential(&format!("e15-{i}"), 60_000));
    }
    let started = Instant::now();
    let (_, events) = grid.run_until_counting(SimTime::from_secs(HORIZON_S));
    let wall = started.elapsed().as_secs_f64();
    Replica {
        wall,
        events,
        completed: grid
            .report()
            .records
            .iter()
            .filter(|r| r.state == JobState::Completed)
            .count(),
        spans: grid.spans().len(),
        snapshot: grid.metrics_snapshot(),
    }
}

/// Accumulates [`REPLICAS`] replicas of one configuration into an
/// [`ObsCell`]. Span count follows the last replica absorbed (all
/// replicas are identical), everything else sums.
#[derive(Default)]
struct Accum {
    wall: f64,
    events: u64,
    completed: usize,
    spans: usize,
}

impl Accum {
    fn absorb(&mut self, r: &Replica) {
        self.wall += r.wall;
        self.events += r.events;
        self.completed += r.completed;
        self.spans = r.spans;
    }

    fn cell(&self, metrics_on: bool) -> ObsCell {
        ObsCell {
            metrics_on,
            sim_per_wall: (REPLICAS * HORIZON_S) as f64 / self.wall.max(1e-9),
            events: self.events,
            completed: self.completed,
            spans: self.spans,
        }
    }
}

/// Runs [`REPLICAS`] replicas of one configuration back to back and
/// aggregates them. Used for the warmup; the gated measurement goes
/// through [`run_pairs`], which interleaves the configs instead.
fn run_once(metrics_on: bool) -> (ObsCell, MetricsSnapshot) {
    let mut acc = Accum::default();
    let mut snapshot = None;
    for _ in 0..REPLICAS {
        let r = run_replica(metrics_on);
        acc.absorb(&r);
        snapshot = Some(r.snapshot);
    }
    (acc.cell(metrics_on), snapshot.expect("REPLICAS >= 1"))
}

/// One measurement pair with the configs interleaved at *replica*
/// granularity: off-replica, on-replica, off-replica, ... for
/// [`REPLICAS`] rounds, each config's event-loop time accumulated into
/// its own bucket. A single replica's timed slice is a few wall-ms, so
/// host-throughput noise on any longer timescale — frequency scaling,
/// noisy neighbours, page-cache churn — lands in both buckets instead
/// of biasing whichever config ran as one contiguous block.
fn run_interleaved() -> (ObsCell, ObsCell, MetricsSnapshot) {
    let (mut off, mut on) = (Accum::default(), Accum::default());
    let mut snapshot = None;
    for _ in 0..REPLICAS {
        off.absorb(&run_replica(false));
        let r = run_replica(true);
        on.absorb(&r);
        snapshot = Some(r.snapshot);
    }
    (
        on.cell(true),
        off.cell(false),
        snapshot.expect("REPLICAS >= 1"),
    )
}

/// Median-overhead (on, off) pair out of [`RUNS`] replica-interleaved
/// measurements (`run_interleaved`). The interleaving cancels noise
/// *within* a pair; the median across pairs then discards the
/// occasional measurement where a one-sided spike survived anyway.
/// Best-of-N cannot do either: its two winners come from different
/// instants, so drift between those instants masquerades as overhead.
pub fn run_pairs() -> (ObsCell, ObsCell, MetricsSnapshot) {
    let mut pairs: Vec<(ObsCell, ObsCell, MetricsSnapshot)> =
        (0..RUNS.max(1)).map(|_| run_interleaved()).collect();
    pairs.sort_by(|a, b| overhead_frac(&a.0, &a.1).total_cmp(&overhead_frac(&b.0, &b.1)));
    pairs.swap_remove(pairs.len() / 2)
}

/// Relative slowdown of the enabled config: `(off - on) / off`. Negative
/// when the enabled run was faster (noise).
pub fn overhead_frac(on: &ObsCell, off: &ObsCell) -> f64 {
    (off.sim_per_wall - on.sim_per_wall) / off.sim_per_wall.max(1e-9)
}

/// Renders the pair as `BENCH_obs.json`.
pub fn to_json(on: &ObsCell, off: &ObsCell, floor: f64) -> String {
    let cell = |c: &ObsCell| {
        format!(
            "{{\"metrics_on\": {}, \"sim_per_wall\": {:.1}, \"events\": {}, \
             \"completed\": {}, \"spans\": {}}}",
            c.metrics_on, c.sim_per_wall, c.events, c.completed, c.spans
        )
    };
    format!(
        "{{\n  \"experiment\": \"e15\",\n  \"nodes\": {NODES},\n  \
         \"enabled\": {},\n  \"disabled\": {},\n  \
         \"overhead_pct\": {:.2},\n  \"floor_5k\": {:.1}\n}}\n",
        cell(on),
        cell(off),
        overhead_frac(on, off) * 100.0,
        floor
    )
}

/// E15: the overhead guard. Side effects: writes `BENCH_obs.json` and
/// `BENCH_obs.prom` (the enabled run's Prometheus dump).
///
/// # Panics
///
/// Panics when instrumentation perturbs the run (event counts differ),
/// when the overhead exceeds [`MAX_OVERHEAD_FRAC`], or when the enabled
/// run falls below the committed e14 floor.
pub fn e15() -> Table {
    // Discarded warmup: the first cell of a process absorbs one-off costs
    // (first-touch page faults, allocator heap growth) that would bias
    // whichever configuration happens to run first.
    let _warmup = run_once(false);
    let (on, off, snapshot) = run_pairs();
    let floor = committed_floor().unwrap_or(0.0);
    match std::fs::write("BENCH_obs.json", to_json(&on, &off, floor)) {
        Ok(()) => eprintln!("e15: wrote BENCH_obs.json"),
        Err(e) => eprintln!("e15: could not write BENCH_obs.json: {e}"),
    }
    match std::fs::write("BENCH_obs.prom", snapshot.to_prometheus()) {
        Ok(()) => eprintln!("e15: wrote BENCH_obs.prom"),
        Err(e) => eprintln!("e15: could not write BENCH_obs.prom: {e}"),
    }
    let mut table = Table::new(
        "E15: observability overhead at 5k nodes (median of 4 interleaved pairs)",
        &[
            "metrics",
            "sim_s_per_wall_s",
            "events",
            "completed",
            "spans",
        ],
    );
    for c in [&on, &off] {
        table.push_row(vec![
            if c.metrics_on { "on" } else { "off" }.to_owned(),
            f2(c.sim_per_wall),
            c.events.to_string(),
            format!("{}/{}", c.completed, 5 * REPLICAS),
            c.spans.to_string(),
        ]);
    }
    table.push_row(vec![
        "overhead".to_owned(),
        format!("{:.2}%", overhead_frac(&on, &off) * 100.0),
        String::new(),
        String::new(),
        String::new(),
    ]);
    assert_eq!(
        on.events, off.events,
        "e15: instrumentation perturbed the simulation — event counts differ"
    );
    assert!(
        on.completed > 0,
        "e15: no job completed — the scenario exercised nothing"
    );
    assert!(on.spans > 0, "e15: the enabled run recorded no trace spans");
    assert!(
        overhead_frac(&on, &off) < MAX_OVERHEAD_FRAC,
        "e15: metrics overhead {:.2}% exceeds the {:.0}% budget \
         ({:.1} on vs {:.1} off sim s/wall s)",
        overhead_frac(&on, &off) * 100.0,
        MAX_OVERHEAD_FRAC * 100.0,
        on.sim_per_wall,
        off.sim_per_wall
    );
    assert!(
        on.sim_per_wall >= floor,
        "e15: with metrics enabled, {:.1} sim s/wall s is below the \
         committed floor of {floor:.1} (BENCH_scale_floor.json)",
        on.sim_per_wall
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-population shape check: toggling metrics changes neither the
    /// event stream nor the outcome, the enabled run carries a populated
    /// snapshot and spans, and the disabled run records nothing.
    #[test]
    fn instrumentation_is_passive_and_populated() {
        let run = |metrics_on: bool| {
            let config = GridConfig::builder()
                .seed(SEED)
                .gupa_warmup_days(0)
                .delta_suppression(true)
                .crash_silence(SimDuration::from_secs(HORIZON_S * 2))
                .build();
            let mut builder = GridBuilder::new(config);
            builder.add_cluster((0..200).map(|_| NodeSetup::idle_desktop()).collect());
            let mut grid = builder.build();
            grid.disable_trace();
            grid.set_metrics_enabled(metrics_on);
            for i in 0..3 {
                grid.submit(JobSpec::sequential(&format!("t-{i}"), 30_000));
            }
            let (_, events) = grid.run_until_counting(SimTime::from_secs(3600));
            let spans = grid.spans().len();
            let snap = grid.metrics_snapshot();
            (events, spans, snap)
        };
        let (events_on, spans_on, snap_on) = run(true);
        let (events_off, spans_off, snap_off) = run(false);
        assert_eq!(events_on, events_off, "instrumentation must be passive");
        assert!(spans_on > 0, "enabled run should trace negotiation RPCs");
        assert_eq!(spans_off, 0, "disabled run must record nothing");
        assert!(snap_on.counter_total("grm_updates") > 0);
        // Mirrors sync regardless of the enable flag (they shadow stats the
        // components keep anyway), so both snapshots see ORB traffic.
        assert!(snap_off.counter("orb_requests_sent").unwrap() > 0);
        // Live histograms only populate when enabled.
        let hist = snap_on
            .histogram("grid_negotiation_latency_seconds")
            .unwrap();
        assert!(hist.count > 0, "reserve/launch RPCs should be observed");
        assert_eq!(
            snap_off
                .histogram("grid_negotiation_latency_seconds")
                .unwrap()
                .count,
            0
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cell = |on: bool| ObsCell {
            metrics_on: on,
            sim_per_wall: 100.0,
            events: 42,
            completed: 5,
            spans: if on { 7 } else { 0 },
        };
        let json = to_json(&cell(true), &cell(false), 50.0);
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"overhead_pct\": 0.00"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
