//! E10 micro-benchmarks: CDR marshalling, GIOP framing and full
//! request→dispatch→reply cycles through the object adapter — the costs the
//! paper's "very small memory footprint CORBA" (UIC-CORBA) pitch is about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use integrade_core::protocol::StatusUpdate;
use integrade_core::types::{NodeId, NodeStatus};
use integrade_orb::cdr::{CdrDecode, CdrEncode, CdrReader};
use integrade_orb::giop::Message;
use integrade_orb::ior::{Endpoint, ObjectKey};
use integrade_orb::orb::{Incoming, Orb};
use integrade_orb::servant::{Servant, ServerException};
use std::hint::black_box;

fn sample_update() -> StatusUpdate {
    StatusUpdate {
        node: NodeId(42),
        seq: 1234,
        status: NodeStatus {
            free_cpu_fraction: 0.31,
            free_ram_mb: 128,
            owner_active: false,
            exporting: true,
            running_parts: 2,
        },
        replicas: vec![],
        pending_done: vec![],
        pending_evicted: vec![],
        progress: vec![],
    }
}

fn bench_cdr(c: &mut Criterion) {
    let update = sample_update();
    c.bench_function("cdr_encode_status_update", |b| {
        b.iter(|| black_box(&update).to_cdr_bytes())
    });
    let bytes = update.to_cdr_bytes();
    c.bench_function("cdr_decode_status_update", |b| {
        b.iter(|| StatusUpdate::from_cdr_bytes(black_box(&bytes)).unwrap())
    });
}

fn bench_giop(c: &mut Criterion) {
    let update = sample_update();
    let msg = Message::Request {
        request_id: 7,
        response_expected: false,
        object_key: ObjectKey::new("integrade/grm"),
        operation: "update_status".into(),
        body: update.to_cdr_bytes().into(),
    };
    c.bench_function("giop_frame_encode", |b| {
        b.iter(|| black_box(&msg).to_wire())
    });
    let wire = msg.to_wire();
    c.bench_function("giop_frame_decode", |b| {
        b.iter(|| Message::from_wire(black_box(&wire)).unwrap())
    });
}

struct Sink {
    received: u64,
}

impl Servant for Sink {
    fn type_id(&self) -> &'static str {
        "IDL:bench/Sink:1.0"
    }
    fn dispatch(&mut self, op: &str, args: &mut CdrReader<'_>) -> Result<Vec<u8>, ServerException> {
        match op {
            "update_status" => {
                let update = StatusUpdate::decode(args)?;
                self.received += update.seq;
                Ok(Vec::new())
            }
            other => Err(ServerException::BadOperation(other.to_owned())),
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("orb_request_dispatch_reply_cycle", |b| {
        b.iter_batched(
            || {
                let mut server = Orb::new(Endpoint::new(1, 0));
                let ior = server.activate(ObjectKey::new("sink"), Box::new(Sink { received: 0 }));
                let mut client = Orb::new(Endpoint::new(2, 0));
                let update = sample_update();
                let (_, wire) = client.make_request(&ior, "update_status", |w| update.encode(w));
                (server, client, wire)
            },
            |(mut server, mut client, wire)| {
                let Incoming::ReplyToSend(reply) = server.handle_wire(&wire).unwrap() else {
                    panic!()
                };
                client.handle_wire(&reply).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_cdr, bench_giop, bench_dispatch);
criterion_main!(benches);
