//! E1 macro-benchmark: cost of simulating the Information Update Protocol
//! over a whole cluster — bounds how large an experiment the harness can
//! afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use integrade_core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade_simnet::time::SimTime;
use std::hint::black_box;

fn run_grid(nodes: usize, sim_minutes: u64) -> u64 {
    let config = GridConfig {
        gupa_warmup_days: 0,
        ..Default::default()
    };
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    grid.run_until(SimTime::from_secs(sim_minutes * 60));
    grid.report().net.messages
}

fn bench_update_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_update_protocol_10min");
    group.sample_size(10);
    for &nodes in &[10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(run_grid(n, 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_protocol);
criterion_main!(benches);
