//! E7 micro-benchmarks: BSP superstep throughput and checkpoint/restore
//! cost as a function of application state size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use integrade_bsp::apps::Stencil1d;
use integrade_bsp::checkpoint::{checkpoint, restore};
use integrade_bsp::runtime::BspRuntime;
use std::hint::black_box;

fn job(cells: usize, procs: usize) -> BspRuntime<Stencil1d> {
    let initial: Vec<f64> = (0..cells).map(|i| (i % 10) as f64).collect();
    BspRuntime::new(Stencil1d::partition(
        &initial,
        procs,
        u64::MAX / 2,
        0.0,
        1.0,
    ))
}

fn bench_superstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_superstep");
    for &cells in &[64usize, 1024, 8192] {
        let mut rt = job(cells, 8);
        group.bench_with_input(BenchmarkId::from_parameter(cells), &cells, |b, _| {
            b.iter(|| {
                rt.step();
                black_box(rt.superstep())
            })
        });
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_checkpoint");
    for &cells in &[64usize, 1024, 8192] {
        let mut rt = job(cells, 8);
        for _ in 0..3 {
            rt.step();
        }
        group.bench_with_input(BenchmarkId::new("take", cells), &cells, |b, _| {
            b.iter(|| checkpoint(black_box(&rt)))
        });
        let snap = checkpoint(&rt);
        group.bench_with_input(BenchmarkId::new("restore", cells), &cells, |b, _| {
            b.iter(|| restore::<Stencil1d>(black_box(&snap)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_superstep, bench_checkpoint);
criterion_main!(benches);
