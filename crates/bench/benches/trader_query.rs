//! E10: trader query cost vs offer count — the GRM consults the trader on
//! every scheduling pass, so its scaling bounds cluster size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use integrade_orb::any::AnyValue;
use integrade_orb::ior::{Endpoint, Ior, ObjectKey};
use integrade_orb::trading::Trader;
use std::collections::BTreeMap;
use std::hint::black_box;

fn trader_with(offers: usize) -> Trader {
    let mut trader = Trader::new(7);
    for i in 0..offers {
        let properties: BTreeMap<String, AnyValue> = [
            (
                "cpu_mips".to_owned(),
                AnyValue::Long(300 + (i as i64 * 13) % 1700),
            ),
            (
                "free_ram_mb".to_owned(),
                AnyValue::Long((i as i64 * 7) % 512),
            ),
            ("exporting".to_owned(), AnyValue::Bool(i % 5 != 0)),
        ]
        .into_iter()
        .collect();
        trader
            .export(
                "integrade::node",
                &Ior::new(
                    "IDL:integrade/Lrm:1.0",
                    Endpoint::new(i as u32, 0),
                    ObjectKey::new(format!("lrm{i}")),
                ),
                properties,
            )
            .unwrap();
    }
    trader
}

const PAPER_CONSTRAINT: &str = "exporting == true and cpu_mips >= 500 and free_ram_mb >= 16";

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("trader_query");
    for &offers in &[100usize, 1000, 5000] {
        // Warm path: plan compiled once, every iteration hits the plan
        // cache and the secondary indexes. This is the GRM steady state.
        let mut trader = trader_with(offers);
        group.bench_with_input(
            BenchmarkId::new("paper_constraint", offers),
            &offers,
            |b, _| {
                b.iter(|| {
                    trader
                        .query(
                            "integrade::node",
                            black_box(PAPER_CONSTRAINT),
                            "max cpu_mips",
                            64,
                        )
                        .unwrap()
                })
            },
        );

        // Cold path: drop the plan cache before every query so each
        // iteration pays parse + compile + prefilter extraction.
        let mut trader = trader_with(offers);
        group.bench_with_input(BenchmarkId::new("cold_plan", offers), &offers, |b, _| {
            b.iter(|| {
                trader.clear_plan_cache();
                trader
                    .query(
                        "integrade::node",
                        black_box(PAPER_CONSTRAINT),
                        "max cpu_mips",
                        64,
                    )
                    .unwrap()
            })
        });

        // Scan path: cached plan but secondary indexes disabled, so the
        // whole service-type bucket is evaluated. Isolates the index win
        // from the plan-cache win.
        let mut trader = trader_with(offers);
        trader.set_use_indexes(false);
        group.bench_with_input(BenchmarkId::new("bucket_scan", offers), &offers, |b, _| {
            b.iter(|| {
                trader
                    .query(
                        "integrade::node",
                        black_box(PAPER_CONSTRAINT),
                        "max cpu_mips",
                        64,
                    )
                    .unwrap()
            })
        });

        // Seed baseline: the original linear-scan implementation kept as
        // `query_reference` — re-parses and sorts every call.
        let mut trader = trader_with(offers);
        group.bench_with_input(
            BenchmarkId::new("seed_reference", offers),
            &offers,
            |b, _| {
                b.iter(|| {
                    trader
                        .query_reference(
                            "integrade::node",
                            black_box(PAPER_CONSTRAINT),
                            "max cpu_mips",
                            64,
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_constraint_parse(c: &mut Criterion) {
    c.bench_function("constraint_parse_paper_example", |b| {
        b.iter(|| {
            integrade_orb::constraint::parse(black_box(
                "exporting == true and cpu_mips >= 500 and free_ram_mb >= 16",
            ))
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_query, bench_constraint_parse);
criterion_main!(benches);
