//! Micro-benchmarks for the sharded engine's frame-boundary merge path:
//! the occupancy rebalance that cuts the id space, the GUPA partial-digest
//! work a shard performs for its nodes (history append + retrain at the
//! training threshold) plus the count fold, and the full frame including
//! the effect-outbox merge, measured through a small sharded grid.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use integrade_core::grid::{occupancy_ranges, GridBuilder, GridConfig, NodeSetup};
use integrade_core::gupa::{GupaState, MIN_TRAINING_DAYS};
use integrade_core::types::NodeId;
use integrade_simnet::time::SimTime;
use integrade_usage::patterns::LupaConfig;
use integrade_usage::sample::{DayPeriod, SamplingConfig, UsageSample, Weekday};
use std::hint::black_box;

/// One synthetic office-shaped day period.
fn day(day_number: u64) -> DayPeriod {
    let cfg = SamplingConfig::default();
    DayPeriod {
        day: day_number,
        weekday: Weekday::from_day_number(day_number),
        samples: (0..cfg.slots_per_day())
            .map(|slot| {
                let hour = slot as f64 * 24.0 / cfg.slots_per_day() as f64;
                let v = if (9.0..18.0).contains(&hour) {
                    0.85
                } else {
                    0.02
                };
                UsageSample::new(v, v * 0.5, 0.0, 0.0)
            })
            .collect(),
    }
}

/// A GUPA whose every cell sits one day short of the training threshold —
/// the worst case for the next digest, which must append *and* retrain.
fn primed_gupa(nodes: usize) -> GupaState {
    let mut gupa = GupaState::new(LupaConfig::default());
    let history: Vec<DayPeriod> = (0..MIN_TRAINING_DAYS as u64 - 1).map(day).collect();
    for node in 0..nodes {
        gupa.upload(NodeId(node as u32), history.clone());
    }
    gupa
}

/// The shard-side half of a frame's GUPA work: digest one fresh upload per
/// node into the cell slice (every one crosses the training threshold, so
/// every one retrains), then fold the partial count back — exactly what
/// one worker contributes to the frame-boundary merge.
fn bench_gupa_partial_digest(c: &mut Criterion) {
    let fresh = day(MIN_TRAINING_DAYS as u64);
    let mut group = c.benchmark_group("gupa_partial_digest_merge");
    group.sample_size(10);
    for &nodes in &[16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter_batched(
                || primed_gupa(n),
                |mut gupa| {
                    let config = gupa.config();
                    let mut digested = 0u64;
                    let cells = gupa.cells_mut(n);
                    for cell in cells.iter_mut() {
                        if cell.digest(config, vec![fresh.clone()]) {
                            digested += 1;
                        }
                    }
                    gupa.add_uploads(digested);
                    black_box(gupa.uploads())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// The frame-boundary rebalance alone: cutting a 50k-node id space into
/// occupancy-balanced shard ranges from a 2.5k-member active set.
fn bench_occupancy_rebalance(c: &mut Criterion) {
    let n = 50_000;
    let members: Vec<usize> = (0..n).step_by(20).collect();
    let mut group = c.benchmark_group("occupancy_rebalance_50k");
    for &workers in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(occupancy_ranges(n, w, &members)))
        });
    }
    group.finish();
}

/// The whole frame including the effect-outbox merge: a small population
/// with traced owners advanced ten virtual minutes (two sharded frames per
/// iteration), so spawn + walk + merge + apply all land in the measurement.
fn bench_sharded_frame(c: &mut Criterion) {
    fn run(workers: usize) -> u64 {
        let config = GridConfig::builder()
            .gupa_warmup_days(0)
            .lupa_noise(0.05)
            .workers(workers)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..500).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        grid.run_until(SimTime::from_secs(600));
        grid.report().net.messages
    }
    let mut group = c.benchmark_group("sharded_frame_with_outbox_merge_500n");
    group.sample_size(10);
    for &workers in &[1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| black_box(run(w)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gupa_partial_digest,
    bench_occupancy_rebalance,
    bench_sharded_frame
);
criterion_main!(benches);
