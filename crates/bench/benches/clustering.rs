//! E3 micro-benchmarks: clustering and training costs of the LUPA pipeline.
//! These bound how often a node can afford to retrain its pattern model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use integrade_simnet::rng::DetRng;
use integrade_usage::kmeans::{fit, KMeansConfig};
use integrade_usage::patterns::{LupaConfig, LupaModel};
use integrade_usage::sample::{DayPeriod, SampleWindow, SamplingConfig};
use integrade_workload::desktop::{generate_trace, Archetype, TraceConfig};
use std::hint::black_box;

fn day_curves(days: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = DetRng::new(seed);
    let weeks = days.div_ceil(7);
    let trace = generate_trace(
        Archetype::OfficeWorker,
        &TraceConfig {
            weeks,
            ..Default::default()
        },
        &mut rng,
    );
    let mut window = SampleWindow::new(SamplingConfig::default());
    for &s in &trace {
        window.push(s);
    }
    window
        .take_completed()
        .into_iter()
        .take(days)
        .map(|p| integrade_usage::series::resample(&p.load_curve(), 96))
        .collect()
}

fn periods(days: usize, seed: u64) -> Vec<DayPeriod> {
    let mut rng = DetRng::new(seed);
    let weeks = days.div_ceil(7);
    let trace = generate_trace(
        Archetype::OfficeWorker,
        &TraceConfig {
            weeks,
            ..Default::default()
        },
        &mut rng,
    );
    let mut window = SampleWindow::new(SamplingConfig::default());
    for &s in &trace {
        window.push(s);
    }
    window.take_completed().into_iter().take(days).collect()
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_fit_k3");
    for &days in &[28usize, 90] {
        let data = day_curves(days, 5);
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, _| {
            b.iter(|| fit(black_box(&data), KMeansConfig::new(3, 11)))
        });
    }
    group.finish();
}

fn bench_lupa_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("lupa_train");
    group.sample_size(20);
    for &days in &[28usize, 56] {
        let data = periods(days, 9);
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, _| {
            b.iter(|| LupaModel::train(black_box(&data), LupaConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmeans, bench_lupa_train);
criterion_main!(benches);
