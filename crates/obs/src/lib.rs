//! Grid-wide observability for the InteGrade reproduction: a metrics
//! registry with pre-resolved handles, causal trace spans keyed on protocol
//! request ids, and feature-gated hot-loop profiling timers.
//!
//! The paper's ASCT must "monitor application progress" and the LRMs
//! continuously report node state; once the grid grew retransmissions,
//! replica placement and active-set ticking, the stringly event log stopped
//! being a debugging substrate. This crate is the replacement:
//!
//! * [`metrics`] — counters/gauges/histograms registered once and updated
//!   through `Rc<Cell>` handles (the hot path never hashes a string), with
//!   JSON and Prometheus-text export from a detached snapshot.
//! * [`span`] — causal spans reusing the grid-unique RPC `request_id`s, so
//!   tracing allocates no new identifiers and cannot perturb determinism;
//!   one call reconstructs the negotiation→launch→checkpoint→recovery tree
//!   of any part under any chaos seed.
//! * [`profile`] — per-phase wall-time attribution that compiles to
//!   zero-sized no-ops unless built with `--features profile`.
//!
//! Everything here is **passive**: no RNG draws, no new event scheduling,
//! no change to message ordering. The simulator behaves bit-for-bit
//! identically with observability on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use profile::{Phase, ProfileReport, Profiler};
pub use span::{Span, SpanKind, SpanOutcome, SpanRecorder, SpanTree};
