//! Causal trace spans keyed on the grid's protocol-level request ids.
//!
//! Every tracked RPC (Reserve, Launch, CancelPart, checkpoint Store, replica
//! Fetch, re-replication Fetch) already carries a grid-unique `request_id`;
//! the recorder reuses that id as the span id so tracing allocates **no new
//! identifiers** and therefore cannot perturb the deterministic RNG streams.
//! Synthetic events with no wire request (a node crash, the decision to
//! begin recovery) draw ids from a separate counter offset into the high
//! half of the id space so they can never collide with protocol ids.
//!
//! Causality is parent chaining: the recorder keeps, per `(job, part)`, the
//! id of the last span it opened; a new span for the same part records that
//! id as its parent. Because sim time is monotonic and spans are appended as
//! they open, insertion order **is** causal order — [`SpanRecorder::part_spans`]
//! returns the full negotiation→launch→checkpoint→crash→recovery history of
//! a part as a ready-ordered slice, and [`SpanRecorder::tree`] re-roots it as
//! a parent/child tree.

use std::fmt;

/// Synthetic (non-RPC) span ids live above this bit so they can never
/// collide with protocol request ids.
const SYNTHETIC_BASE: u64 = 1 << 62;

/// What a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A Reserve RPC to a candidate LRM.
    Reserve,
    /// A Launch RPC carrying the part to an LRM.
    Launch,
    /// A CancelPart RPC rolling back a reservation.
    CancelPart,
    /// A checkpoint Store RPC to one replica holder.
    StoreCkpt,
    /// A recovery Fetch RPC to a replica holder.
    FetchCkpt,
    /// A background re-replication Fetch relay.
    RereplFetch,
    /// Synthetic: the executor's node crashed while running the part.
    Crash,
    /// Synthetic: the GRM put the part into recovery.
    Recovery,
}

impl SpanKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Reserve => "reserve",
            SpanKind::Launch => "launch",
            SpanKind::CancelPart => "cancel_part",
            SpanKind::StoreCkpt => "store_ckpt",
            SpanKind::FetchCkpt => "fetch_ckpt",
            SpanKind::RereplFetch => "rerepl_fetch",
            SpanKind::Crash => "crash",
            SpanKind::Recovery => "recovery",
        }
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanOutcome {
    /// Still open (no reply yet, or the run ended first).
    Open,
    /// The request succeeded (granted / launched / acked / fetched).
    Ok,
    /// The peer answered with a refusal (reservation refused, stale
    /// version, digest mismatch nack...).
    Refused,
    /// Retransmissions exhausted without a reply.
    TimedOut,
    /// Synthetic events complete instantly.
    Event,
}

impl SpanOutcome {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Open => "open",
            SpanOutcome::Ok => "ok",
            SpanOutcome::Refused => "refused",
            SpanOutcome::TimedOut => "timed_out",
            SpanOutcome::Event => "event",
        }
    }
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span id — the protocol `request_id` for RPC spans, a synthetic
    /// high-half id for events.
    pub id: u64,
    /// Causal parent span id, or 0 for a root.
    pub parent: u64,
    /// What this span describes.
    pub kind: SpanKind,
    /// Job id the span belongs to.
    pub job: u64,
    /// Part index within the job.
    pub part: u32,
    /// The remote node (LRM host id) the request targeted, or the crashed
    /// node for synthetic events.
    pub node: u64,
    /// Sim time the span opened, microseconds.
    pub start_us: u64,
    /// Sim time the span closed, microseconds (equals `start_us` while
    /// open and for instantaneous synthetic events).
    pub end_us: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Wire-level send attempts (1 = no retransmit); 0 for synthetic
    /// events.
    pub attempts: u32,
}

impl Span {
    /// Span duration in sim microseconds (0 while open).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A node in the reconstructed causal tree.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The span at this node.
    pub span: Span,
    /// Children in causal (insertion) order.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Depth-first flatten (pre-order), for assertions and rendering.
    pub fn flatten(&self) -> Vec<&Span> {
        let mut out = Vec::new();
        self.walk(&mut out);
        out
    }

    fn walk<'a>(&'a self, out: &mut Vec<&'a Span>) {
        out.push(&self.span);
        for child in &self.children {
            child.walk(out);
        }
    }

    /// Renders the tree as an indented text outline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let s = &self.span;
        let _ = writeln!(
            out,
            "{:indent$}{} job={} part={} node={} [{}..{}us] {} x{}",
            "",
            s.kind,
            s.job,
            s.part,
            s.node,
            s.start_us,
            s.end_us,
            s.outcome.name(),
            s.attempts,
            indent = depth * 2
        );
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// The span store. Appended to as requests go out, finished as replies
/// arrive (or retransmissions exhaust), queried after the run.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    enabled: bool,
    spans: Vec<Span>,
    /// Per-(job, part) id of the most recent span — the causal parent for
    /// the next span of that part.
    last: std::collections::BTreeMap<(u64, u32), u64>,
    next_synthetic: u64,
}

impl SpanRecorder {
    /// An enabled, empty recorder.
    pub fn new() -> Self {
        SpanRecorder {
            enabled: true,
            ..Default::default()
        }
    }

    /// Turns recording on or off. Disabling does not drop already-recorded
    /// spans; it stops new ones from being opened.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether new spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens an RPC span under the protocol request id `id`. The previous
    /// span of the same `(job, part)` becomes the parent.
    pub fn start_rpc(
        &mut self,
        id: u64,
        kind: SpanKind,
        job: u64,
        part: u32,
        node: u64,
        now_us: u64,
    ) {
        if !self.enabled {
            return;
        }
        let parent = self.last.get(&(job, part)).copied().unwrap_or(0);
        self.last.insert((job, part), id);
        self.spans.push(Span {
            id,
            parent,
            kind,
            job,
            part,
            node,
            start_us: now_us,
            end_us: now_us,
            outcome: SpanOutcome::Open,
            attempts: 1,
        });
    }

    /// Records a retransmission of the request behind span `id`.
    pub fn add_attempt(&mut self, id: u64) {
        if let Some(span) = self.find_open_mut(id) {
            span.attempts += 1;
        }
    }

    /// Closes span `id` with `outcome` at `now_us`. Unknown or already
    /// closed ids are ignored (the recorder may have been disabled when the
    /// request went out).
    pub fn finish(&mut self, id: u64, outcome: SpanOutcome, now_us: u64) {
        if let Some(span) = self.find_open_mut(id) {
            span.end_us = now_us;
            span.outcome = outcome;
        }
    }

    /// Records an instantaneous synthetic event (crash, recovery start) in
    /// the part's causal chain. Returns the synthetic span id.
    pub fn event(&mut self, kind: SpanKind, job: u64, part: u32, node: u64, now_us: u64) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.next_synthetic += 1;
        let id = SYNTHETIC_BASE | self.next_synthetic;
        let parent = self.last.get(&(job, part)).copied().unwrap_or(0);
        self.last.insert((job, part), id);
        self.spans.push(Span {
            id,
            parent,
            kind,
            job,
            part,
            node,
            start_us: now_us,
            end_us: now_us,
            outcome: SpanOutcome::Event,
            attempts: 0,
        });
        id
    }

    fn find_open_mut(&mut self, id: u64) -> Option<&mut Span> {
        // Replies come soon after requests; scan from the tail.
        self.spans
            .iter_mut()
            .rev()
            .find(|s| s.id == id && s.outcome == SpanOutcome::Open)
    }

    /// Every recorded span, in causal (insertion) order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The full causal history of one part, in order. Sim time is
    /// monotonic and spans append as they open, so this slice **is** the
    /// causal order — reserve before launch before checkpoint stores before
    /// crash before recovery fetches before relaunch.
    pub fn part_spans(&self, job: u64, part: u32) -> Vec<&Span> {
        self.spans
            .iter()
            .filter(|s| s.job == job && s.part == part)
            .collect()
    }

    /// Reconstructs the causal tree(s) for one part. Usually a single root
    /// (the first Reserve); parts whose chain was broken by a disabled
    /// interval may yield several roots.
    pub fn tree(&self, job: u64, part: u32) -> Vec<SpanTree> {
        let spans = self.part_spans(job, part);
        build_forest(&spans)
    }
}

fn build_forest(spans: &[&Span]) -> Vec<SpanTree> {
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
    let mut roots = Vec::new();
    // Recursive descent over a small per-part span list.
    fn children_of(spans: &[&Span], parent: u64) -> Vec<SpanTree> {
        spans
            .iter()
            .filter(|s| s.parent == parent)
            .map(|s| SpanTree {
                span: (*s).clone(),
                children: children_of(spans, s.id),
            })
            .collect()
    }
    for s in spans {
        if s.parent == 0 || !ids.contains(&s.parent) {
            roots.push(SpanTree {
                span: (*s).clone(),
                children: children_of(spans, s.id),
            });
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_parents_per_part() {
        let mut r = SpanRecorder::new();
        r.start_rpc(10, SpanKind::Reserve, 1, 0, 7, 100);
        r.finish(10, SpanOutcome::Ok, 150);
        r.start_rpc(11, SpanKind::Launch, 1, 0, 7, 160);
        r.start_rpc(20, SpanKind::Reserve, 1, 1, 8, 100);
        let part0 = r.part_spans(1, 0);
        assert_eq!(part0.len(), 2);
        assert_eq!(part0[0].parent, 0);
        assert_eq!(part0[1].parent, 10);
        assert_eq!(r.part_spans(1, 1)[0].parent, 0, "parts chain independently");
    }

    #[test]
    fn finish_and_attempts_update_the_open_span() {
        let mut r = SpanRecorder::new();
        r.start_rpc(5, SpanKind::StoreCkpt, 2, 0, 3, 1_000);
        r.add_attempt(5);
        r.add_attempt(5);
        r.finish(5, SpanOutcome::Ok, 2_500);
        let s = &r.spans()[0];
        assert_eq!(s.attempts, 3);
        assert_eq!(s.outcome, SpanOutcome::Ok);
        assert_eq!(s.duration_us(), 1_500);
        // A second finish is a no-op.
        r.finish(5, SpanOutcome::TimedOut, 9_999);
        assert_eq!(r.spans()[0].outcome, SpanOutcome::Ok);
    }

    #[test]
    fn synthetic_ids_cannot_collide_with_rpc_ids() {
        let mut r = SpanRecorder::new();
        r.start_rpc(1, SpanKind::Reserve, 1, 0, 7, 0);
        let crash = r.event(SpanKind::Crash, 1, 0, 7, 50);
        assert!(crash >= SYNTHETIC_BASE);
        r.start_rpc(2, SpanKind::FetchCkpt, 1, 0, 9, 60);
        let spans = r.part_spans(1, 0);
        assert_eq!(spans[1].parent, 1, "crash chains under the reserve");
        assert_eq!(spans[2].parent, crash, "fetch chains under the crash");
    }

    #[test]
    fn tree_reconstructs_causal_nesting() {
        let mut r = SpanRecorder::new();
        r.start_rpc(1, SpanKind::Reserve, 1, 0, 7, 0);
        r.finish(1, SpanOutcome::Ok, 10);
        r.start_rpc(2, SpanKind::Launch, 1, 0, 7, 20);
        r.finish(2, SpanOutcome::Ok, 30);
        r.start_rpc(3, SpanKind::StoreCkpt, 1, 0, 4, 40);
        r.finish(3, SpanOutcome::Ok, 50);
        let trees = r.tree(1, 0);
        assert_eq!(trees.len(), 1, "single root");
        let flat = trees[0].flatten();
        let kinds: Vec<SpanKind> = flat.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![SpanKind::Reserve, SpanKind::Launch, SpanKind::StoreCkpt]
        );
        assert!(trees[0].render().contains("reserve job=1 part=0"));
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = SpanRecorder::new();
        r.set_enabled(false);
        r.start_rpc(1, SpanKind::Reserve, 1, 0, 7, 0);
        assert_eq!(r.event(SpanKind::Crash, 1, 0, 7, 5), 0);
        assert!(r.is_empty());
    }
}
