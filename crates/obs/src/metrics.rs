//! The metrics registry: cheap labeled counters, gauges and fixed-bucket
//! histograms behind pre-resolved handles.
//!
//! Instruments are registered **once** (a name lookup, an allocation) and
//! then updated through handles that are plain `Rc<Cell>` pointers — the hot
//! path never hashes a string, never takes a `RefCell` borrow, never
//! allocates. A disabled registry turns every update into a single
//! `Cell<bool>` load, so benchmark harnesses can measure the instrumented
//! and uninstrumented configurations of the *same* binary.
//!
//! The whole workspace is single-threaded by construction (the simulator is
//! a deterministic event loop built on `Rc`/`RefCell`), so the registry uses
//! the same idiom rather than atomics.
//!
//! # Examples
//!
//! ```
//! use integrade_obs::metrics::Registry;
//!
//! let registry = Registry::new();
//! let retransmits = registry.counter("grid_retransmits_total");
//! retransmits.inc();
//! retransmits.add(2);
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("grid_retransmits_total"), Some(3));
//! assert!(snap.to_prometheus().contains("grid_retransmits_total 3"));
//! ```

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::rc::Rc;

/// A label set: `(key, value)` pairs attached to an instrument.
pub type Labels = Vec<(String, String)>;

#[derive(Debug)]
struct CounterEntry {
    name: String,
    labels: Labels,
    value: Rc<Cell<u64>>,
}

#[derive(Debug)]
struct GaugeEntry {
    name: String,
    labels: Labels,
    value: Rc<Cell<f64>>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Upper bounds of the finite buckets, ascending. An implicit `+inf`
    /// bucket follows.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<Cell<u64>>,
    sum: Cell<f64>,
    count: Cell<u64>,
}

#[derive(Debug)]
struct HistogramEntry {
    name: String,
    labels: Labels,
    core: Rc<HistogramCore>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RefCell<Vec<CounterEntry>>,
    gauges: RefCell<Vec<GaugeEntry>>,
    histograms: RefCell<Vec<HistogramEntry>>,
}

/// The instrument registry. Cloning shares the underlying store — the grid
/// keeps one clone, each snapshot consumer another.
#[derive(Clone)]
pub struct Registry {
    enabled: Rc<Cell<bool>>,
    inner: Rc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled.get())
            .field("counters", &self.inner.counters.borrow().len())
            .field("gauges", &self.inner.gauges.borrow().len())
            .field("histograms", &self.inner.histograms.borrow().len())
            .finish()
    }
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: Rc::new(Cell::new(true)),
            inner: Rc::new(RegistryInner::default()),
        }
    }

    /// Turns every instrument on or off at once. Handles stay valid; a
    /// disabled update is a single boolean load.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.set(enabled);
    }

    /// Whether updates are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.get()
    }

    /// Registers (or re-resolves) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Registers (or re-resolves) a labeled counter. Registering the same
    /// `(name, labels)` twice returns a handle to the same cell.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = own_labels(labels);
        let mut counters = self.inner.counters.borrow_mut();
        let value = match counters
            .iter()
            .find(|c| c.name == name && c.labels == labels)
        {
            Some(existing) => existing.value.clone(),
            None => {
                let value = Rc::new(Cell::new(0));
                counters.push(CounterEntry {
                    name: name.to_owned(),
                    labels,
                    value: value.clone(),
                });
                value
            }
        };
        Counter {
            enabled: self.enabled.clone(),
            value,
        }
    }

    /// Registers (or re-resolves) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Registers (or re-resolves) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = own_labels(labels);
        let mut gauges = self.inner.gauges.borrow_mut();
        let value = match gauges.iter().find(|g| g.name == name && g.labels == labels) {
            Some(existing) => existing.value.clone(),
            None => {
                let value = Rc::new(Cell::new(0.0));
                gauges.push(GaugeEntry {
                    name: name.to_owned(),
                    labels,
                    value: value.clone(),
                });
                value
            }
        };
        Gauge {
            enabled: self.enabled.clone(),
            value,
        }
    }

    /// Registers (or re-resolves) a fixed-bucket histogram. `bounds` are the
    /// ascending upper bounds of the finite buckets; an implicit `+inf`
    /// bucket is appended.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram {name} needs buckets");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name} bounds must ascend"
        );
        let labels: Labels = Vec::new();
        let mut histograms = self.inner.histograms.borrow_mut();
        let core = match histograms
            .iter()
            .find(|h| h.name == name && h.labels == labels)
        {
            Some(existing) => existing.core.clone(),
            None => {
                let core = Rc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| Cell::new(0)).collect(),
                    sum: Cell::new(0.0),
                    count: Cell::new(0),
                });
                histograms.push(HistogramEntry {
                    name: name.to_owned(),
                    labels,
                    core: core.clone(),
                });
                core
            }
        };
        Histogram {
            enabled: self.enabled.clone(),
            core,
        }
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .borrow()
                .iter()
                .map(|c| CounterSample {
                    name: c.name.clone(),
                    labels: c.labels.clone(),
                    value: c.value.get(),
                })
                .collect(),
            gauges: self
                .inner
                .gauges
                .borrow()
                .iter()
                .map(|g| GaugeSample {
                    name: g.name.clone(),
                    labels: g.labels.clone(),
                    value: g.value.get(),
                })
                .collect(),
            histograms: self
                .inner
                .histograms
                .borrow()
                .iter()
                .map(|h| HistogramSample {
                    name: h.name.clone(),
                    labels: h.labels.clone(),
                    bounds: h.core.bounds.clone(),
                    counts: h.core.counts.iter().map(Cell::get).collect(),
                    sum: h.core.sum.get(),
                    count: h.core.count.get(),
                })
                .collect(),
        }
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

/// A pre-resolved counter handle: `inc`/`add` are two `Cell` operations.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Rc<Cell<bool>>,
    value: Rc<Cell<u64>>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.get() {
            self.value.set(self.value.get().wrapping_add(n));
        }
    }

    /// Overwrites the running total — for mirroring a component-internal
    /// cumulative counter (e.g. [`NetStats`-style] structs) into the
    /// registry at sync points. Not affected by the enable flag: mirrors
    /// reflect state that was accumulated regardless.
    ///
    /// [`NetStats`-style]: Counter::set_total
    #[inline]
    pub fn set_total(&self, total: u64) {
        self.value.set(total);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }
}

/// A pre-resolved gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Rc<Cell<bool>>,
    value: Rc<Cell<f64>>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.get() {
            self.value.set(v);
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.value.get()
    }
}

/// A pre-resolved histogram handle. `observe` is a short linear scan over
/// the fixed bounds (registries use ≤ 16 buckets) plus three `Cell` writes.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Rc<Cell<bool>>,
    core: Rc<HistogramCore>,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        if !self.enabled.get() {
            return;
        }
        let core = &self.core;
        let mut index = core.bounds.len();
        for (i, bound) in core.bounds.iter().enumerate() {
            if v <= *bound {
                index = i;
                break;
            }
        }
        let cell = &core.counts[index];
        cell.set(cell.get() + 1);
        core.sum.set(core.sum.get() + v);
        core.count.set(core.count.get() + 1);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.core.count.get()
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> f64 {
        self.core.sum.get()
    }
}

/// One counter's sampled state.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Instrument name.
    pub name: String,
    /// Label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: u64,
}

/// One gauge's sampled state.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Instrument name.
    pub name: String,
    /// Label set.
    pub labels: Labels,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram's sampled state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Instrument name.
    pub name: String,
    /// Label set.
    pub labels: Labels,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one extra trailing slot for `+inf`.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Count of observations.
    pub count: u64,
}

impl HistogramSample {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A point-in-time copy of a [`Registry`], detached from the live cells —
/// safe to keep, diff, or export after the run moves on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters.
    pub counters: Vec<CounterSample>,
    /// All gauges.
    pub gauges: Vec<GaugeSample>,
    /// All histograms.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The value of the unlabeled counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels.is_empty())
            .map(|c| c.value)
    }

    /// The sum of `name` across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The value of the unlabeled gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.is_empty())
            .map(|g| g.value)
    }

    /// The histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as JSON (hand-rolled: the workspace builds
    /// offline against stand-in crates, so there is no serde_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&c.name),
                labels_json(&c.labels),
                c.value
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, g) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"labels\": {}, \"value\": {}}}",
                escape(&g.name),
                labels_json(&g.labels),
                json_f64(g.value)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let bounds: Vec<String> = h.bounds.iter().map(|b| json_f64(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"labels\": {}, \"bounds\": [{}], \
                 \"counts\": [{}], \"sum\": {}, \"count\": {}}}",
                escape(&h.name),
                labels_json(&h.labels),
                bounds.join(", "),
                counts.join(", "),
                json_f64(h.sum),
                h.count
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            let _ = writeln!(out, "{}{} {}", c.name, prom_labels(&c.labels), c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(
                out,
                "{}{} {}",
                g.name,
                prom_labels(&g.labels),
                json_f64(g.value)
            );
        }
        for h in &self.histograms {
            let mut cumulative = 0u64;
            for (i, count) in h.counts.iter().enumerate() {
                cumulative += count;
                let le = match h.bounds.get(i) {
                    Some(b) => json_f64(*b),
                    None => "+Inf".to_owned(),
                };
                let mut labels = h.labels.clone();
                labels.push(("le".to_owned(), le));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    h.name,
                    prom_labels(&labels),
                    cumulative
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                h.name,
                prom_labels(&h.labels),
                json_f64(h.sum)
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                h.name,
                prom_labels(&h.labels),
                h.count
            );
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn labels_json(labels: &Labels) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", escape(k), escape(v));
    }
    out.push('}');
    out
}

fn prom_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(v));
    }
    out.push('}');
    out
}

/// Formats a float the way JSON expects (no trailing `.0` surprises for
/// integral values beyond keeping them parseable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        // JSON has no inf/nan; clamp to null-ish sentinel strings would
        // break parsers, so emit a large sentinel instead.
        "1e308".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = Registry::new();
        let c = r.counter("a_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.snapshot().counter("a_total"), Some(5));
    }

    #[test]
    fn re_registering_returns_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("same");
        let b = r.counter("same");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn labels_distinguish_series() {
        let r = Registry::new();
        let a = r.counter_with("reqs", &[("op", "reserve")]);
        let b = r.counter_with("reqs", &[("op", "launch")]);
        a.add(2);
        b.add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter_total("reqs"), 5);
        assert_eq!(snap.counter("reqs"), None, "no unlabeled series");
    }

    #[test]
    fn disabled_registry_drops_updates_but_keeps_mirrors() {
        let r = Registry::new();
        let c = r.counter("c");
        let g = r.gauge("g");
        let h = r.histogram("h", &[1.0]);
        r.set_enabled(false);
        c.inc();
        g.set(9.0);
        h.observe(0.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        c.set_total(42);
        assert_eq!(c.get(), 42, "mirror sync ignores the enable flag");
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 43);
    }

    #[test]
    fn histogram_buckets_observations() {
        let r = Registry::new();
        let h = r.histogram("lat", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.7, 5.0, 100.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let sample = snap.histogram("lat").unwrap();
        assert_eq!(sample.counts, vec![1, 2, 1, 1]);
        assert_eq!(sample.count, 5);
        assert!((sample.sum - 106.25).abs() < 1e-9);
        assert!((sample.mean() - 21.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn histogram_rejects_unsorted_bounds() {
        Registry::new().histogram("bad", &[2.0, 1.0]);
    }

    #[test]
    fn json_and_prometheus_render() {
        let r = Registry::new();
        r.counter("c_total").add(7);
        r.gauge("g").set(1.5);
        let h = r.histogram("h", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(3.0);
        let snap = r.snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"name\": \"c_total\""));
        assert!(json.contains("\"value\": 7"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let prom = snap.to_prometheus();
        assert!(prom.contains("c_total 7"));
        assert!(prom.contains("g 1.5"));
        assert!(prom.contains("h_bucket{le=\"1.0\"} 1"));
        assert!(prom.contains("h_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("h_count 2"));
    }

    #[test]
    fn labeled_counter_renders_prometheus_labels() {
        let r = Registry::new();
        r.counter_with("reqs", &[("op", "reserve")]).add(2);
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains("reqs{op=\"reserve\"} 2"), "{prom}");
    }
}
