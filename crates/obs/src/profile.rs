//! Hot-loop profiling timers that compile to no-ops when disabled.
//!
//! The simulator is deterministic; wall-clock reads must never influence
//! its behavior, only *observe* it. With the `profile` cargo feature off
//! (the default) every timer here is a zero-sized guard whose construction
//! and drop are empty inline functions — the hot loop pays literally
//! nothing, not even a branch. With `--features profile` each phase guard
//! reads `std::time::Instant` on entry and accumulates elapsed wall time
//! per [`Phase`] on drop.
//!
//! ```
//! use integrade_obs::profile::{Phase, Profiler};
//!
//! let profiler = Profiler::new();
//! {
//!     let _guard = profiler.enter(Phase::SlotWalk);
//!     // ... the timed work ...
//! }
//! let report = profiler.report();
//! assert_eq!(report.phases.len(), Phase::ALL.len());
//! ```

use std::rc::Rc;

/// The hot-loop phases the simulator attributes wall time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The per-tick walk over engaged nodes.
    SlotWalk,
    /// Lazy catch-up replay of parked idle nodes.
    CatchUpReplay,
    /// Event-queue pop (wheel advance, heap refill, due-list ops).
    QueuePop,
    /// World event dispatch (everything a popped event triggers).
    Dispatch,
    /// GIOP/CDR request encoding into pooled buffers.
    GiopEncode,
    /// GIOP/CDR decode of incoming wire frames.
    GiopDecode,
    /// Sharded mode: the parallel per-shard node walk (local compute).
    ShardWalk,
    /// Sharded mode: the frame-boundary merge of per-shard outboxes —
    /// this is the serial stall the parallel walk pays for determinism.
    ShardMerge,
    /// GUPA upload digestion: appending completed day-periods to a node's
    /// history and (once enough history exists) retraining its LUPA model.
    /// In sharded mode the digestion runs on the shard workers and lands
    /// inside [`Phase::ShardWalk`]; this phase times the single-threaded
    /// digestion paths (eager walks, wire-triggered catch-up).
    GupaDigest,
    /// Sharded mode: computing the frame's occupancy-balanced shard ranges
    /// from the active set before the workers launch.
    ShardRebalance,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 10] = [
        Phase::SlotWalk,
        Phase::CatchUpReplay,
        Phase::QueuePop,
        Phase::Dispatch,
        Phase::GiopEncode,
        Phase::GiopDecode,
        Phase::ShardWalk,
        Phase::ShardMerge,
        Phase::GupaDigest,
        Phase::ShardRebalance,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SlotWalk => "slot_walk",
            Phase::CatchUpReplay => "catch_up_replay",
            Phase::QueuePop => "queue_pop",
            Phase::Dispatch => "dispatch",
            Phase::GiopEncode => "giop_encode",
            Phase::GiopDecode => "giop_decode",
            Phase::ShardWalk => "shard_walk",
            Phase::ShardMerge => "shard_merge",
            Phase::GupaDigest => "gupa_digest",
            Phase::ShardRebalance => "shard_rebalance",
        }
    }

    #[cfg_attr(not(feature = "profile"), allow(dead_code))]
    fn index(self) -> usize {
        match self {
            Phase::SlotWalk => 0,
            Phase::CatchUpReplay => 1,
            Phase::QueuePop => 2,
            Phase::Dispatch => 3,
            Phase::GiopEncode => 4,
            Phase::GiopDecode => 5,
            Phase::ShardWalk => 6,
            Phase::ShardMerge => 7,
            Phase::GupaDigest => 8,
            Phase::ShardRebalance => 9,
        }
    }
}

/// Accumulated wall time for one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseReport {
    /// Which phase.
    pub phase: Phase,
    /// Total wall nanoseconds attributed (always 0 without the `profile`
    /// feature).
    pub total_ns: u64,
    /// Number of guard enter/exit pairs (always 0 without `profile`).
    pub entries: u64,
}

/// A full profiler report, one row per [`Phase`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Whether the binary was built with the `profile` feature — when
    /// false every row is zero by construction.
    pub enabled: bool,
    /// Per-phase totals, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseReport>,
}

impl ProfileReport {
    /// Total nanoseconds for `phase`.
    pub fn total_ns(&self, phase: Phase) -> u64 {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map_or(0, |p| p.total_ns)
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.enabled {
            out.push_str("profiling disabled (build with --features profile)\n");
            return out;
        }
        for row in &self.phases {
            let _ = writeln!(
                out,
                "{:<16} {:>12} ns {:>10} entries",
                row.phase.name(),
                row.total_ns,
                row.entries
            );
        }
        out
    }
}

#[cfg(feature = "profile")]
mod imp {
    use super::Phase;
    use std::cell::Cell;
    use std::time::Instant;

    #[derive(Debug, Default)]
    pub struct ProfilerInner {
        totals_ns: [Cell<u64>; 10],
        entries: [Cell<u64>; 10],
    }

    impl ProfilerInner {
        pub fn add(&self, phase: Phase, ns: u64) {
            let i = phase.index();
            self.totals_ns[i].set(self.totals_ns[i].get() + ns);
            self.entries[i].set(self.entries[i].get() + 1);
        }

        pub fn total_ns(&self, phase: Phase) -> u64 {
            self.totals_ns[phase.index()].get()
        }

        pub fn entries(&self, phase: Phase) -> u64 {
            self.entries[phase.index()].get()
        }
    }

    /// A live timing guard: accumulates elapsed wall time on drop.
    #[must_use = "the guard times its scope; dropping it immediately times nothing"]
    pub struct PhaseGuard<'a> {
        pub(super) inner: &'a ProfilerInner,
        pub(super) phase: Phase,
        pub(super) started: Instant,
    }

    impl Drop for PhaseGuard<'_> {
        fn drop(&mut self) {
            let ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.inner.add(self.phase, ns);
        }
    }
}

#[cfg(not(feature = "profile"))]
mod imp {
    /// Zero-sized placeholder; construction and drop are empty.
    #[derive(Debug, Default)]
    pub struct ProfilerInner;

    /// The disabled guard: a zero-sized type with no drop glue.
    #[must_use = "the guard times its scope; dropping it immediately times nothing"]
    pub struct PhaseGuard<'a>(pub(super) std::marker::PhantomData<&'a ()>);
}

pub use imp::PhaseGuard;

/// Per-phase wall-time accumulator. Clones share totals, so the grid can
/// keep one handle and the event loop another.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    #[cfg_attr(not(feature = "profile"), allow(dead_code))]
    inner: Rc<imp::ProfilerInner>,
}

impl Profiler {
    /// A fresh profiler with all totals at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the binary was built with timing support.
    pub const fn compiled_in() -> bool {
        cfg!(feature = "profile")
    }

    /// Starts timing `phase`; the returned guard attributes the elapsed
    /// wall time on drop. Without the `profile` feature this returns a
    /// zero-sized guard and performs no work.
    #[inline]
    pub fn enter(&self, phase: Phase) -> PhaseGuard<'_> {
        #[cfg(feature = "profile")]
        {
            PhaseGuard {
                inner: &self.inner,
                phase,
                started: std::time::Instant::now(),
            }
        }
        #[cfg(not(feature = "profile"))]
        {
            let _ = phase;
            PhaseGuard(std::marker::PhantomData)
        }
    }

    /// The accumulated per-phase totals.
    pub fn report(&self) -> ProfileReport {
        #[cfg(feature = "profile")]
        {
            ProfileReport {
                enabled: true,
                phases: Phase::ALL
                    .iter()
                    .map(|&p| PhaseReport {
                        phase: p,
                        total_ns: self.inner.total_ns(p),
                        entries: self.inner.entries(p),
                    })
                    .collect(),
            }
        }
        #[cfg(not(feature = "profile"))]
        {
            ProfileReport {
                enabled: false,
                phases: Phase::ALL
                    .iter()
                    .map(|&p| PhaseReport {
                        phase: p,
                        total_ns: 0,
                        entries: 0,
                    })
                    .collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_phase() {
        let profiler = Profiler::new();
        {
            let _guard = profiler.enter(Phase::SlotWalk);
        }
        let report = profiler.report();
        assert_eq!(report.phases.len(), Phase::ALL.len());
        assert_eq!(report.enabled, Profiler::compiled_in());
        assert!(!report.render().is_empty());
    }

    #[cfg(feature = "profile")]
    #[test]
    fn enabled_profiler_accumulates_time() {
        let profiler = Profiler::new();
        for _ in 0..3 {
            let _guard = profiler.enter(Phase::Dispatch);
            std::hint::black_box(0u64);
        }
        let report = profiler.report();
        let row = report
            .phases
            .iter()
            .find(|p| p.phase == Phase::Dispatch)
            .unwrap();
        assert_eq!(row.entries, 3);
    }

    #[cfg(not(feature = "profile"))]
    #[test]
    fn disabled_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<PhaseGuard<'_>>(), 0);
        let profiler = Profiler::new();
        {
            let _guard = profiler.enter(Phase::QueuePop);
        }
        assert_eq!(profiler.report().total_ns(Phase::QueuePop), 0);
    }

    #[test]
    fn clones_share_totals() {
        let a = Profiler::new();
        let b = a.clone();
        {
            let _guard = b.enter(Phase::GiopEncode);
        }
        // Entries only tick with the feature on; either way both handles
        // must agree.
        assert_eq!(
            a.report().total_ns(Phase::GiopEncode),
            b.report().total_ns(Phase::GiopEncode)
        );
    }
}
