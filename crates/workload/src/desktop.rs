//! Synthetic desktop-usage trace generation.
//!
//! The paper's LUPA premise is that desktop usage has recoverable structure
//! — "lunch-breaks, nights, holidays, working periods" (§3). With no public
//! 2003 campus traces available, this generator synthesises per-node,
//! multi-week traces with exactly that structure plus stochastic variation:
//! archetypes define the deterministic skeleton (office hours with a lunch
//! dip, lab bursts, night-owl sessions, servers, spares) and the generator
//! adds arrival/departure jitter, random meetings, holidays and sampling
//! noise. Experiments then test whether the analytics recover the planted
//! categories and whether pattern-aware scheduling pays off — the paper's
//! causal claim — on ground truth we control.

use integrade_simnet::rng::DetRng;
use integrade_usage::sample::{UsageSample, Weekday};
use serde::{Deserialize, Serialize};

/// Samples per day at the 5-minute interval.
pub const SLOTS_PER_DAY: usize = 288;

/// A node's behavioural archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Weekday 9–18 worker with a lunch break; idle nights and weekends.
    OfficeWorker,
    /// Instructional lab machine: bursty student use 10:00–22:00, lighter
    /// on weekends.
    LabMachine,
    /// Busy late evening into the night (20:00–02:00), idle by day.
    NightOwl,
    /// Constantly loaded server; never a grid donor in practice.
    Server,
    /// Essentially always idle (spare/retired machine).
    Spare,
}

impl Archetype {
    /// All archetypes, for sweeps.
    pub const ALL: [Archetype; 5] = [
        Archetype::OfficeWorker,
        Archetype::LabMachine,
        Archetype::NightOwl,
        Archetype::Server,
        Archetype::Spare,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Archetype::OfficeWorker => "office-worker",
            Archetype::LabMachine => "lab-machine",
            Archetype::NightOwl => "night-owl",
            Archetype::Server => "server",
            Archetype::Spare => "spare",
        }
    }
}

/// Trace-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Weeks of trace to generate.
    pub weeks: usize,
    /// Standard deviation of arrival/departure jitter, minutes.
    pub schedule_jitter_mins: f64,
    /// Per-sample load noise (σ).
    pub noise: f64,
    /// Probability that a workday is a holiday/vacation day (fully idle).
    pub holiday_prob: f64,
    /// Probability per busy hour of a ~30-minute absence (meeting).
    pub meeting_prob: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            weeks: 4,
            schedule_jitter_mins: 20.0,
            noise: 0.03,
            holiday_prob: 0.03,
            meeting_prob: 0.08,
        }
    }
}

/// One day's deterministic plan for a user.
#[derive(Debug, Clone)]
struct DayPlan {
    /// (start_min, end_min, level) busy intervals within the day.
    busy: Vec<(u32, u32, f64)>,
}

fn plan_day(
    archetype: Archetype,
    weekday: Weekday,
    rng: &mut DetRng,
    cfg: &TraceConfig,
) -> DayPlan {
    let jitter = |rng: &mut DetRng, minute: f64| -> u32 {
        (minute + rng.normal(0.0, cfg.schedule_jitter_mins)).clamp(0.0, 1439.0) as u32
    };
    let mut busy = Vec::new();
    match archetype {
        Archetype::OfficeWorker => {
            if !weekday.is_weekend() && !rng.bernoulli(cfg.holiday_prob) {
                let arrive = jitter(rng, 9.0 * 60.0);
                let lunch_out = jitter(rng, 12.0 * 60.0);
                let lunch_in = jitter(rng, 13.0 * 60.0).max(lunch_out + 15);
                let leave = jitter(rng, 18.0 * 60.0).max(lunch_in + 30);
                busy.push((arrive, lunch_out, 0.75));
                busy.push((lunch_in, leave, 0.75));
            }
        }
        Archetype::LabMachine => {
            let sessions = if weekday.is_weekend() { 2 } else { 5 };
            for _ in 0..sessions {
                if rng.bernoulli(0.7) {
                    let start = rng.uniform_range(10 * 60, 22 * 60) as u32;
                    let len = rng.uniform_range(30, 150) as u32;
                    busy.push((start, (start + len).min(1439), 0.85));
                }
            }
        }
        Archetype::NightOwl => {
            if rng.bernoulli(0.85) {
                let start = jitter(rng, 20.0 * 60.0);
                busy.push((start, 1439, 0.8)); // runs past midnight; next day's
                                               // 00:00–02:00 block is below
            }
            if rng.bernoulli(0.85) {
                busy.push((0, jitter(rng, 2.0 * 60.0), 0.8));
            }
        }
        Archetype::Server => {
            busy.push((0, 1439, 0.7));
        }
        Archetype::Spare => {}
    }
    // Meetings punch idle holes into office-style busy spans.
    if archetype == Archetype::OfficeWorker {
        let mut holes: Vec<(u32, u32)> = Vec::new();
        for &(start, end, _) in &busy {
            let mut hour = start;
            while hour + 60 <= end {
                if rng.bernoulli(cfg.meeting_prob) {
                    holes.push((hour, (hour + 30).min(end)));
                }
                hour += 60;
            }
        }
        for (hole_start, hole_end) in holes {
            let mut next = Vec::new();
            for (start, end, level) in busy.drain(..) {
                if hole_start > start && hole_end < end {
                    next.push((start, hole_start, level));
                    next.push((hole_end, end, level));
                } else {
                    next.push((start, end, level));
                }
            }
            busy = next;
        }
    }
    DayPlan { busy }
}

/// Generates a trace of `weeks * 7 * 288` five-minute samples for one node.
///
/// Deterministic for a given `rng` state; each node should use an
/// independently forked generator.
pub fn generate_trace(
    archetype: Archetype,
    cfg: &TraceConfig,
    rng: &mut DetRng,
) -> Vec<UsageSample> {
    let days = cfg.weeks * 7;
    let mut trace = Vec::with_capacity(days * SLOTS_PER_DAY);
    for day in 0..days {
        let weekday = Weekday::from_day_number(day as u64);
        let plan = plan_day(archetype, weekday, rng, cfg);
        for slot in 0..SLOTS_PER_DAY {
            let minute = (slot * 5) as u32;
            let level = plan
                .busy
                .iter()
                .find(|(start, end, _)| (*start..=*end).contains(&minute))
                .map(|(_, _, level)| *level)
                .unwrap_or(0.0);
            let cpu = (level + rng.normal(0.0, cfg.noise)).clamp(0.0, 1.0);
            let mem = if level > 0.0 {
                (0.5 + rng.normal(0.0, cfg.noise)).clamp(0.0, 1.0)
            } else {
                (0.08 + rng.normal(0.0, cfg.noise / 2.0)).clamp(0.0, 1.0)
            };
            let disk = (level * 0.15 + rng.normal(0.0, cfg.noise / 2.0)).clamp(0.0, 1.0);
            let net = (level * 0.1 + rng.normal(0.0, cfg.noise / 2.0)).clamp(0.0, 1.0);
            trace.push(UsageSample::new(cpu, mem, disk, net));
        }
    }
    trace
}

/// Fraction of samples idle at `threshold` — used to sanity-check traces.
pub fn idle_fraction(trace: &[UsageSample], threshold: f64) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().filter(|s| s.cpu < threshold).count() as f64 / trace.len() as f64
}

/// Generates a campus population: `count` nodes per archetype in
/// [`Archetype::ALL`] order, each with an independent RNG stream.
pub fn generate_population(
    per_archetype: &[(Archetype, usize)],
    cfg: &TraceConfig,
    seed: u64,
) -> Vec<(Archetype, Vec<UsageSample>)> {
    let mut master = DetRng::with_stream(seed, 0x7472_6163);
    let mut out = Vec::new();
    for &(archetype, count) in per_archetype {
        for _ in 0..count {
            let mut rng = master.fork(archetype as u64 + 1);
            out.push((archetype, generate_trace(archetype, cfg, &mut rng)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_for(archetype: Archetype, seed: u64) -> Vec<UsageSample> {
        let mut rng = DetRng::new(seed);
        generate_trace(archetype, &TraceConfig::default(), &mut rng)
    }

    fn mean_cpu(trace: &[UsageSample], filter: impl Fn(usize) -> bool) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (i, s) in trace.iter().enumerate() {
            if filter(i) {
                sum += s.cpu;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    }

    fn slot_hour(i: usize) -> f64 {
        ((i % SLOTS_PER_DAY) * 5) as f64 / 60.0
    }

    fn slot_weekday(i: usize) -> Weekday {
        Weekday::from_day_number((i / SLOTS_PER_DAY) as u64)
    }

    #[test]
    fn trace_length_matches_config() {
        let trace = trace_for(Archetype::Spare, 1);
        assert_eq!(trace.len(), 4 * 7 * 288);
    }

    #[test]
    fn office_worker_structure() {
        let trace = trace_for(Archetype::OfficeWorker, 2);
        let work = mean_cpu(&trace, |i| {
            !slot_weekday(i).is_weekend() && (10.0..11.5).contains(&slot_hour(i))
        });
        let night = mean_cpu(&trace, |i| (2.0..5.0).contains(&slot_hour(i)));
        let weekend = mean_cpu(&trace, |i| slot_weekday(i).is_weekend());
        assert!(work > 0.5, "working hours busy: {work}");
        assert!(night < 0.1, "nights idle: {night}");
        assert!(weekend < 0.1, "weekends idle: {weekend}");
        // The lunch dip exists: 12:15–12:45 is less busy than 11:00.
        let lunch = mean_cpu(&trace, |i| {
            !slot_weekday(i).is_weekend() && (12.25..12.75).contains(&slot_hour(i))
        });
        assert!(lunch < work, "lunch dip: {lunch} < {work}");
    }

    #[test]
    fn night_owl_is_inverted() {
        let trace = trace_for(Archetype::NightOwl, 3);
        let night = mean_cpu(&trace, |i| slot_hour(i) >= 21.0 || slot_hour(i) < 1.5);
        let day = mean_cpu(&trace, |i| (9.0..17.0).contains(&slot_hour(i)));
        assert!(night > 0.5, "night busy: {night}");
        assert!(day < 0.1, "day idle: {day}");
    }

    #[test]
    fn server_always_busy_spare_always_idle() {
        let server = trace_for(Archetype::Server, 4);
        assert!(idle_fraction(&server, 0.15) < 0.02);
        let spare = trace_for(Archetype::Spare, 5);
        assert!(idle_fraction(&spare, 0.15) > 0.95);
    }

    #[test]
    fn lab_machine_is_intermittent() {
        let trace = trace_for(Archetype::LabMachine, 6);
        let idle = idle_fraction(&trace, 0.15);
        assert!((0.3..0.95).contains(&idle), "bursty, not constant: {idle}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            trace_for(Archetype::OfficeWorker, 7),
            trace_for(Archetype::OfficeWorker, 7)
        );
        assert_ne!(
            trace_for(Archetype::OfficeWorker, 7),
            trace_for(Archetype::OfficeWorker, 8)
        );
    }

    #[test]
    fn population_covers_archetypes() {
        let pop = generate_population(
            &[(Archetype::OfficeWorker, 3), (Archetype::Spare, 2)],
            &TraceConfig {
                weeks: 1,
                ..Default::default()
            },
            42,
        );
        assert_eq!(pop.len(), 5);
        assert_eq!(
            pop.iter()
                .filter(|(a, _)| *a == Archetype::OfficeWorker)
                .count(),
            3
        );
        // Distinct office workers differ (independent streams).
        assert_ne!(pop[0].1, pop[1].1);
    }

    #[test]
    fn samples_are_well_formed() {
        for archetype in Archetype::ALL {
            let trace = trace_for(archetype, 9);
            for s in &trace {
                assert!((0.0..=1.0).contains(&s.cpu));
                assert!((0.0..=1.0).contains(&s.mem));
            }
        }
    }

    #[test]
    fn archetype_labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            Archetype::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), Archetype::ALL.len());
    }
}
