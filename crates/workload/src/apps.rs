//! Grid application workload generation.
//!
//! Produces timed streams of [`JobSpec`] submissions: Poisson arrivals over
//! a horizon, with a configurable mix of sequential, bag-of-tasks and BSP
//! applications (the paper's "broad range of parallel applications") and
//! heavy-tailed work sizes.

use integrade_core::asct::{JobRequirements, JobSpec, SchedulingPreference};
use integrade_simnet::rng::DetRng;
use integrade_simnet::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Relative weights of job kinds in the mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobMix {
    /// Weight of sequential jobs.
    pub sequential: f64,
    /// Weight of bag-of-tasks jobs.
    pub bag_of_tasks: f64,
    /// Weight of BSP parallel jobs.
    pub bsp: f64,
}

impl Default for JobMix {
    fn default() -> Self {
        JobMix {
            sequential: 0.4,
            bag_of_tasks: 0.4,
            bsp: 0.2,
        }
    }
}

impl JobMix {
    /// Only high-throughput work (no inter-task communication) — the
    /// BOINC-compatible subset.
    pub fn throughput_only() -> Self {
        JobMix {
            sequential: 0.5,
            bag_of_tasks: 0.5,
            bsp: 0.0,
        }
    }

    /// Parallel-heavy mix.
    pub fn parallel_heavy() -> Self {
        JobMix {
            sequential: 0.2,
            bag_of_tasks: 0.2,
            bsp: 0.6,
        }
    }
}

/// Workload-stream parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Mean inter-arrival time.
    pub mean_interarrival: SimDuration,
    /// Job-kind mix.
    pub mix: JobMix,
    /// Mean sequential work, MIPS-s (exponentially distributed).
    pub mean_seq_work: f64,
    /// Bag size range (inclusive).
    pub bag_tasks: (u64, u64),
    /// BSP process-count range (inclusive).
    pub bsp_procs: (u64, u64),
    /// BSP superstep-count range (inclusive).
    pub bsp_supersteps: (u64, u64),
    /// Requirements applied to every job.
    pub requirements: JobRequirements,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            mean_interarrival: SimDuration::from_mins(30),
            mix: JobMix::default(),
            mean_seq_work: 300_000.0, // ~33 min at a 500-MIPS node's 30% cap
            bag_tasks: (4, 16),
            bsp_procs: (2, 8),
            bsp_supersteps: (20, 80),
            requirements: JobRequirements::default(),
        }
    }
}

/// Generates `(submit_time, spec)` pairs over `[start, start + horizon)`.
pub fn generate_stream(
    config: &WorkloadConfig,
    start: SimTime,
    horizon: SimDuration,
    rng: &mut DetRng,
) -> Vec<(SimTime, JobSpec)> {
    let mut out = Vec::new();
    let mut t = start;
    let end = start + horizon;
    let mut index = 0u64;
    loop {
        let gap =
            SimDuration::from_secs_f64(rng.exponential(config.mean_interarrival.as_secs_f64()));
        t = t.saturating_add(gap);
        if t >= end {
            break;
        }
        out.push((t, generate_job(config, index, rng)));
        index += 1;
    }
    out
}

/// Generates one job from the mix.
pub fn generate_job(config: &WorkloadConfig, index: u64, rng: &mut DetRng) -> JobSpec {
    let weights = [
        config.mix.sequential,
        config.mix.bag_of_tasks,
        config.mix.bsp,
    ];
    let kind = rng.choose_weighted(&weights).unwrap_or(0);
    let mut spec = match kind {
        0 => {
            let work = rng.exponential(config.mean_seq_work).max(1000.0) as u64;
            JobSpec::sequential(&format!("seq-{index}"), work)
        }
        1 => {
            let tasks = rng.uniform_range(config.bag_tasks.0, config.bag_tasks.1 + 1) as usize;
            let work = rng.exponential(config.mean_seq_work / 2.0).max(1000.0) as u64;
            JobSpec::bag_of_tasks(&format!("bag-{index}"), tasks, work)
        }
        _ => {
            let procs = rng.uniform_range(config.bsp_procs.0, config.bsp_procs.1 + 1) as usize;
            let steps = rng.uniform_range(config.bsp_supersteps.0, config.bsp_supersteps.1 + 1);
            let work = rng.exponential(config.mean_seq_work / 50.0).max(500.0) as u64;
            JobSpec::bsp(&format!("bsp-{index}"), procs, steps, work, 8 * 1024)
        }
    };
    spec.requirements = config.requirements.clone();
    spec.preference = SchedulingPreference::FastestCpu;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use integrade_core::asct::JobKind;

    #[test]
    fn stream_respects_horizon_and_order() {
        let mut rng = DetRng::new(1);
        let start = SimTime::from_secs(100);
        let horizon = SimDuration::from_hours(24);
        let jobs = generate_stream(&WorkloadConfig::default(), start, horizon, &mut rng);
        assert!(!jobs.is_empty());
        for window in jobs.windows(2) {
            assert!(window[0].0 <= window[1].0, "sorted by arrival");
        }
        assert!(jobs.first().unwrap().0 >= start);
        assert!(jobs.last().unwrap().0 < start + horizon);
    }

    #[test]
    fn arrival_rate_matches_mean() {
        let mut rng = DetRng::new(2);
        let config = WorkloadConfig {
            mean_interarrival: SimDuration::from_mins(10),
            ..Default::default()
        };
        let jobs = generate_stream(&config, SimTime::ZERO, SimDuration::from_days(10), &mut rng);
        let expected = 10.0 * 24.0 * 6.0; // 1440 arrivals
        let got = jobs.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn mix_weights_respected() {
        let mut rng = DetRng::new(3);
        let config = WorkloadConfig::default();
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            let spec = generate_job(&config, i, &mut rng);
            match spec.kind {
                JobKind::Sequential { .. } => counts[0] += 1,
                JobKind::BagOfTasks { .. } => counts[1] += 1,
                JobKind::Bsp { .. } => counts[2] += 1,
            }
        }
        let frac = |c: usize| c as f64 / 3000.0;
        assert!((frac(counts[0]) - 0.4).abs() < 0.05);
        assert!((frac(counts[1]) - 0.4).abs() < 0.05);
        assert!((frac(counts[2]) - 0.2).abs() < 0.05);
    }

    #[test]
    fn throughput_only_has_no_bsp() {
        let mut rng = DetRng::new(4);
        let config = WorkloadConfig {
            mix: JobMix::throughput_only(),
            ..Default::default()
        };
        for i in 0..500 {
            let spec = generate_job(&config, i, &mut rng);
            assert!(!spec.kind.is_parallel(), "{:?}", spec.kind);
        }
    }

    #[test]
    fn job_shapes_within_ranges() {
        let mut rng = DetRng::new(5);
        let config = WorkloadConfig::default();
        for i in 0..1000 {
            match generate_job(&config, i, &mut rng).kind {
                JobKind::Sequential { work_mips_s } => assert!(work_mips_s >= 1000),
                JobKind::BagOfTasks { task_work_mips_s } => {
                    assert!((4..=16).contains(&task_work_mips_s.len()));
                }
                JobKind::Bsp {
                    procs, supersteps, ..
                } => {
                    assert!((2..=8).contains(&procs));
                    assert!((20..=80).contains(&supersteps));
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = DetRng::new(seed);
            generate_stream(
                &WorkloadConfig::default(),
                SimTime::ZERO,
                SimDuration::from_hours(12),
                &mut rng,
            )
        };
        assert_eq!(gen(9), gen(9));
    }
}
