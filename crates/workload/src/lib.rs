//! # integrade-workload
//!
//! Synthetic workloads for the InteGrade reproduction: desktop-usage traces
//! with planted behavioural structure ([`desktop`]), grid application
//! streams ([`apps`]), and canned end-to-end scenarios ([`scenarios`]).
//!
//! The paper evaluates no public traces; this crate is the controlled
//! substitute (see DESIGN.md §2): archetypes plant the daily/weekly
//! structure LUPA is designed to discover, so experiments can measure
//! recovery and scheduling benefit against known ground truth.
//!
//! # Examples
//!
//! ```
//! use integrade_simnet::rng::DetRng;
//! use integrade_workload::desktop::{generate_trace, idle_fraction, Archetype, TraceConfig};
//!
//! let mut rng = DetRng::new(7);
//! let trace = generate_trace(Archetype::OfficeWorker, &TraceConfig::default(), &mut rng);
//! // Offices sit idle most of the week — the waste InteGrade harvests.
//! assert!(idle_fraction(&trace, 0.15) > 0.6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod desktop;
pub mod scenarios;

pub use apps::{generate_job, generate_stream, JobMix, WorkloadConfig};
pub use desktop::{generate_population, generate_trace, idle_fraction, Archetype, TraceConfig};
pub use scenarios::{campus_department, monte_carlo_batch, render_farm_night, Scenario};
