//! Canned end-to-end scenarios used by examples, tests and experiments.
//!
//! Each scenario assembles the node population (archetypes → traces →
//! [`NodeSetup`]s) and a job stream for a recognisable situation from the
//! paper's motivation: a campus department, an overnight render farm, a
//! financial Monte-Carlo batch.

use crate::apps::{generate_stream, WorkloadConfig};
use crate::desktop::{generate_trace, Archetype, TraceConfig};
use integrade_core::asct::JobSpec;
use integrade_core::grid::NodeSetup;
use integrade_core::ncc::{SharingPolicy, WeeklySchedule};
use integrade_core::types::{NodeRoles, Platform, ResourceVector};
use integrade_simnet::rng::DetRng;
use integrade_simnet::time::{SimDuration, SimTime};

/// A ready-to-build grid population plus its submission stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// Clusters of node setups (feed to `GridBuilder::add_cluster`).
    pub clusters: Vec<Vec<NodeSetup>>,
    /// Timed submissions (feed to `Grid::submit_at`).
    pub submissions: Vec<(SimTime, JobSpec)>,
    /// Suggested run horizon.
    pub horizon: SimTime,
}

impl Scenario {
    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }
}

fn node_from_archetype(
    archetype: Archetype,
    trace_cfg: &TraceConfig,
    rng: &mut DetRng,
) -> NodeSetup {
    let trace = generate_trace(archetype, trace_cfg, rng);
    let (resources, policy, roles) = match archetype {
        Archetype::OfficeWorker => (
            ResourceVector::desktop(),
            SharingPolicy::default(),
            NodeRoles {
                user_node: true,
                resource_provider: true,
                ..Default::default()
            },
        ),
        Archetype::LabMachine => (
            ResourceVector::lab_machine(),
            SharingPolicy::generous(),
            NodeRoles::provider(),
        ),
        Archetype::NightOwl => (
            ResourceVector::desktop(),
            SharingPolicy::default(),
            NodeRoles::provider(),
        ),
        Archetype::Server => (
            ResourceVector::dedicated(),
            SharingPolicy::default(), // busy: effectively never exports
            NodeRoles::provider(),
        ),
        Archetype::Spare => (
            ResourceVector::desktop(),
            SharingPolicy::generous(),
            NodeRoles::provider(),
        ),
    };
    NodeSetup {
        resources,
        platform: Platform::linux_x86(),
        policy,
        roles,
        trace,
    }
}

/// Builds a mixed campus department: one cluster of offices, one lab
/// cluster, and a couple of dedicated nodes, with a default job stream.
pub fn campus_department(seed: u64) -> Scenario {
    let trace_cfg = TraceConfig::default();
    let mut rng = DetRng::with_stream(seed, 0x6361_6D70);
    let offices: Vec<NodeSetup> = (0..12)
        .map(|_| node_from_archetype(Archetype::OfficeWorker, &trace_cfg, &mut rng.fork(1)))
        .collect();
    let mut lab: Vec<NodeSetup> = (0..10)
        .map(|_| node_from_archetype(Archetype::LabMachine, &trace_cfg, &mut rng.fork(2)))
        .collect();
    lab.push(NodeSetup::dedicated());
    lab.push(NodeSetup::dedicated());
    let mut workload_rng = rng.fork(3);
    let submissions = generate_stream(
        &WorkloadConfig::default(),
        SimTime::from_secs(600),
        SimDuration::from_days(2),
        &mut workload_rng,
    );
    Scenario {
        name: "campus-department",
        clusters: vec![offices, lab],
        submissions,
        horizon: SimTime::ZERO + SimDuration::from_days(3),
    }
}

/// An overnight render farm: office desktops that free up at 18:00, and a
/// large bag-of-tasks render job submitted at 19:00 on Monday.
pub fn render_farm_night(seed: u64, frames: usize) -> Scenario {
    let trace_cfg = TraceConfig::default();
    let mut rng = DetRng::with_stream(seed, 0x7265_6E64);
    let desktops: Vec<NodeSetup> = (0..16)
        .map(|_| node_from_archetype(Archetype::OfficeWorker, &trace_cfg, &mut rng.fork(1)))
        .collect();
    // One frame ≈ 20 virtual minutes of a desktop's full speed.
    let frame_work = 500 * 60 * 20;
    let render = JobSpec::bag_of_tasks("render-night", frames, frame_work);
    Scenario {
        name: "render-farm-night",
        clusters: vec![desktops],
        submissions: vec![(SimTime::ZERO + SimDuration::from_hours(19), render)],
        horizon: SimTime::ZERO + SimDuration::from_days(2),
    }
}

/// A financial Monte-Carlo batch on lab machines during exam week (lab is
/// mostly idle), with night-time export windows on half the machines.
pub fn monte_carlo_batch(seed: u64, simulations: usize) -> Scenario {
    let trace_cfg = TraceConfig {
        weeks: 2,
        ..Default::default()
    };
    let mut rng = DetRng::with_stream(seed, 0x6D63_6172);
    let lab: Vec<NodeSetup> = (0..12)
        .map(|i| {
            let mut node = node_from_archetype(Archetype::Spare, &trace_cfg, &mut rng.fork(1));
            if i % 2 == 0 {
                node.policy.schedule = WeeklySchedule::outside_work_hours(8, 20);
            }
            node
        })
        .collect();
    let sim_work = 500 * 60 * 5; // 5 minutes of full speed each
    let batch = JobSpec::bag_of_tasks("monte-carlo", simulations, sim_work);
    Scenario {
        name: "monte-carlo-batch",
        clusters: vec![lab],
        submissions: vec![(SimTime::ZERO + SimDuration::from_hours(1), batch)],
        horizon: SimTime::ZERO + SimDuration::from_days(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use integrade_core::grid::{GridBuilder, GridConfig};

    #[test]
    fn campus_department_shape() {
        let s = campus_department(1);
        assert_eq!(s.clusters.len(), 2);
        assert_eq!(s.node_count(), 24);
        assert!(!s.submissions.is_empty());
        // Dedicated nodes present in the lab cluster.
        assert!(s.clusters[1].iter().any(|n| n.roles.dedicated));
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = campus_department(5);
        let b = campus_department(5);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.submissions.len(), b.submissions.len());
        for ((ta, ja), (tb, jb)) in a.submissions.iter().zip(&b.submissions) {
            assert_eq!(ta, tb);
            assert_eq!(ja.name, jb.name);
        }
    }

    #[test]
    fn render_farm_completes_overnight() {
        let s = render_farm_night(7, 12);
        let config = GridConfig {
            gupa_warmup_days: 0,
            ..Default::default()
        };
        let mut builder = GridBuilder::new(config);
        for cluster in s.clusters {
            builder.add_cluster(cluster);
        }
        let mut grid = builder.build();
        for (at, spec) in s.submissions {
            grid.submit_at(spec, at);
        }
        grid.run_until(s.horizon);
        let report = grid.report();
        assert_eq!(report.completed(), 1, "{:?}", report.records);
        assert_eq!(report.qos.cap_violations, 0);
    }

    #[test]
    fn monte_carlo_respects_export_windows() {
        let s = monte_carlo_batch(9, 24);
        let config = GridConfig {
            gupa_warmup_days: 0,
            ..Default::default()
        };
        let mut builder = GridBuilder::new(config);
        for cluster in s.clusters {
            builder.add_cluster(cluster);
        }
        let mut grid = builder.build();
        for (at, spec) in s.submissions {
            grid.submit_at(spec, at);
        }
        grid.run_until(s.horizon);
        let report = grid.report();
        assert_eq!(report.completed(), 1, "{:?}", report.records);
    }
}
