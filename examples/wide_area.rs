//! Wide-area InteGrade: a hierarchy of clusters.
//!
//! "Clusters are then arranged in a hierarchy, allowing a single InteGrade
//! grid to encompass millions of machines" (§4). This example builds a
//! three-level hierarchy (campus → departments → labs), propagates
//! aggregated resource summaries upward, and routes a request that the
//! local cluster cannot satisfy to a sibling subtree — the [MK02] wide-area
//! extension. It then contrasts per-manager message load against a flat
//! global directory.
//!
//! Run with: `cargo run --example wide_area`

use integrade::core::asct::JobSpec;
use integrade::core::federation::Federation;
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::core::hierarchy::{
    ClusterHierarchy, ClusterSummary, FlatDirectory, WideAreaRequest,
};
use integrade::core::types::ClusterId;
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::simnet::topology::LinkSpec;

fn main() {
    // campus(0) — cs(1), physics(2); cs — lab-a(3), lab-b(4); physics — lab-c(5).
    let mut hierarchy = ClusterHierarchy::new(ClusterId(0));
    hierarchy.add_cluster(ClusterId(1), ClusterId(0)).unwrap();
    hierarchy.add_cluster(ClusterId(2), ClusterId(0)).unwrap();
    hierarchy.add_cluster(ClusterId(3), ClusterId(1)).unwrap();
    hierarchy.add_cluster(ClusterId(4), ClusterId(1)).unwrap();
    hierarchy.add_cluster(ClusterId(5), ClusterId(2)).unwrap();

    // Leaf clusters report their aggregated status (Information Update
    // Protocol, inter-cluster flavour).
    let small = ClusterSummary {
        nodes: 20,
        exporting_nodes: 8,
        max_cpu_mips: 500,
        max_free_ram_mb: 128,
        ..Default::default()
    };
    let big = ClusterSummary {
        nodes: 80,
        exporting_nodes: 60,
        max_cpu_mips: 1500,
        max_free_ram_mb: 512,
        ..Default::default()
    };
    hierarchy.update_summary(ClusterId(3), small).unwrap();
    hierarchy.update_summary(ClusterId(4), small).unwrap();
    hierarchy.update_summary(ClusterId(5), big).unwrap();

    println!("== Hierarchy ==");
    println!("clusters: {}", hierarchy.len());
    for id in 0..6u32 {
        let agg = hierarchy.aggregate(ClusterId(id)).unwrap();
        println!(
            "  cluster{id}: subtree = {} nodes, {} exporting, ≤{} MIPS",
            agg.nodes, agg.exporting_nodes, agg.max_cpu_mips
        );
    }

    // A user in lab-a asks for 40 fast nodes; lab-a has only 8 exporting.
    let request = WideAreaRequest {
        nodes: 40,
        min_cpu_mips: 1000,
        min_ram_mb: 256,
    };
    println!("\n== Request from cluster3 (lab-a): 40 nodes, ≥1000 MIPS, ≥256 MB ==");
    match hierarchy.route_request(ClusterId(3), &request).unwrap() {
        Some((target, hops)) => {
            println!("routed to {target} in {hops} inter-cluster hops");
        }
        None => println!("no cluster in the grid admits the request"),
    }
    let stats = hierarchy.stats();
    println!(
        "hierarchy messages so far: {} updates, {} routing",
        stats.update_messages, stats.routing_messages
    );

    // Contrast with a flat directory: every update hits one global GRM.
    println!("\n== Flat directory comparison ==");
    let mut flat = FlatDirectory::new();
    for id in [3u32, 4, 5] {
        flat.update_summary(ClusterId(id), if id == 5 { big } else { small });
    }
    flat.route_request(&request);
    println!("flat global-GRM messages: {}", flat.root_messages);
    println!(
        "\nIn the hierarchy the root only ever talks to its fan-out; in the\n\
         flat design the single GRM absorbs every cluster's updates — the\n\
         scalability argument behind the paper's 'millions of machines'."
    );

    // Finally, run it for real: a grid of clusters, each with its own GRM,
    // joined by linked traders over explicit WAN links, executing a
    // forwarded job end to end with status reports flowing back.
    println!("\n== Live federation: forwarding a job between running grids ==");
    let make_grid = |n: usize| {
        let mut b = GridBuilder::new(GridConfig::builder().gupa_warmup_days(0).build());
        b.add_cluster((0..n).map(|_| NodeSetup::idle_desktop()).collect());
        b.build()
    };
    let mut federation = Federation::builder()
        .seed(42)
        .update_period(SimDuration::from_secs(60))
        .hop_budget(4)
        .root(ClusterId(0), make_grid(2))
        .child_linked(
            ClusterId(1),
            ClusterId(0),
            make_grid(10),
            LinkSpec::wan_regional(),
        )
        .build()
        .unwrap();
    federation.run_until(SimTime::from_secs(120)); // populate GRM views

    let placed = federation
        .submit(
            ClusterId(0),
            JobSpec::bag_of_tasks("federated-bag", 6, 60_000),
        )
        .unwrap();
    println!(
        "submitted at cluster0 (2 nodes) -> executing on {} after {} hop(s), {} WAN bytes",
        placed.id.cluster, placed.hops, placed.wan_bytes
    );
    federation.run_until(SimTime::from_secs(4 * 3600));
    federation.refresh();
    let wan = federation.wan_stats();
    println!(
        "state: {:?}, origin knows completion: {}, total completed: {}",
        federation.job_state(placed.id).unwrap(),
        federation.origin_knows_complete(placed.id),
        federation.total_completed()
    );
    println!(
        "WAN traffic: {} messages, {} bytes ({} spillover queries, {} forwards, {} statuses)",
        wan.messages, wan.bytes, wan.spillover_queries, wan.forwards, wan.status_messages
    );
}
