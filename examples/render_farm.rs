//! Overnight render farm on office desktops.
//!
//! The paper's motivation: "The movie industry makes intensive use of
//! computers to render movies". Here a 16-desktop office becomes a render
//! farm after hours: a bag-of-tasks render job submitted Monday 19:00
//! spreads across machines whose owners went home, survives Tuesday-morning
//! evictions by rescheduling, and finishes without the owners ever noticing
//! (QoS ledger stays clean).
//!
//! Run with: `cargo run --example render_farm`

use integrade::core::grid::{GridBuilder, GridConfig};
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::workload::render_farm_night;

fn main() {
    let scenario = render_farm_night(2026, 24);
    println!(
        "== Scenario: {} ({} desktops, 24 frames) ==",
        scenario.name,
        scenario.node_count()
    );

    let config = GridConfig::default();
    let mut builder = GridBuilder::new(config);
    for cluster in scenario.clusters {
        builder.add_cluster(cluster);
    }
    let mut grid = builder.build();
    for (at, spec) in scenario.submissions {
        println!("submitting '{}' at {}", spec.name, at);
        grid.submit_at(spec, at);
    }

    // Watch progress day by day.
    for hours in [20u64, 24, 30, 48] {
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(hours));
        let report = grid.report();
        if let Some(record) = report.records.first() {
            println!(
                "t={:>3}h  state={:<12} frames {}/{}  evictions={} refusals={}",
                hours,
                record.state.to_string(),
                record.parts_done,
                record.parts_total,
                record.evictions,
                record.negotiation_refusals,
            );
        }
    }

    let report = grid.report();
    let record = report.records.first().expect("job submitted");
    println!("\n== Result ==");
    println!("state            : {}", record.state);
    if let Some(makespan) = record.makespan() {
        println!("makespan         : {makespan}");
    }
    println!("evictions        : {}", record.evictions);
    println!("wasted work      : {} MIPS-s", record.wasted_work_mips_s);
    println!("\n== Owner QoS (the paper's headline requirement) ==");
    println!("owner-active slots observed : {}", report.qos.samples());
    println!(
        "mean owner slowdown         : {:.3}x",
        report.qos.mean_slowdown()
    );
    println!(
        "p95 owner slowdown          : {:.3}x",
        report.qos.quantile_slowdown(0.95)
    );
    println!(
        "NCC cap violations          : {}",
        report.qos.cap_violations
    );
}
