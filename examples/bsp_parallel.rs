//! BSP parallel computing with checkpoint/migrate — the paper's §3 model.
//!
//! Part 1 runs a real BSP application (partitioned PageRank) on the BSP
//! runtime, takes a machine-independent CDR checkpoint mid-run, "crashes",
//! restores, and verifies bitwise-identical results — the milestone
//! mechanism InteGrade relies on to guarantee progress on reclaimable
//! desktops.
//!
//! Part 2 submits a BSP job to a shared-desktop grid whose owners return in
//! the morning: the gang is evicted, rolled back to the last global
//! superstep checkpoint, and re-placed.
//!
//! Run with: `cargo run --example bsp_parallel`

use integrade::bsp::apps::PageRank;
use integrade::bsp::checkpoint::{checkpoint, restore};
use integrade::bsp::runtime::BspRuntime;
use integrade::core::asct::JobSpec;
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::usage::sample::UsageSample;

fn ring_graph(n: u64) -> Vec<(u64, u64)> {
    (0..n)
        .flat_map(|v| [(v, (v + 1) % n), (v, (v + 3) % n)])
        .collect()
}

fn main() {
    // ---- Part 1: real BSP execution with checkpoint/restore. ----
    println!("== Part 1: BSP PageRank with mid-run checkpoint ==");
    let n = 24;
    let edges = ring_graph(n);
    let procs = 4;
    let iterations = 12;

    let mut reference = BspRuntime::new(PageRank::partition(n, &edges, procs, iterations, 0.85));
    reference.run(1000);

    let mut victim = BspRuntime::new(PageRank::partition(n, &edges, procs, iterations, 0.85));
    for _ in 0..5 {
        victim.step();
    }
    let snapshot = checkpoint(&victim);
    println!(
        "checkpoint at superstep {}: {} bytes (CDR, machine-independent)",
        snapshot.superstep,
        snapshot.size_bytes()
    );
    drop(victim); // the node was reclaimed

    let mut resumed: BspRuntime<PageRank> = restore(&snapshot).expect("restore");
    resumed.run(1000);
    let identical = resumed.procs() == reference.procs();
    println!("restored run matches uninterrupted run: {identical}");
    assert!(identical);
    let stats = resumed.stats();
    println!(
        "supersteps={} messages={} bytes={} max h-relation={}",
        resumed.superstep(),
        stats.messages,
        stats.message_bytes,
        stats.max_h_relation
    );

    // ---- Part 2: a BSP job on a grid with returning owners. ----
    println!("\n== Part 2: BSP gang on reclaimable desktops ==");
    // Owners of all nodes are busy 09:00-12:00 each day.
    let mut trace = Vec::new();
    for _day in 0..7 {
        for slot in 0..288 {
            let hour = slot as f64 / 12.0;
            trace.push(if (9.0..12.0).contains(&hour) {
                UsageSample::new(0.85, 0.5, 0.0, 0.0)
            } else {
                UsageSample::idle()
            });
        }
    }
    let config = GridConfig::builder().gupa_warmup_days(0).build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..4)
            .map(|_| NodeSetup {
                trace: trace.clone(),
                ..NodeSetup::idle_desktop()
            })
            .collect(),
    );
    let mut grid = builder.build();

    // Submit at 06:00: the job cannot finish before the 09:00 reclaim.
    let spec = JobSpec::bsp("bsp-pagerank", 3, 400, 30_000, 16 * 1024);
    grid.submit_at(spec, SimTime::ZERO + SimDuration::from_hours(6));
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(48));

    let report = grid.report();
    let record = report.records.first().expect("submitted");
    println!("state      : {}", record.state);
    println!("evictions  : {}", record.evictions);
    println!(
        "wasted work: {} MIPS-s (bounded by the checkpoint interval)",
        record.wasted_work_mips_s
    );
    if let Some(makespan) = record.makespan() {
        println!("makespan   : {makespan}");
    }
    for entry in grid.log().with_category("job.rollback") {
        println!("  {entry}");
    }
    println!("owner cap violations: {}", report.qos.cap_violations);
}
