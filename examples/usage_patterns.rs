//! LUPA/GUPA in action: discover behavioural categories, predict idleness.
//!
//! Trains a usage-pattern model on four weeks of a synthetic office
//! worker's trace (the paper's §3 pipeline: 5-minute samples → daily
//! periods → clustering → behavioural categories), prints the discovered
//! categories, and compares the pattern-based idle forecast against the
//! naive last-value baseline across the day — the paper's "will this idle
//! machine stay idle, or is the owner about to return?" question.
//!
//! Run with: `cargo run --example usage_patterns`

use integrade::simnet::rng::DetRng;
use integrade::usage::patterns::{LupaConfig, LupaModel};
use integrade::usage::predict::{
    IdlePredictor, LupaPredictor, PersistencePredictor, PredictionContext,
};
use integrade::usage::sample::{DayPeriod, SampleWindow, SamplingConfig, UsageSample, Weekday};
use integrade::workload::desktop::{generate_trace, Archetype, TraceConfig};

fn main() {
    // Four weeks of an office worker's machine.
    let mut rng = DetRng::new(42);
    let trace = generate_trace(Archetype::OfficeWorker, &TraceConfig::default(), &mut rng);

    // LUPA collection: feed samples through the window into day periods.
    let mut window = SampleWindow::new(SamplingConfig::default());
    for &sample in &trace {
        window.push(sample);
    }
    let periods: Vec<DayPeriod> = window.take_completed();
    println!(
        "collected {} day-periods of 5-minute samples",
        periods.len()
    );

    // LUPA analysis: cluster into behavioural categories.
    let model = LupaModel::train(&periods, LupaConfig::default());
    println!("\n== Discovered categories ==");
    for category in model.categories() {
        let weekdays: Vec<String> = (0..7u8)
            .map(|d| {
                format!(
                    "{}:{}",
                    Weekday::new(d).name(),
                    category.weekday_hist[d as usize]
                )
            })
            .collect();
        println!(
            "category {} [{}]: {} days ({})",
            category.id,
            category.label,
            category.day_count,
            weekdays.join(" ")
        );
    }

    // Prediction table: P(idle for the next 2 h) across a Wednesday.
    println!("\n== P(idle ≥ 2h) across a Wednesday ==");
    println!("{:<8} {:>12} {:>12}", "time", "LUPA", "persistence");
    let lupa = LupaPredictor::new(&model);
    let naive = PersistencePredictor::default();
    let spd = SamplingConfig::default().slots_per_day();
    // Wednesday of week 3 in the trace.
    let day_start = (2 * 7 + 2) * spd;
    let day: Vec<f64> = trace[day_start..day_start + spd]
        .iter()
        .map(UsageSample::load)
        .collect();
    for hour in [0u32, 6, 8, 9, 12, 14, 18, 20, 23] {
        let minute = hour * 60;
        let slots_so_far = (minute as usize * spd) / 1440;
        let ctx = PredictionContext {
            weekday: Weekday::new(2),
            minute_of_day: minute,
            partial_load: &day[..slots_so_far.max(1)],
            slots_per_day: spd,
            horizon_mins: 120,
        };
        println!(
            "{:02}:00 {:>13.2} {:>12.2}",
            hour,
            lupa.prob_idle_for(&ctx),
            naive.prob_idle_for(&ctx)
        );
    }

    println!("\nNote the 08:00 row: the machine is idle *now*, so persistence");
    println!("extrapolates idleness — but LUPA knows the owner arrives at 09:00.");
}
