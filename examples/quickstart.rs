//! Quickstart: assemble the Figure-1 architecture and run one job.
//!
//! Builds a single InteGrade cluster (the paper's intra-cluster
//! architecture: GRM + Trader on the cluster-manager node, an LRM with NCC
//! policy and LUPA collection on every provider node), submits a sequential
//! application through the ASCT API, and prints the component inventory,
//! the job lifecycle, and the built-in observability views: the causal
//! trace of the part and a slice of the Prometheus metrics dump.
//!
//! Run with: `cargo run --example quickstart`

use integrade::prelude::*;

fn main() {
    // Figure 1: a cluster of shared desktops plus one dedicated node.
    let mut nodes: Vec<NodeSetup> = (0..6).map(|_| NodeSetup::idle_desktop()).collect();
    nodes.push(NodeSetup::dedicated());

    // The validated fluent front door; default_5min() names the defaults.
    let config = GridConfig::builder().seed(42).max_candidates(16).build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(nodes);
    let mut grid = builder.build();

    println!("== InteGrade cluster (Figure 1 inventory) ==");
    println!("cluster-manager node : GRM + Trader + GUPA (1)");
    println!("resource providers   : {}", grid.node_count());
    for i in 0..grid.node_count() {
        let lrm = grid.lrm(NodeId(i as u32)).unwrap();
        println!(
            "  node{i}: {} MIPS, {} MB RAM, roles [{}], NCC cap {:.0}% CPU / {:.0}% RAM",
            lrm.resources.cpu_mips,
            lrm.resources.ram_mb,
            lrm.roles,
            lrm.policy.max_cpu_fraction * 100.0,
            lrm.policy.max_ram_fraction * 100.0,
        );
    }

    // Submit through the ASCT and run for one virtual hour. The typed
    // requirements compile to the §3 trader constraint string.
    println!("\n== Submitting 'hello-grid' (sequential, 150k MIPS-s) ==");
    let job = grid.submit(
        JobSpec::sequential("hello-grid", 150_000)
            .with_requirements([Requirement::MinRamMb(16), Requirement::MinCpuMips(500)]),
    );
    grid.run_until(SimTime::from_secs(3600));

    let record = grid.job_record(job).expect("job exists");
    println!("state      : {}", record.state);
    println!(
        "wait       : {}",
        record
            .wait_time()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "makespan   : {}",
        record
            .makespan()
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".into())
    );

    let report = grid.report();
    println!("\n== Protocol activity ==");
    println!("network messages     : {}", report.net.messages);
    println!("bytes on the wire    : {}", report.net.bytes);
    println!("status updates (GRM) : {}", report.updates.accepted);
    println!("trader queries       : {}", report.trader_queries);
    println!("owner cap violations : {}", report.qos.cap_violations);

    // The causal trace of part 0, reconstructed from the span recorder:
    // every negotiation RPC keyed on its protocol request id.
    println!("\n== Causal trace of part 0 ==");
    for tree in grid.part_span_tree(job, 0) {
        print!("{}", tree.render());
    }

    // A slice of the metrics registry, in Prometheus text exposition.
    println!("\n== Metrics (Prometheus text, first lines) ==");
    let snapshot = grid.metrics_snapshot();
    for line in snapshot.to_prometheus().lines().take(8) {
        println!("  {line}");
    }

    println!("\n== Lifecycle trace ==");
    for record in grid.log().records().iter().take(12) {
        println!("  {record}");
    }
}
