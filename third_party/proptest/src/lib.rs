//! Miniature property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! Differences from real proptest: no shrinking (failures report the test
//! name, case number and seed so a run is reproducible by reading the
//! panic message), and string strategies support a regex *subset* (char
//! classes with ranges, literals, groups, `{m,n}` repetition) — exactly the
//! shapes used in this repository's tests.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirroring the `prop` re-export in proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __proptest_rng);)*
                let __proptest_outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                __proptest_outcome
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report case number and seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both `{:?}`)",
            left
        );
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
