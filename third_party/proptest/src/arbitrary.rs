//! `any::<T>()` support for the primitive types the workspace tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Full-range generator for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! arbitrary_prim {
    ($($ty:ty => |$rng:ident| $gen:expr;)+) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;

            fn new_value(&self, $rng: &mut TestRng) -> $ty {
                $gen
            }
        }

        impl Arbitrary for $ty {
            type Strategy = Any<$ty>;

            fn arbitrary() -> Any<$ty> {
                Any(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_prim! {
    bool => |rng| rng.next_bool();
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u32();
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u32() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
    // Finite doubles only: wire formats and comparisons in this workspace
    // treat NaN as out of contract.
    f64 => |rng| (rng.unit_f64() - 0.5) * 2e18;
    char => |rng| {
        // Printable ASCII keeps generated text readable in failure reports.
        (b' ' + rng.below(95) as u8) as char
    };
}
