//! Value-generation strategies.
//!
//! A strategy generates one value per call from the runner's [`TestRng`];
//! there is no shrinking, so strategies are plain generator objects and
//! [`BoxedStrategy`] is a cheap `Rc` clone.

use std::rc::Rc;

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    /// Generates one value for the current test case.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive values: wraps this leaf strategy `depth` times with
    /// `recurse`, mixing the leaf back in at every level so generated trees
    /// stay shallow. The `_desired_size`/`_expected_branch` knobs exist for
    /// API parity only.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = OneOf::new(vec![leaf.clone(), recurse(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erases the strategy behind an `Rc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between type-erased strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans here always fit u64 (the widest source type is 64-bit).
                let off = rng.below(span as u64) as i128;
                (self.start as i128 + off) as $ty
            }
        }

        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $ty;
                }
                let off = rng.below(span as u64) as i128;
                (start as i128 + off) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategy from a regex subset (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
