//! Case runner and deterministic RNG for the miniature proptest.

/// Deterministic RNG (splitmix64) used to drive strategies.
///
/// Each test case gets its own seed derived from the test name and case
/// index so a failure message alone is enough to reproduce the case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Error type returned by failing property-test cases.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
    /// Input rejected (kept for API parity; the mini runner treats it as
    /// a skipped case).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful for the mini runner.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index, so every test
    // gets an independent deterministic stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Drives `body` over `config.cases` generated inputs, panicking with a
/// reproducible report on the first failure.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        let seed = seed_for(test_name, case);
        let mut rng = TestRng::from_seed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest `{test_name}` failed at case {case} (seed {seed:#x}): {msg}")
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!("proptest `{test_name}` panicked at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}
