//! Collection strategies (`vec`, `btree_set`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Element-count bound accepted by the collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set below `target`; bound the retries so a
        // narrow element domain cannot loop forever.
        let mut attempts = 0;
        while out.len() < target && attempts < target.saturating_mul(8) + 16 {
            out.insert(self.element.new_value(rng));
            attempts += 1;
        }
        out
    }
}
