//! String generation from a regex subset.
//!
//! Supported syntax: literal characters, `\`-escapes, character classes
//! with ranges (`[a-z0-9_.-]`), groups `(...)`, and the quantifiers
//! `{n}`, `{m,n}`, `?`, `*`, `+` (the open-ended ones capped at 8
//! repetitions). This covers every string strategy in the workspace; an
//! unsupported pattern panics loudly rather than generating garbage.

use crate::test_runner::TestRng;

enum Node {
    Lit(char),
    /// Expanded character class.
    Class(Vec<char>),
    Seq(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let node = parse(pattern);
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(chars) => {
            let idx = rng.below(chars.len() as u64) as usize;
            out.push(chars[idx]);
        }
        Node::Seq(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = min + rng.below((max - min + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn parse(pattern: &str) -> Node {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let node = parse_seq(pattern, &chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {pattern:?}: trailing input at byte {pos}"
    );
    node
}

fn parse_seq(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    let mut nodes = Vec::new();
    while *pos < chars.len() && chars[*pos] != ')' {
        let atom = parse_atom(pattern, chars, pos);
        nodes.push(parse_quantifier(pattern, chars, pos, atom));
    }
    Node::Seq(nodes)
}

fn parse_atom(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '[' => {
            *pos += 1;
            parse_class(pattern, chars, pos)
        }
        '(' => {
            *pos += 1;
            let inner = parse_seq(pattern, chars, pos);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "unsupported regex pattern {pattern:?}: unclosed group"
            );
            *pos += 1;
            inner
        }
        '\\' => {
            *pos += 1;
            assert!(
                *pos < chars.len(),
                "unsupported regex pattern {pattern:?}: dangling escape"
            );
            let c = chars[*pos];
            *pos += 1;
            Node::Lit(c)
        }
        c => {
            assert!(
                !matches!(c, '|' | '*' | '+' | '?' | '{' | '.' | '^' | '$'),
                "unsupported regex pattern {pattern:?}: metacharacter {c:?}"
            );
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Node {
    let mut set = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let c = if chars[*pos] == '\\' {
            *pos += 1;
            chars[*pos]
        } else {
            chars[*pos]
        };
        // A `-` between two class members forms a range; leading or
        // trailing `-` is a literal.
        if *pos + 2 < chars.len() && chars[*pos + 1] == '-' && chars[*pos + 2] != ']' {
            let end = chars[*pos + 2];
            assert!(
                c <= end,
                "unsupported regex pattern {pattern:?}: inverted range {c}-{end}"
            );
            for v in c as u32..=end as u32 {
                set.push(char::from_u32(v).unwrap());
            }
            *pos += 3;
        } else {
            set.push(c);
            *pos += 1;
        }
    }
    assert!(
        *pos < chars.len(),
        "unsupported regex pattern {pattern:?}: unclosed character class"
    );
    *pos += 1; // consume ']'
    assert!(
        !set.is_empty(),
        "unsupported regex pattern {pattern:?}: empty character class"
    );
    Node::Class(set)
}

fn parse_quantifier(pattern: &str, chars: &[char], pos: &mut usize, atom: Node) -> Node {
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 8)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, 8)
        }
        '{' => {
            *pos += 1;
            let start = *pos;
            while *pos < chars.len() && chars[*pos] != '}' {
                *pos += 1;
            }
            assert!(
                *pos < chars.len(),
                "unsupported regex pattern {pattern:?}: unclosed quantifier"
            );
            let body: String = chars[start..*pos].iter().collect();
            *pos += 1; // consume '}'
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| {
                        panic!("unsupported regex pattern {pattern:?}: bad quantifier {body:?}")
                    }),
                    hi.trim().parse().unwrap_or_else(|_| {
                        panic!("unsupported regex pattern {pattern:?}: bad quantifier {body:?}")
                    }),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or_else(|_| {
                        panic!("unsupported regex pattern {pattern:?}: bad quantifier {body:?}")
                    });
                    (n, n)
                }
            };
            assert!(
                min <= max,
                "unsupported regex pattern {pattern:?}: inverted quantifier {body:?}"
            );
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn class_with_ranges_and_trailing_dash() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[a-zA-Z0-9 _.-]{0,24}", &mut r);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.-".contains(c)));
        }
    }

    #[test]
    fn grouped_repetition() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[a-z]{1,6}(/[a-z]{1,6}){0,2}", &mut r);
            let parts: Vec<&str> = s.split('/').collect();
            assert!((1..=3).contains(&parts.len()), "{s:?}");
            for p in parts {
                assert!((1..=6).contains(&p.len()), "{s:?}");
                assert!(p.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn printable_ascii_space_to_tilde() {
        let mut r = rng();
        for _ in 0..64 {
            let s = generate("[ -~]{0,32}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
