//! Offline stand-in for `serde`: marker traits plus no-op derives.
//!
//! The workspace tags types with `#[derive(Serialize, Deserialize)]` for
//! forward compatibility but performs all real marshalling through the
//! in-tree CDR implementation, so empty traits with blanket impls preserve
//! every use site (including generic `T: Serialize` bounds) without any
//! serialization machinery.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Namespace parity with `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace parity with `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
