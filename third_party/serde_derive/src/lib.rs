//! No-op derive macros for the offline `serde` shim.
//!
//! The workspace derives `Serialize`/`Deserialize` for forward compatibility
//! but never serializes through serde (wire marshalling is the in-tree CDR
//! implementation), so the derives only need to *accept* the syntax — the
//! blanket impls in the `serde` shim make every type satisfy the traits.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
