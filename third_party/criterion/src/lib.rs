//! Miniature benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses.
//!
//! Measurements are real: each benchmark is warmed up, the per-iteration
//! cost is calibrated to a target sample duration, and min/median/mean/max
//! across samples are printed. There is no statistical regression analysis,
//! plotting, or HTML report — numbers go to stdout, and the experiments
//! binary is the machine-readable path.

use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
const DEFAULT_SAMPLES: usize = 60;

/// Benchmark registry and CLI filter, mirroring `criterion::Criterion`.
pub struct Criterion {
    filters: Vec<String>,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench` (and test harness
        // flags when run under `cargo test`); ignore flags, and treat bare
        // words as substring filters like criterion does.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            filters,
            sample_count: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id.to_string(), self.sample_count, f);
        self
    }

    fn matches_filter(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    fn run_one<F>(&self, id: String, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches_filter(&id) {
            return;
        }
        let mut bencher = Bencher {
            samples,
            stats: None,
        };
        f(&mut bencher);
        match bencher.stats {
            Some(s) => println!(
                "{id:<50} time: [min {} median {} mean {} max {}] ({} samples x {} iters)",
                fmt_ns(s.min),
                fmt_ns(s.median),
                fmt_ns(s.mean),
                fmt_ns(s.max),
                s.samples,
                s.iters_per_sample,
            ),
            None => println!("{id:<50} (no measurement: bencher closure never called iter)"),
        }
    }
}

/// Grouped benchmarks sharing a name prefix and sample-count override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(full, samples, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        self.criterion.run_one(full, samples, |b| f(b));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (`function/parameter` path segment).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    stats: Option<Stats>,
}

#[derive(Clone, Copy)]
struct Stats {
    min: f64,
    median: f64,
    mean: f64,
    max: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// How much setup output to batch per timing run; only `SmallInput`
/// semantics are implemented (one setup per iteration, setup untimed).
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and calibrate how many iterations fill a sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            times.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        self.stats = Some(summarize(&mut times, iters));
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut timed = Duration::ZERO;
        while warm_start.elapsed() < WARMUP {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            timed += t.elapsed();
            warm_iters += 1;
        }
        let per_iter = (timed.as_secs_f64() / warm_iters as f64).max(1e-9);
        let iters = ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1);

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut sample = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                sample += t.elapsed();
            }
            times.push(sample.as_secs_f64() * 1e9 / iters as f64);
        }
        self.stats = Some(summarize(&mut times, iters));
    }
}

fn summarize(times: &mut [f64], iters_per_sample: u64) -> Stats {
    times.sort_by(|a, b| a.total_cmp(b));
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    Stats {
        min: times[0],
        median: times[times.len() / 2],
        mean,
        max: times[times.len() - 1],
        samples: times.len(),
        iters_per_sample,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Defines the benchmark-group entry function, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main`, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
