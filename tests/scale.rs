//! Scale smoke test: a loaded 60-node campus day runs deterministically and
//! the protocol/QoS invariants hold at size.

use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::core::scheduler::Strategy;
use integrade::simnet::rng::DetRng;
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::workload::apps::{generate_stream, WorkloadConfig};
use integrade::workload::desktop::{generate_trace, Archetype, TraceConfig};

#[test]
fn sixty_node_campus_day() {
    let trace_cfg = TraceConfig {
        weeks: 1,
        ..Default::default()
    };
    let mut rng = DetRng::new(6001);
    let config = GridConfig::builder()
        .strategy(Strategy::PatternAware)
        .gupa_warmup_days(7)
        .seed(6001)
        .build();
    let mut builder = GridBuilder::new(config);
    for cluster in 0..3 {
        let nodes: Vec<NodeSetup> = (0..20u64)
            .map(|i| {
                let archetype = match (cluster * 20 + i) % 4 {
                    0 => Archetype::OfficeWorker,
                    1 => Archetype::LabMachine,
                    2 => Archetype::Spare,
                    _ => Archetype::NightOwl,
                };
                NodeSetup {
                    trace: generate_trace(archetype, &trace_cfg, &mut rng.fork(cluster * 100 + i)),
                    ..NodeSetup::idle_desktop()
                }
            })
            .collect();
        builder.add_cluster(nodes);
    }
    let mut grid = builder.build();

    let workload = WorkloadConfig {
        mean_interarrival: SimDuration::from_mins(15),
        ..Default::default()
    };
    let mut wl_rng = DetRng::new(42);
    let submissions = generate_stream(
        &workload,
        SimTime::from_secs(600),
        SimDuration::from_hours(20),
        &mut wl_rng,
    );
    let total = submissions.len();
    assert!(total >= 50, "expected a loaded day, got {total} jobs");
    for (at, spec) in submissions {
        grid.submit_at(spec, at);
    }
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(40));

    let report = grid.report();
    // The campus absorbs the bulk of the load within the horizon.
    assert!(
        report.completed() * 10 >= total * 9,
        "completed {}/{total}",
        report.completed()
    );
    assert_eq!(
        report.failed(),
        0,
        "{:?}",
        report
            .records
            .iter()
            .filter(|r| r.state == integrade::core::asct::JobState::Failed)
            .collect::<Vec<_>>()
    );
    // Invariants at scale.
    assert_eq!(report.qos.cap_violations, 0);
    assert_eq!(report.qos.mean_slowdown(), 1.0);
    assert!(
        report.updates.accepted > 50_000,
        "updates={}",
        report.updates.accepted
    );
    assert!(report.gupa_models >= 40, "models={}", report.gupa_models);
}
