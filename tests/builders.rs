//! Builder parity: the fluent `GridConfig::builder()` / `JobSpec::with_*`
//! front doors must be *pure sugar* — for every reachable combination of
//! settings they produce exactly the value the raw struct-literal path
//! produces, and a grid assembled from either config behaves identically.
//!
//! The structs keep their `pub` fields on purpose (existing literals
//! compile forever); these properties are the contract that the two
//! construction styles can never drift apart.

use integrade::core::asct::{JobRequirements, JobSpec, Requirement, SchedulingPreference};
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade::core::types::Platform;
use integrade::simnet::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Tick values that satisfy the builder's divides-a-day invariant.
const VALID_TICK_MINS: [u32; 8] = [1, 2, 5, 10, 15, 30, 60, 120];

fn preference() -> impl Strategy<Value = SchedulingPreference> {
    prop_oneof![
        Just(SchedulingPreference::FastestCpu),
        Just(SchedulingPreference::MostFreeRam),
        Just(SchedulingPreference::LeastLoaded),
        Just(SchedulingPreference::LongestPredictedIdle),
        Just(SchedulingPreference::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every builder chain equals the struct literal carrying the same
    /// values (compared through `Debug`, which covers every field —
    /// `GridConfig` aggregates non-`PartialEq` sub-configs).
    #[test]
    fn grid_config_builder_matches_struct_literal(
        seed in any::<u64>(),
        tick_idx in 0usize..VALID_TICK_MINS.len(),
        max_candidates in 1usize..64,
        max_attempts in 1u32..8,
        delta in any::<bool>(),
        failover in any::<bool>(),
        checkpoint in prop_oneof![Just(0.0f64), Just(500.0), Just(30_000.0)],
        replication in 0usize..5,
        retransmits in 0u32..6,
        state_bytes in 1u64..1_000_000,
        timeout_s in 1u64..600,
        silence_s in 60u64..7_200,
        warmup in 0usize..3,
        horizon_mins in 5u32..240,
    ) {
        let tick_mins = VALID_TICK_MINS[tick_idx];
        let built = GridConfig::builder()
            .seed(seed)
            .tick_mins(tick_mins)
            .max_candidates(max_candidates)
            .max_attempts(max_attempts)
            .delta_suppression(delta)
            .candidate_failover(failover)
            .sequential_checkpoint_mips_s(checkpoint)
            .replication_factor(replication)
            .max_retransmits(retransmits)
            .checkpoint_state_bytes(state_bytes)
            .request_timeout(SimDuration::from_secs(timeout_s))
            .crash_silence(SimDuration::from_secs(silence_s))
            .gupa_warmup_days(warmup)
            .prediction_horizon_mins(horizon_mins)
            .tick_mode(TickMode::ActiveSet)
            .build();

        let mut lrm = GridConfig::default().lrm;
        lrm.sampling.interval_mins = tick_mins;
        lrm.delta_suppression = delta;
        let literal = GridConfig {
            seed,
            tick: SimDuration::from_mins(u64::from(tick_mins)),
            lrm,
            max_candidates,
            max_attempts,
            candidate_failover: failover,
            sequential_checkpoint_mips_s: checkpoint,
            replication_factor: replication,
            max_retransmits: retransmits,
            checkpoint_state_bytes: state_bytes,
            request_timeout: SimDuration::from_secs(timeout_s),
            crash_silence: SimDuration::from_secs(silence_s),
            gupa_warmup_days: warmup,
            prediction_horizon_mins: horizon_mins,
            tick_mode: TickMode::ActiveSet,
            ..GridConfig::default()
        };

        prop_assert_eq!(format!("{built:?}"), format!("{literal:?}"));
    }

    /// The fluent `JobSpec` API equals hand-assembled requirements: the
    /// typed `Requirement` list folds to the same `JobRequirements`, the
    /// preference lands, and `with_requirement` layers on top rather than
    /// replacing.
    #[test]
    fn job_spec_fluent_api_matches_struct_assembly(
        ram in 0u64..4_096,
        mips in 0u64..10_000,
        want_platform in any::<bool>(),
        extra in prop_oneof![
            Just(None),
            Just(Some("free_cpu >= 0.5".to_owned())),
        ],
        pref in preference(),
        work in 1u64..1_000_000,
    ) {
        let mut reqs = vec![
            Requirement::MinRamMb(ram),
            Requirement::MinCpuMips(mips),
        ];
        if want_platform {
            reqs.push(Requirement::Platform(Platform::linux_x86()));
        }
        if let Some(clause) = &extra {
            reqs.push(Requirement::Constraint(clause.clone()));
        }
        let fluent = JobSpec::sequential("parity", work)
            .with_requirements(reqs.clone())
            .with_preference(pref);

        let mut manual = JobSpec::sequential("parity", work);
        manual.requirements = JobRequirements {
            platform: want_platform.then(Platform::linux_x86),
            min_ram_mb: ram,
            min_cpu_mips: mips,
            extra_constraint: extra,
        };
        manual.preference = pref;

        prop_assert_eq!(&fluent, &manual);

        // Layering: appending one requirement only touches its field.
        let layered = fluent.clone().with_requirement(Requirement::MinRamMb(ram + 1));
        prop_assert_eq!(layered.requirements.min_ram_mb, ram + 1);
        prop_assert_eq!(layered.requirements.min_cpu_mips, mips);
        prop_assert_eq!(layered.preference, pref);
    }
}

/// `default_5min()` is `default()` under its honest name, and a grid built
/// from either runs bit-for-bit identically.
#[test]
fn default_5min_is_default_at_runtime() {
    let run = |config: GridConfig| {
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..3).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        grid.submit(JobSpec::sequential("probe", 20_000));
        grid.run_until(SimTime::from_secs(3_600));
        (grid.log().records().to_vec(), grid.report().records)
    };
    let named = run(GridConfig::default_5min());
    let default = run(GridConfig::default());
    let built = run(GridConfig::builder().build());
    assert_eq!(named, default, "default_5min diverged from default");
    assert_eq!(named, built, "builder defaults diverged from default");
}

/// The builder's validation actually gates `build()`: the exact invalid
/// combinations the docs promise to reject are rejected, and everything a
/// valid chain produces passes `try_build`.
#[test]
fn invalid_combinations_are_rejected() {
    assert!(GridConfig::builder().tick_mins(0).try_build().is_err());
    assert!(
        GridConfig::builder().tick_mins(7).try_build().is_err(),
        "7 does not divide 1440"
    );
    assert!(GridConfig::builder().max_candidates(0).try_build().is_err());
    assert!(GridConfig::builder().max_attempts(0).try_build().is_err());
    assert!(GridConfig::builder()
        .sequential_checkpoint_mips_s(-1.0)
        .try_build()
        .is_err());
    assert!(GridConfig::builder()
        .sequential_checkpoint_mips_s(f64::INFINITY)
        .try_build()
        .is_err());
}
