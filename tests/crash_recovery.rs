//! Node-crash recovery: §3's "resume the application in case of crashes",
//! driven by negotiation timeouts, GRM-side crash detection and the
//! checkpoint repository fed by status updates.

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::core::types::NodeId;
use integrade::simnet::time::{SimDuration, SimTime};

/// The same seed matrix the chaos suite uses: a small default set for
/// `cargo test`, widened in CI via `CHAOS_SEEDS`.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => {
            let seeds: Vec<u64> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!seeds.is_empty(), "CHAOS_SEEDS set but empty: {spec:?}");
            seeds
        }
        Err(_) => vec![1, 2, 3, 4],
    }
}

fn grid_seeded(nodes: usize, seed: u64) -> integrade::core::grid::Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0) // checkpoint every ~200 s of grid CPU
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

#[test]
fn crash_during_execution_recovers_from_repository() {
    for seed in chaos_seeds() {
        let mut grid = grid_seeded(3, seed);
        // A long sequential job (~2 h at the 150-MIPS grid share).
        let job = grid.submit(JobSpec::sequential("long", 1_000_000));
        grid.run_until(SimTime::from_secs(1800)); // 30 min of progress
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Running, "seed {seed}");

        // Find and crash the hosting node.
        let host_node = (0..grid.node_count() as u32)
            .map(NodeId)
            .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
            .expect("job is running somewhere");
        grid.crash_node(host_node);

        grid.run_until(SimTime::from_secs(6 * 3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        assert!(grid.log().count("grm.node_dead") >= 1, "crash detected");
        assert_eq!(record.evictions, 1, "seed {seed}: one eviction");
        // Checkpoint repository limited the redo: the job finished well
        // before a from-scratch restart would allow (restart-at-detection
        // would need ~2 h after the ~32-min detection point; give slack
        // for negotiation).
        let makespan = record.makespan().unwrap();
        assert!(
            makespan < SimDuration::from_secs(2 * 3600 + 45 * 60),
            "seed {seed}: repository checkpoint avoided a full redo: {makespan}"
        );
    }
}

#[test]
fn crash_without_checkpointing_restarts_from_zero() {
    for seed in chaos_seeds() {
        let config = GridConfig::builder()
            .seed(seed)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(0.0) // no checkpoints at all
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..2).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        let job = grid.submit(JobSpec::sequential("fragile", 400_000));
        grid.run_until(SimTime::from_secs(1200));
        let host_node = (0..2u32)
            .map(NodeId)
            .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
            .expect("running");
        grid.crash_node(host_node);
        grid.run_until(SimTime::from_secs(4 * 3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        // Without checkpoints the repository holds nothing: full restart,
        // so the makespan exceeds crash time + full job duration (~45 min
        // at 150 MIPS).
        assert!(
            record.makespan().unwrap() > SimDuration::from_secs(1200 + 2400),
            "seed {seed}"
        );
    }
}

#[test]
fn crash_during_negotiation_times_out_and_fails_over() {
    for seed in chaos_seeds() {
        let mut grid = grid_seeded(3, seed);
        // Crash node 0 *before* submitting: the GRM's initial trader view
        // may still pick it; the reserve request then times out and fails
        // over.
        grid.run_until(SimTime::from_secs(60)); // initial updates arrive
        grid.crash_node(NodeId(0));
        let job = grid.submit(JobSpec::sequential("probe", 50_000));
        grid.run_until(SimTime::from_secs(3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        // The job never wedged even if the dead node was tried first.
    }
}

#[test]
fn bsp_gang_survives_a_member_crash() {
    for seed in chaos_seeds() {
        let config = GridConfig::builder().seed(seed).gupa_warmup_days(0).build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..5).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        // Checkpoint every 10 supersteps (JobSpec::bsp default).
        let job = grid.submit(JobSpec::bsp("gang", 3, 200, 10_000, 8_192));
        grid.run_until(SimTime::from_secs(3600));
        let host_node = (0..5u32)
            .map(NodeId)
            .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
            .expect("gang running");
        grid.crash_node(host_node);
        grid.run_until(SimTime::from_secs(30 * 3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        assert!(grid.log().count("job.rollback") >= 1, "seed {seed}");
    }
}

#[test]
fn restored_node_rejoins_the_grid() {
    for seed in chaos_seeds() {
        let mut grid = grid_seeded(2, seed);
        grid.run_until(SimTime::from_secs(60));
        grid.crash_node(NodeId(0));
        grid.run_until(SimTime::from_secs(600));
        assert!(grid.log().count("grm.node_dead") >= 1, "seed {seed}");
        grid.restore_node(NodeId(0));
        // After reboot its LRM resumes updates and it schedules work again.
        grid.run_until(SimTime::from_secs(1500));
        let job = grid.submit(JobSpec::bag_of_tasks("post-reboot", 4, 30_000));
        grid.run_until(SimTime::from_secs(3 * 3600));
        assert_eq!(
            grid.job_record(job).unwrap().state,
            JobState::Completed,
            "seed {seed}"
        );
    }
}

/// A crashed executor's part resumes from a *replica* LRM's copy: the
/// recovery fetch is visible in the log and the makespan shows the banked
/// checkpoint was actually honoured.
#[test]
fn recovery_reads_a_replica_not_the_dead_node() {
    for seed in chaos_seeds() {
        let mut grid = grid_seeded(4, seed);
        let job = grid.submit(JobSpec::sequential("replicated", 800_000));
        grid.run_until(SimTime::from_secs(1800));
        let holders = grid.replica_holders(job, 0);
        assert!(
            !holders.is_empty(),
            "seed {seed}: replicas must be announced to the GRM"
        );
        let executor = (0..grid.node_count() as u32)
            .map(NodeId)
            .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
            .expect("running somewhere");
        assert!(
            !holders.contains(&executor),
            "seed {seed}: the executor must never hold its own replica"
        );
        grid.crash_node(executor);
        grid.run_until(SimTime::from_secs(8 * 3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        assert!(
            grid.log().count("repo.fetch") >= 1,
            "seed {seed}: recovery must read a digest-verified replica copy"
        );
        assert!(
            grid.log().count("repo.store") >= 1,
            "seed {seed}: interval boundaries must have shipped replicas"
        );
    }
}
