//! Node-crash recovery: §3's "resume the application in case of crashes",
//! driven by negotiation timeouts, GRM-side crash detection and the
//! checkpoint repository fed by status updates.

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::core::types::NodeId;
use integrade::simnet::time::{SimDuration, SimTime};

fn grid(nodes: usize) -> integrade::core::grid::Grid {
    let config = GridConfig {
        gupa_warmup_days: 0,
        sequential_checkpoint_mips_s: 30_000.0, // checkpoint every ~200 s of grid CPU
        ..Default::default()
    };
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

#[test]
fn crash_during_execution_recovers_from_repository() {
    let mut grid = grid(3);
    // A long sequential job (~2 h at the 150-MIPS grid share).
    let job = grid.submit(JobSpec::sequential("long", 1_000_000));
    grid.run_until(SimTime::from_secs(1800)); // 30 min of progress
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Running);

    // Find and crash the hosting node.
    let host_node = (0..grid.node_count() as u32)
        .map(NodeId)
        .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
        .expect("job is running somewhere");
    grid.crash_node(host_node);

    grid.run_until(SimTime::from_secs(6 * 3600));
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    assert!(grid.log().count("grm.node_dead") >= 1, "crash detected");
    assert_eq!(record.evictions, 1, "crash counted as one eviction");
    // Checkpoint repository limited the redo: the job finished well before
    // a from-scratch restart would allow (restart-at-detection would need
    // ~2 h after the ~32-min detection point; give slack for negotiation).
    let makespan = record.makespan().unwrap();
    assert!(
        makespan < SimDuration::from_secs(2 * 3600 + 45 * 60),
        "repository checkpoint avoided a full redo: {makespan}"
    );
}

#[test]
fn crash_without_checkpointing_restarts_from_zero() {
    let config = GridConfig {
        gupa_warmup_days: 0,
        sequential_checkpoint_mips_s: 0.0, // no checkpoints at all
        ..Default::default()
    };
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..2).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    let job = grid.submit(JobSpec::sequential("fragile", 400_000));
    grid.run_until(SimTime::from_secs(1200));
    let host_node = (0..2u32)
        .map(NodeId)
        .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
        .expect("running");
    grid.crash_node(host_node);
    grid.run_until(SimTime::from_secs(4 * 3600));
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    // Without checkpoints the repository holds 0: full restart, so the
    // makespan exceeds crash time + full job duration (~45 min at 150 MIPS).
    assert!(record.makespan().unwrap() > SimDuration::from_secs(1200 + 2400));
}

#[test]
fn crash_during_negotiation_times_out_and_fails_over() {
    let mut grid = grid(3);
    // Crash node 0 *before* submitting: the GRM's initial trader view may
    // still pick it; the reserve request then times out and fails over.
    grid.run_until(SimTime::from_secs(60)); // initial updates arrive
    grid.crash_node(NodeId(0));
    let job = grid.submit(JobSpec::sequential("probe", 50_000));
    grid.run_until(SimTime::from_secs(3600));
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    // The job never wedged even if the dead node was tried first.
}

#[test]
fn bsp_gang_survives_a_member_crash() {
    let config = GridConfig {
        gupa_warmup_days: 0,
        ..Default::default()
    };
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..5).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    // Checkpoint every 10 supersteps (JobSpec::bsp default).
    let job = grid.submit(JobSpec::bsp("gang", 3, 200, 10_000, 8_192));
    grid.run_until(SimTime::from_secs(3600));
    let host_node = (0..5u32)
        .map(NodeId)
        .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
        .expect("gang running");
    grid.crash_node(host_node);
    grid.run_until(SimTime::from_secs(30 * 3600));
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    assert!(grid.log().count("job.rollback") >= 1, "gang rolled back");
}

#[test]
fn restored_node_rejoins_the_grid() {
    let mut grid = grid(2);
    grid.run_until(SimTime::from_secs(60));
    grid.crash_node(NodeId(0));
    grid.run_until(SimTime::from_secs(600));
    assert!(grid.log().count("grm.node_dead") >= 1);
    grid.restore_node(NodeId(0));
    // After reboot its LRM resumes updates and it schedules work again.
    grid.run_until(SimTime::from_secs(1500));
    let job = grid.submit(JobSpec::bag_of_tasks("post-reboot", 4, 30_000));
    grid.run_until(SimTime::from_secs(3 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
}
