//! End-to-end grid lifecycle tests spanning simnet + orb + usage + core.

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::core::scheduler::Strategy;
use integrade::simnet::rng::DetRng;
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::usage::sample::{UsageSample, Weekday};
use integrade::workload::desktop::{generate_trace, Archetype, TraceConfig};

fn office_trace() -> Vec<UsageSample> {
    let mut trace = Vec::with_capacity(288 * 7);
    for day in 0..7u64 {
        let weekday = Weekday::from_day_number(day);
        for slot in 0..288 {
            let hour = slot as f64 / 12.0;
            let busy = !weekday.is_weekend() && (9.0..18.0).contains(&hour);
            trace.push(if busy {
                UsageSample::new(0.8, 0.5, 0.05, 0.05)
            } else {
                UsageSample::new(0.02, 0.05, 0.0, 0.0)
            });
        }
    }
    trace
}

fn grid_with(
    strategy: Strategy,
    office_nodes: usize,
    idle_nodes: usize,
) -> integrade::core::grid::Grid {
    let config = GridConfig::builder()
        .strategy(strategy)
        .gupa_warmup_days(14)
        .build();
    let mut builder = GridBuilder::new(config);
    let mut nodes = Vec::new();
    for _ in 0..office_nodes {
        nodes.push(NodeSetup {
            trace: office_trace(),
            ..NodeSetup::idle_desktop()
        });
    }
    for _ in 0..idle_nodes {
        nodes.push(NodeSetup::idle_desktop());
    }
    builder.add_cluster(nodes);
    builder.build()
}

#[test]
fn mixed_workload_completes_across_a_virtual_day() {
    let mut grid = grid_with(Strategy::AvailabilityOnly, 2, 4);
    let jobs = vec![
        grid.submit(JobSpec::sequential("seq", 100_000)),
        grid.submit(JobSpec::bag_of_tasks("bag", 6, 60_000)),
        grid.submit(JobSpec::bsp("bsp", 3, 30, 2_000, 8_192)),
    ];
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(24));
    for job in jobs {
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "{record:?}");
    }
    let report = grid.report();
    assert_eq!(report.completed(), 3);
    assert_eq!(report.qos.cap_violations, 0, "NCC invariant");
}

#[test]
fn pattern_aware_avoids_nodes_about_to_be_reclaimed() {
    // Friday 08:30 submission: office nodes are idle *now* but reclaimed at
    // 09:00. Pattern-aware scheduling should prefer the always-idle spares
    // and suffer fewer evictions than availability-only over many jobs.
    let run = |strategy: Strategy| {
        let mut grid = grid_with(strategy, 6, 6);
        // Advance to Friday 08:30 (day 4).
        let submit_at =
            SimTime::ZERO + SimDuration::from_days(4) + SimDuration::from_mins(8 * 60 + 30);
        for i in 0..6 {
            grid.submit_at(
                JobSpec::sequential(&format!("job{i}"), 400_000), // ~45 min at 150 MIPS
                submit_at,
            );
        }
        grid.run_until(submit_at + SimDuration::from_hours(16));
        grid.report()
    };
    let aware = run(Strategy::PatternAware);
    let blind = run(Strategy::AvailabilityOnly);
    assert!(
        aware.total_evictions() <= blind.total_evictions(),
        "pattern-aware {} vs availability-only {}",
        aware.total_evictions(),
        blind.total_evictions()
    );
    assert_eq!(aware.completed(), 6);
}

#[test]
fn eviction_recovery_preserves_correct_completion() {
    let mut grid = grid_with(Strategy::AvailabilityOnly, 3, 1);
    // Submit at Monday 08:00; office nodes evict at 09:00.
    let submit_at = SimTime::ZERO + SimDuration::from_hours(8);
    grid.submit_at(JobSpec::bag_of_tasks("morning-bag", 8, 200_000), submit_at);
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(36));
    let report = grid.report();
    assert_eq!(report.completed(), 1, "{:?}", report.records);
    assert_eq!(report.qos.cap_violations, 0);
    assert_eq!(report.qos.mean_slowdown(), 1.0, "owners never slowed");
}

#[test]
fn realistic_archetype_traces_drive_the_grid() {
    let mut rng = DetRng::new(7);
    let trace_cfg = TraceConfig::default();
    let config = GridConfig::builder()
        .gupa_warmup_days(7)
        .strategy(Strategy::PatternAware)
        .build();
    let mut builder = GridBuilder::new(config);
    let nodes: Vec<NodeSetup> = [
        Archetype::OfficeWorker,
        Archetype::OfficeWorker,
        Archetype::LabMachine,
        Archetype::NightOwl,
        Archetype::Spare,
        Archetype::Spare,
    ]
    .iter()
    .map(|&a| NodeSetup {
        trace: generate_trace(a, &trace_cfg, &mut rng.fork(a as u64)),
        ..NodeSetup::idle_desktop()
    })
    .collect();
    builder.add_cluster(nodes);
    let mut grid = builder.build();
    for i in 0..4 {
        grid.submit_at(
            JobSpec::sequential(&format!("work{i}"), 150_000),
            SimTime::ZERO + SimDuration::from_hours(2 * i + 1),
        );
    }
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(24));
    let report = grid.report();
    assert_eq!(report.completed(), 4, "{:?}", report.records);
    assert!(report.gupa_models >= 4, "models trained from warmup");
}

#[test]
fn delta_suppression_reduces_update_traffic() {
    let run = |suppress: bool| {
        let config = GridConfig::builder()
            .gupa_warmup_days(0)
            .delta_suppression(suppress)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..8).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(2));
        grid.report().updates.accepted
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with * 10 < without,
        "idle nodes barely change: {with} vs {without}"
    );
}

#[test]
fn update_protocol_keeps_grm_fresh() {
    let mut grid = grid_with(Strategy::AvailabilityOnly, 0, 4);
    grid.run_until(SimTime::ZERO + SimDuration::from_mins(10));
    let report = grid.report();
    // 4 nodes, 30 s period, 10 min → ~80 updates.
    assert!(
        report.updates.accepted >= 60,
        "accepted={}",
        report.updates.accepted
    );
    assert_eq!(report.updates.stale_discarded, 0, "in-order delivery here");
}

#[test]
fn virtual_topology_request_end_to_end() {
    // A two-cluster grid; a BSP job requesting one 3-node group with a
    // 100 Mbps intra floor must land entirely inside one cluster — the §3
    // request exercised through the whole submission pipeline.
    use integrade::core::asct::{GroupRequest, TopologyRequest};
    let config = GridConfig::builder().gupa_warmup_days(0).build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..4).map(|_| NodeSetup::idle_desktop()).collect());
    builder.add_cluster((0..4).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();

    let mut spec = JobSpec::bsp("grouped", 3, 30, 2_000, 8_192);
    spec.topology = Some(TopologyRequest {
        groups: vec![GroupRequest {
            nodes: 3,
            min_intra_bps: 100_000_000,
        }],
        min_inter_bps: 0,
    });
    let job = grid.submit(spec);
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(12));
    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    // All three parts started on nodes of one cluster: node ids 0-3 are
    // cluster 0, 4-7 cluster 1; the log records the placements.
    let nodes: Vec<u32> = grid
        .log()
        .with_category("job.part_started")
        .map(|r| {
            r.detail
                .rsplit("node")
                .next()
                .unwrap()
                .parse::<u32>()
                .unwrap()
        })
        .collect();
    assert_eq!(nodes.len(), 3);
    let all_first = nodes.iter().all(|&n| n < 4);
    let all_second = nodes.iter().all(|&n| n >= 4);
    assert!(
        all_first || all_second,
        "gang must not straddle clusters: {nodes:?}"
    );
}

#[test]
fn infeasible_topology_request_fails_not_hangs() {
    use integrade::core::asct::{GroupRequest, TopologyRequest};
    let config = GridConfig::builder()
        .gupa_warmup_days(0)
        .max_attempts(3)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..3).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();
    let mut spec = JobSpec::bsp("impossible", 3, 5, 100, 100);
    spec.topology = Some(TopologyRequest {
        groups: vec![GroupRequest {
            nodes: 3,
            min_intra_bps: 10_000_000_000, // no 10 Gbps LAN exists
        }],
        min_inter_bps: 0,
    });
    let job = grid.submit(spec);
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(2));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Failed);
    assert!(grid.log().count("grm.topology_unsat") > 0);
}

#[test]
fn platform_prerequisites_filter_nodes_end_to_end() {
    use integrade::core::types::Platform;
    let config = GridConfig::builder().gupa_warmup_days(0).build();
    let mut builder = GridBuilder::new(config);
    // Nodes 0-1 linux-x86, node 2 solaris-sparc (faster, would win the
    // preference if eligible).
    let mut solaris = NodeSetup::idle_desktop();
    solaris.platform = Platform::solaris_sparc();
    solaris.resources.cpu_mips = 2000;
    builder.add_cluster(vec![
        NodeSetup::idle_desktop(),
        NodeSetup::idle_desktop(),
        solaris,
    ]);
    let mut grid = builder.build();

    let mut spec = JobSpec::sequential("linux-only", 30_000);
    spec.requirements.platform = Some(Platform::linux_x86());
    let job = grid.submit(spec);
    grid.run_until(SimTime::from_secs(3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    let placements: Vec<String> = grid
        .log()
        .with_category("job.part_started")
        .map(|r| r.detail.clone())
        .collect();
    assert!(
        placements.iter().all(|d| !d.ends_with("node2")),
        "the faster solaris node must be filtered by the prerequisite: {placements:?}"
    );

    // And a solaris-only job lands exactly there.
    let mut spec = JobSpec::sequential("solaris-only", 30_000);
    spec.requirements.platform = Some(Platform::solaris_sparc());
    let job = grid.submit(spec);
    grid.run_until(SimTime::from_secs(7200));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert!(grid
        .log()
        .with_category("job.part_started")
        .any(|r| r.detail.contains("solaris-only") || r.detail.ends_with("node2")));
}
