//! Chaos suite: the hardened negotiation protocol and GRM crash/recovery
//! under deterministic fault injection — message drops, latency jitter,
//! link partitions and host outages, all derived from the master seed.
//!
//! Every test asserts the same liveness invariant: **every submitted job
//! completes** despite the injected faults — no wedged `Running` jobs, no
//! leftover reservations, no double-reserved parts.
//!
//! The seed matrix defaults to a small set for `cargo test`; CI widens it
//! via the `CHAOS_SEEDS` environment variable (comma-separated u64s).

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade::core::types::NodeId;
use integrade::simnet::faults::{FaultPlan, HostOutage, Partition};
use integrade::simnet::time::{SimDuration, SimTime};

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => {
            let seeds: Vec<u64> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!seeds.is_empty(), "CHAOS_SEEDS set but empty: {spec:?}");
            seeds
        }
        Err(_) => vec![1, 2, 3, 4],
    }
}

fn chaos_grid(nodes: usize, seed: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// A small mixed workload: one long sequential job and one bag of tasks.
fn submit_workload(grid: &mut Grid) -> Vec<integrade::core::types::JobId> {
    vec![
        grid.submit(JobSpec::sequential("chaos-seq", 400_000)),
        grid.submit(JobSpec::bag_of_tasks("chaos-bag", 4, 90_000)),
    ]
}

/// The liveness invariant every chaos run must satisfy.
fn assert_all_completed(grid: &Grid, jobs: &[integrade::core::types::JobId], ctx: &str) {
    for job in jobs {
        let record = grid.job_record(*job).unwrap();
        assert_eq!(
            record.state,
            JobState::Completed,
            "{ctx}: job {job} wedged: {record:?}"
        );
    }
    // Nothing left behind on any node: no orphaned running parts, no
    // leaked reservations (leases must have reclaimed any orphans).
    for n in 0..grid.node_count() as u32 {
        let lrm = grid.lrm(NodeId(n)).unwrap();
        assert!(
            lrm.running().is_empty(),
            "{ctx}: node {n} still runs parts after completion"
        );
        assert!(
            lrm.reservations().is_empty(),
            "{ctx}: node {n} leaked reservations"
        );
    }
}

#[test]
fn jobs_complete_under_default_chaos() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(0.05)
                .with_jitter(SimDuration::from_millis(50)),
        );
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(12 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, 5% drop"));
        assert!(
            grid.report().net.drops > 0,
            "seed {seed}: the fault plan injected no drops"
        );
    }
}

#[test]
fn heavy_loss_is_absorbed_by_retransmission_and_dedup() {
    let mut total_retransmits = 0u64;
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        grid.set_fault_plan(FaultPlan::new(seed).with_drop_probability(0.20));
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, 20% drop"));
        total_retransmits += grid.log().count("retransmits") as u64;
        // Dedup must hold the double-reserve invariant: a granted-but-lost
        // ReserveReply answered again from the cache, never re-executed.
        // (Asserted structurally by the leak check in assert_all_completed;
        // the counter shows the machinery actually engaged somewhere.)
    }
    assert!(
        total_retransmits > 0,
        "a 20% drop rate across the seed matrix must force retransmissions"
    );
}

#[test]
fn grm_crash_mid_run_recovers_every_job() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        grid.set_fault_plan(FaultPlan::new(seed).with_drop_probability(0.05));
        let jobs = submit_workload(&mut grid);
        // Crash the manager while jobs are mid-flight, restart 5 minutes
        // later (volatile GRM state is gone; LRMs re-announce via epoch).
        grid.run_until(SimTime::from_secs(900));
        grid.crash_grm();
        grid.run_until(SimTime::from_secs(1200));
        grid.restart_grm();
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, GRM crash"));
        assert_eq!(grid.log().count("grm.crash"), 1);
        assert!(
            grid.log().count("grm.epoch") >= 1,
            "seed {seed}: the restart must be visible as an epoch change"
        );
    }
}

#[test]
fn partition_heals_and_jobs_finish() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        // Cut two nodes off from the manager (and everyone else) between
        // t=10min and t=25min.
        let island = vec![grid.host_of(NodeId(0)), grid.host_of(NodeId(1))];
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(0.02)
                .with_partition(Partition {
                    island,
                    start: SimTime::from_secs(600),
                    heal: SimTime::from_secs(1500),
                }),
        );
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, partition"));
    }
}

#[test]
fn scheduled_outage_crashes_and_reboots_a_node() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(4, seed);
        let victim = grid.host_of(NodeId(0));
        grid.set_fault_plan(FaultPlan::new(seed).with_outage(HostOutage {
            host: victim,
            down_at: SimTime::from_secs(900),
            up_at: SimTime::from_secs(2700),
        }));
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, outage"));
        assert_eq!(grid.log().count("node.crash"), 1, "seed {seed}");
        assert_eq!(grid.log().count("node.restore"), 1, "seed {seed}");
    }
}

#[test]
fn payload_corruption_is_detected_and_absorbed() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        // Bit flips in flight: the checkpoint digests (and, for damaged
        // control frames, CDR/GIOP validation plus retransmission) must
        // turn corruption into delay, never into wrong state.
        grid.set_fault_plan(FaultPlan::new(seed).with_corrupt_probability(0.10));
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, 10% corruption"));
        assert!(
            grid.log().count("net.corrupt") > 0,
            "seed {seed}: the fault plan injected no corruption"
        );
    }
}

/// Replica management under compound failure: kill k-1 = 1 of the default
/// two checkpoint replicas mid-run AND the GRM (losing its soft-state
/// placement map), and every job must still complete.
#[test]
fn killing_k_minus_one_replicas_and_the_grm_still_completes() {
    for seed in chaos_seeds() {
        let mut grid = chaos_grid(6, seed);
        let jobs = vec![grid.submit(JobSpec::sequential("chaos-repl", 600_000))];
        grid.run_until(SimTime::from_secs(1500));
        // The sequential job checkpoints every ~200 s; by now the GRM has
        // learned where the replicas live from status-update re-announces.
        let holders = grid.replica_holders(jobs[0], 0);
        assert!(
            !holders.is_empty(),
            "seed {seed}: no replicas announced after 25 min"
        );
        grid.crash_node(holders[0]);
        grid.run_until(SimTime::from_secs(2100));
        grid.crash_grm();
        grid.run_until(SimTime::from_secs(2400));
        grid.restart_grm();
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(&grid, &jobs, &format!("seed {seed}, replica+GRM crash"));
    }
}

/// The acceptance scenario: with corruption faults active, crash one
/// checkpoint replica, then the node running the part, then the GRM — in
/// that order, mid-job. The part must resume from a digest-verified
/// surviving replica, and the repository machinery must be visible in the
/// event log: corruption detected, the lost replica re-replicated, and
/// superseded checkpoints garbage-collected.
#[test]
fn replica_then_executor_then_grm_crash_recovers_from_verified_replica() {
    // Fixed seed: the asserted counters are properties of this seeded
    // schedule, not of every seed in the CI matrix.
    let seed = 5;
    let mut grid = chaos_grid(6, seed);
    grid.set_fault_plan(FaultPlan::new(seed).with_corrupt_probability(0.10));
    let job = grid.submit(JobSpec::sequential("acceptance", 1_200_000));
    grid.run_until(SimTime::from_secs(1800));

    // 1. Crash one replica holder: re-replication must restore k.
    let holders = grid.replica_holders(job, 0);
    assert!(!holders.is_empty(), "replicas announced after 30 min");
    grid.crash_node(holders[0]);
    grid.run_until(SimTime::from_secs(3000));
    assert!(
        grid.log().count("repo.rereplicated") >= 1,
        "a dead holder must trigger re-replication"
    );

    // 2. Crash the executor: recovery reads a surviving, intact replica.
    let executor = (0..grid.node_count() as u32)
        .map(NodeId)
        .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
        .expect("part is running somewhere");
    grid.crash_node(executor);
    grid.run_until(SimTime::from_secs(4500));
    assert!(
        grid.log().count("repo.fetch") >= 1,
        "recovery must read a digest-verified replica"
    );

    // 3. Crash and restart the GRM: the placement map is soft state and
    // must rebuild from LRM re-announces.
    grid.crash_grm();
    grid.run_until(SimTime::from_secs(4800));
    grid.restart_grm();
    grid.run_until(SimTime::from_secs(36 * 3600));

    let record = grid.job_record(job).unwrap();
    assert_eq!(record.state, JobState::Completed, "{record:?}");
    assert!(
        grid.log().count("corrupt_detected") >= 1,
        "in-flight corruption of checkpoint traffic must be caught by digests"
    );
    assert!(
        grid.log().count("repo.gc") >= 1,
        "superseded checkpoint versions must be garbage-collected"
    );
    assert!(
        grid.log().count("repo.purge") >= 1,
        "completion must purge the job's replicas"
    );
}

#[test]
fn identical_seeds_replay_identical_chaos() {
    let run = |seed: u64| {
        let mut grid = chaos_grid(6, seed);
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(0.10)
                .with_jitter(SimDuration::from_millis(20)),
        );
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(900));
        grid.crash_grm();
        grid.run_until(SimTime::from_secs(1200));
        grid.restart_grm();
        grid.run_until(SimTime::from_secs(24 * 3600));
        let report = grid.report();
        let completions: Vec<_> = jobs
            .iter()
            .map(|j| {
                let r = grid.job_record(*j).unwrap();
                (r.state, r.completed_at)
            })
            .collect();
        (
            report.net.messages,
            report.net.drops,
            grid.log().count("retransmits"),
            completions,
        )
    };
    let seed = chaos_seeds()[0];
    assert_eq!(run(seed), run(seed), "chaos must replay bit-for-bit");
}

/// The full threat model in one run: crash faults (mid-run GRM death and
/// restart), gray faults (a sustained CPU derate plus message drops) and
/// Byzantine faults (two always-on saboteurs, one of them also derated)
/// stacked together, with certification voting armed. Liveness must hold
/// — every job completes — and so must safety: the omniscient counter
/// must record **zero** wrong results delivered, across the seed matrix.
#[test]
fn saboteurs_derates_and_grm_crash_deliver_zero_wrong_results() {
    use integrade::simnet::faults::{DerateWindow, Saboteur};
    for seed in chaos_seeds() {
        let config = GridConfig::builder()
            .seed(seed)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(30_000.0)
            .certification(true)
            .cert_replication(2)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        let mut plan = FaultPlan::new(seed)
            .with_drop_probability(0.05)
            // Saboteur 0 is also derated: a slow liar exercises the
            // certification and straggler paths against the same part.
            .with_derate(DerateWindow {
                host: grid.host_of(NodeId(0)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(24 * 3600),
                factor: 0.4,
            });
        for n in 0..2u32 {
            plan = plan.with_saboteur(Saboteur {
                host: grid.host_of(NodeId(n)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(24 * 3600),
                probability: 0.7,
                collusion: None,
            });
        }
        grid.set_fault_plan(plan);
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(900));
        grid.crash_grm();
        grid.run_until(SimTime::from_secs(1200));
        grid.restart_grm();
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(
            &grid,
            &jobs,
            &format!("seed {seed}, saboteurs + derate + grm crash"),
        );
        assert_eq!(
            grid.metrics_snapshot()
                .counter("grid_cert_wrong_delivered")
                .unwrap_or(0),
            0,
            "seed {seed}: a wrong result was delivered despite certification"
        );
        assert_eq!(grid.log().count("grm.crash"), 1, "seed {seed}");
    }
}

/// Gray failures layered on hard ones: one host computes at 30% the whole
/// run (a sustained derate no heartbeat can see), another flaps through
/// three crash/reboot cycles, messages drop, and the GRM itself dies and
/// restarts mid-run — with speculative re-execution armed. The liveness
/// invariant must survive the full stack: detection and twin races must
/// never wedge a job, leak a reservation, or leave a duplicate executor.
#[test]
fn derate_flap_and_grm_crash_with_speculation_still_complete() {
    use integrade::simnet::faults::{DerateWindow, HostFlap};
    for seed in chaos_seeds() {
        let config = GridConfig::builder()
            .seed(seed)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(30_000.0)
            .speculation(true)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(0.05)
                .with_jitter(SimDuration::from_millis(20))
                .with_derate(DerateWindow {
                    host: grid.host_of(NodeId(0)),
                    start: SimTime::from_secs(0),
                    end: SimTime::from_secs(24 * 3600),
                    factor: 0.3,
                })
                .with_flap(HostFlap {
                    host: grid.host_of(NodeId(5)),
                    first_down: SimTime::from_secs(600),
                    down_for: SimDuration::from_secs(120),
                    up_for: SimDuration::from_secs(600),
                    cycles: 3,
                }),
        );
        let jobs = submit_workload(&mut grid);
        grid.run_until(SimTime::from_secs(900));
        grid.crash_grm();
        grid.run_until(SimTime::from_secs(1200));
        grid.restart_grm();
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_all_completed(
            &grid,
            &jobs,
            &format!("seed {seed}, derate + flap + grm crash + speculation"),
        );
        assert!(
            grid.log().count("node.crash") >= 3,
            "seed {seed}: the flap must actually crash its host"
        );
    }
}
