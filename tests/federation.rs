//! Federation determinism and chaos: the wide-area layer must inherit the
//! simulator's bit-for-bit reproducibility — identical seeds give identical
//! federated placements, WAN traffic, and per-cluster reports across tick
//! modes (`ActiveSet` vs `Sharded { 1 }` vs `Sharded { 4 }`) — and its
//! fault tolerance: an inter-cluster partition combined with an origin-GRM
//! crash must not lose forwarded jobs or their completion records.
//!
//! The seed matrix defaults to a small set for `cargo test`; CI widens it
//! via the `CHAOS_SEEDS` environment variable (comma-separated u64s).

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::federation::{FederatedPlacement, Federation, RoutingPolicy, WanStats};
use integrade::core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade::core::types::{ClusterId, ResourceVector};
use integrade::simnet::faults::{FaultPlan, Partition};
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::simnet::topology::HostId;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => {
            let seeds: Vec<u64> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!seeds.is_empty(), "CHAOS_SEEDS set but empty: {spec:?}");
            seeds
        }
        Err(_) => vec![1, 2, 3],
    }
}

fn grid_of(mode: TickMode, seed: u64, n: usize, mips: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .tick_mode(mode)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..n)
            .map(|_| NodeSetup {
                resources: ResourceVector {
                    cpu_mips: mips,
                    ram_mb: 256,
                    disk_mb: 10_000,
                },
                ..NodeSetup::idle_desktop()
            })
            .collect(),
    );
    builder.build()
}

/// root(0): 2 slow; hub(1): 8 slow; hub(2): 6 fast; leaf(3) under hub(1):
/// 4 slow — deep enough that spillover crosses multiple WAN edges.
fn federation(mode: TickMode, seed: u64, routing: RoutingPolicy) -> Federation {
    Federation::builder()
        .seed(seed)
        .routing(routing)
        .update_period(SimDuration::from_secs(60))
        .root(ClusterId(0), grid_of(mode, seed, 2, 500))
        .child(ClusterId(1), ClusterId(0), grid_of(mode, seed ^ 1, 8, 500))
        .child(ClusterId(2), ClusterId(0), grid_of(mode, seed ^ 2, 6, 1500))
        .child(ClusterId(3), ClusterId(1), grid_of(mode, seed ^ 3, 4, 500))
        .build()
        .expect("valid federation spec")
}

/// A deterministic mixed workload: local fits, sibling spillover, a
/// fast-CPU constraint, and a multi-hop overflow from the leaf.
fn drive(fed: &mut Federation) -> (Vec<FederatedPlacement>, WanStats, Vec<String>) {
    fed.run_until(SimTime::from_secs(120));
    let mut placements = Vec::new();
    placements.push(
        fed.submit(ClusterId(0), JobSpec::sequential("local", 10_000))
            .expect("fits locally"),
    );
    placements.push(
        fed.submit(ClusterId(0), JobSpec::bag_of_tasks("spill", 6, 30_000))
            .expect("spills to a child"),
    );
    fed.run_until(SimTime::from_secs(300));
    let mut fast = JobSpec::sequential("fast", 50_000);
    fast.requirements.min_cpu_mips = 1000;
    placements.push(fed.submit(ClusterId(1), fast).expect("routes to cluster 2"));
    placements.push(
        fed.submit(
            ClusterId(3),
            JobSpec::bag_of_tasks("leaf-overflow", 6, 20_000),
        )
        .expect("leaf overflows upward"),
    );
    fed.run_until(SimTime::from_secs(4 * 3600));
    fed.refresh();
    let reports = fed
        .reports()
        .iter()
        .map(|(c, r)| format!("{c}: {r:?}"))
        .collect();
    (placements, fed.wan_stats(), reports)
}

#[test]
fn federated_placement_is_identical_across_tick_modes() {
    for seed in chaos_seeds() {
        let runs: Vec<_> = [
            TickMode::ActiveSet,
            TickMode::Sharded { workers: 1 },
            TickMode::Sharded { workers: 4 },
        ]
        .into_iter()
        .map(|mode| {
            let mut fed = federation(mode, seed, RoutingPolicy::LinkedTraders);
            (mode, drive(&mut fed))
        })
        .collect();
        let (_, baseline) = &runs[0];
        for (mode, run) in &runs[1..] {
            assert_eq!(
                run.0, baseline.0,
                "seed {seed}: {mode:?} placed jobs differently"
            );
            assert_eq!(
                run.1, baseline.1,
                "seed {seed}: {mode:?} produced different WAN traffic"
            );
            assert_eq!(
                run.2, baseline.2,
                "seed {seed}: {mode:?} produced different per-cluster reports"
            );
        }
    }
}

#[test]
fn federation_reproduces_itself_bit_for_bit() {
    for seed in chaos_seeds() {
        for routing in [
            RoutingPolicy::LinkedTraders,
            RoutingPolicy::FlatDirectory,
            RoutingPolicy::HierarchySummaries,
        ] {
            let mut a = federation(TickMode::ActiveSet, seed, routing);
            let mut b = federation(TickMode::ActiveSet, seed, routing);
            let run_a = drive(&mut a);
            let run_b = drive(&mut b);
            assert_eq!(run_a.0, run_b.0, "seed {seed} {routing:?}: placements");
            assert_eq!(run_a.1, run_b.1, "seed {seed} {routing:?}: WAN stats");
            assert_eq!(run_a.2, run_b.2, "seed {seed} {routing:?}: reports");
        }
    }
}

#[test]
fn routing_policies_agree_on_the_workload() {
    // All three routing arms must find homes for the same mixed workload
    // (they may pick different clusters, but nothing is lost).
    for routing in [
        RoutingPolicy::LinkedTraders,
        RoutingPolicy::FlatDirectory,
        RoutingPolicy::HierarchySummaries,
    ] {
        let mut fed = federation(TickMode::ActiveSet, 11, routing);
        let (placements, _, _) = drive(&mut fed);
        assert_eq!(placements.len(), 4, "{routing:?}");
        for p in &placements {
            assert_eq!(
                fed.job_state(p.id),
                Some(JobState::Completed),
                "{routing:?}: {p:?}"
            );
        }
    }
}

#[test]
fn partition_plus_origin_crash_does_not_lose_forwarded_jobs() {
    for seed in chaos_seeds() {
        let mut fed = Federation::builder()
            .seed(seed)
            .update_period(SimDuration::from_secs(60))
            // Cluster c maps to HostId(c.0) on the WAN: isolate cluster 1
            // right after the submission window, until t=1600s — the job
            // completes remotely (~155s) while its origin is unreachable.
            .wan_faults(FaultPlan::new(seed).with_partition(Partition {
                island: vec![HostId(1)],
                start: SimTime::from_secs(130),
                heal: SimTime::from_secs(1600),
            }))
            .root(ClusterId(0), grid_of(TickMode::ActiveSet, seed, 2, 500))
            .child(
                ClusterId(1),
                ClusterId(0),
                grid_of(TickMode::ActiveSet, seed ^ 1, 4, 500),
            )
            .child(
                ClusterId(2),
                ClusterId(0),
                grid_of(TickMode::ActiveSet, seed ^ 2, 6, 1500),
            )
            .build()
            .unwrap();
        fed.run_until(SimTime::from_secs(120));

        // Forward a job from cluster 1 before the partition: needs fast
        // CPUs, so it lands on cluster 2.
        let mut fast = JobSpec::sequential("fast", 50_000);
        fast.requirements.min_cpu_mips = 1000;
        let placed = fed.submit(ClusterId(1), fast).unwrap();
        assert_eq!(placed.id.cluster, ClusterId(2));

        // Partition starts at 130s; crash the origin GRM inside it too.
        fed.run_until(SimTime::from_secs(500));
        fed.crash_grm(ClusterId(1)).unwrap();
        fed.run_until(SimTime::from_secs(1500));

        // The remote cluster kept computing through partition and crash.
        assert_eq!(fed.job_state(placed.id), Some(JobState::Completed));
        assert!(
            !fed.origin_knows_complete(placed.id),
            "seed {seed}: no status can have crossed the partition"
        );
        assert!(fed.wan_stats().partitioned > 0, "statuses were severed");

        // Heal + restart: the periodic status resend closes the loop.
        fed.restart_grm(ClusterId(1)).unwrap();
        fed.run_until(SimTime::from_secs(2400));
        assert!(
            fed.origin_knows_complete(placed.id),
            "seed {seed}: completion must survive partition + origin crash"
        );

        // New submissions from the healed origin work again.
        let placed2 = fed
            .submit(ClusterId(1), JobSpec::sequential("after-heal", 5_000))
            .unwrap();
        fed.run_until(SimTime::from_secs(4 * 3600));
        assert_eq!(fed.job_state(placed2.id), Some(JobState::Completed));
    }
}

#[test]
fn partition_makes_spillover_targets_unreachable() {
    let mut fed = Federation::builder()
        .seed(5)
        .wan_faults(FaultPlan::new(5).with_partition(Partition {
            island: vec![HostId(0)],
            start: SimTime::ZERO,
            heal: SimTime::from_secs(10_000),
        }))
        .root(ClusterId(0), grid_of(TickMode::ActiveSet, 5, 2, 500))
        .child(
            ClusterId(1),
            ClusterId(0),
            grid_of(TickMode::ActiveSet, 6, 8, 500),
        )
        .build()
        .unwrap();
    fed.run_until(SimTime::from_secs(120));
    // Cluster 0 cannot fit 6 tasks locally and its only WAN edge is
    // severed: the probe never reaches cluster 1.
    let err = fed
        .submit(ClusterId(0), JobSpec::bag_of_tasks("marooned", 6, 10_000))
        .unwrap_err();
    assert_eq!(
        err,
        integrade::core::federation::FederationError::Unsatisfiable
    );
    assert!(fed.wan_stats().partitioned > 0);
}
