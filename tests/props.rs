//! Property-based tests on the workspace's core invariants.

use integrade::bsp::apps::Stencil1d;
use integrade::bsp::checkpoint::{checkpoint, restore};
use integrade::bsp::runtime::BspRuntime;
use integrade::orb::any::AnyValue;
use integrade::orb::cdr::{CdrDecode, CdrEncode};
use integrade::orb::constraint;
use integrade::orb::giop::Message;
use integrade::orb::ior::{Endpoint, Ior, ObjectKey};
use integrade::simnet::event::EventQueue;
use integrade::simnet::time::SimTime;
use integrade::usage::kmeans::{fit, silhouette_score, KMeansConfig};
use integrade::usage::series::{euclidean, normalize, resample};
use proptest::prelude::*;

fn any_value() -> impl Strategy<Value = AnyValue> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(AnyValue::Bool),
        any::<i64>().prop_map(AnyValue::Long),
        // Finite doubles only: NaN breaks PartialEq round-trip checks.
        (-1e15f64..1e15).prop_map(AnyValue::Double),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(AnyValue::Str),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop::collection::vec(inner, 0..4).prop_map(AnyValue::Seq)
    })
}

proptest! {
    /// Every AnyValue survives CDR marshalling bit-exactly.
    #[test]
    fn any_value_cdr_round_trip(v in any_value()) {
        let bytes = v.to_cdr_bytes();
        let back = AnyValue::from_cdr_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Primitive tuples survive CDR round trips regardless of alignment
    /// interactions.
    #[test]
    fn mixed_tuple_cdr_round_trip(a in any::<u8>(), b in any::<u64>(), c in any::<i32>(),
                                   s in "[ -~]{0,32}") {
        let v = (a, b, c, s);
        let bytes = v.to_cdr_bytes();
        let back = <(u8, u64, i32, String)>::from_cdr_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The CDR decoder never panics on arbitrary bytes.
    #[test]
    fn cdr_decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = AnyValue::from_cdr_bytes(&bytes);
        let _ = Ior::from_cdr_bytes(&bytes);
        let _ = String::from_cdr_bytes(&bytes);
        let _ = Vec::<u64>::from_cdr_bytes(&bytes);
    }

    /// GIOP frames round-trip and reject any single-byte corruption of the
    /// header's fixed fields.
    #[test]
    fn giop_round_trip(id in any::<u64>(), op in "[a-z_]{1,16}",
                       body in prop::collection::vec(any::<u8>(), 0..64)) {
        let msg = Message::Request {
            request_id: id,
            response_expected: true,
            object_key: ObjectKey::new("k"),
            operation: op,
            body: body.into(),
        };
        let wire = msg.to_wire();
        prop_assert_eq!(Message::from_wire(&wire).unwrap(), msg);
    }

    /// The GIOP parser never panics on arbitrary bytes.
    #[test]
    fn giop_parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Message::from_wire(&bytes);
    }

    /// Stringified IORs round-trip for arbitrary components.
    #[test]
    fn ior_stringified_round_trip(host in any::<u32>(), port in any::<u16>(),
                                  type_id in "[A-Za-z/:.0-9]{1,32}",
                                  key in "[a-z/0-9]{1,24}") {
        let ior = Ior::new(type_id, Endpoint::new(host, port), ObjectKey::new(key));
        let s = ior.to_stringified();
        prop_assert_eq!(Ior::from_stringified(&s).unwrap(), ior);
    }

    /// The constraint parser never panics, and parseable inputs re-evaluate
    /// deterministically.
    #[test]
    fn constraint_parser_is_total(input in "[a-z0-9<>=!()'+*/ .-]{0,64}") {
        if let Ok(expr) = constraint::parse(&input) {
            let props = std::collections::BTreeMap::new();
            let a = constraint::matches(&expr, &props);
            let b = constraint::matches(&expr, &props);
            prop_assert_eq!(a, b);
        }
    }

    /// Comparison operators agree with integer semantics for all pairs.
    #[test]
    fn constraint_comparisons_match_rust(x in -1000i64..1000, y in -1000i64..1000) {
        let props: std::collections::BTreeMap<String, AnyValue> =
            [("x".to_owned(), AnyValue::Long(x)), ("y".to_owned(), AnyValue::Long(y))]
                .into_iter()
                .collect();
        let check = |expr: &str, expected: bool| -> Result<(), TestCaseError> {
            let parsed = constraint::parse(expr).unwrap();
            prop_assert_eq!(constraint::matches(&parsed, &props), expected, "{}", expr);
            Ok(())
        };
        check("x < y", x < y)?;
        check("x <= y", x <= y)?;
        check("x == y", x == y)?;
        check("x != y", x != y)?;
        check("x + y == y + x", true)?;
    }

    /// Event queue pops are globally ordered by (time, insertion).
    #[test]
    fn event_queue_is_ordered(times in prop::collection::vec(0u64..10_000, 1..64)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last);
            if Some(t) == last_time {
                // FIFO among equal timestamps: indices increase.
                prop_assert!(seen_at_time.last().map(|&p| p < idx).unwrap_or(true));
                seen_at_time.push(idx);
            } else {
                seen_at_time.clear();
                seen_at_time.push(idx);
            }
            last_time = Some(t);
            last = t;
        }
    }

    /// K-means invariants: every point is assigned to its nearest centroid
    /// at convergence, and inertia is non-negative.
    #[test]
    fn kmeans_assignment_optimality(points in prop::collection::vec(
        (0.0f64..10.0, 0.0f64..10.0), 6..40), k in 1usize..4) {
        let data: Vec<Vec<f64>> = points.iter().map(|(a, b)| vec![*a, *b]).collect();
        let k = k.min(data.len());
        let model = fit(&data, KMeansConfig::new(k, 99));
        prop_assert!(model.inertia >= 0.0);
        for (point, &assigned) in data.iter().zip(&model.assignments) {
            let own = euclidean(&model.centroids[assigned], point);
            for centroid in &model.centroids {
                prop_assert!(own <= euclidean(centroid, point) + 1e-9);
            }
        }
        let s = silhouette_score(&data, &model.assignments, k);
        prop_assert!((-1.0..=1.0).contains(&s));
    }

    /// Normalisation lands in [0,1]; resampling preserves length contracts.
    #[test]
    fn series_transforms_well_behaved(values in prop::collection::vec(-100.0f64..100.0, 1..128),
                                      target in 1usize..256) {
        let normalized = normalize(&values);
        prop_assert!(normalized.iter().all(|v| (0.0..=1.0).contains(v)));
        let resampled = resample(&values, target);
        prop_assert_eq!(resampled.len(), target);
    }

    /// Checkpoint/restore is the identity on BSP execution: finishing from
    /// a mid-run snapshot equals finishing uninterrupted.
    #[test]
    fn bsp_checkpoint_restore_identity(cells in prop::collection::vec(0.0f64..10.0, 4..24),
                                       procs in 1usize..4, cut in 1usize..6) {
        let procs = procs.min(cells.len());
        let iterations = 8u64;
        let mut reference = BspRuntime::new(Stencil1d::partition(&cells, procs, iterations, 0.0, 1.0));
        reference.run(100);

        let mut broken = BspRuntime::new(Stencil1d::partition(&cells, procs, iterations, 0.0, 1.0));
        for _ in 0..cut {
            if broken.is_halted() {
                break;
            }
            broken.step();
        }
        let snap = checkpoint(&broken);
        let mut resumed: BspRuntime<Stencil1d> = restore(&snap).unwrap();
        resumed.run(100);
        prop_assert_eq!(resumed.procs(), reference.procs());
    }
}

// === Service-level invariants ===

use integrade::core::hierarchy::{ClusterHierarchy, ClusterSummary, WideAreaRequest};
use integrade::core::types::ClusterId;
use integrade::orb::naming::NamingService;
use integrade::orb::trading::Trader;

fn node_offer_props(
    mips: i64,
    ram: i64,
    exporting: bool,
) -> std::collections::BTreeMap<String, AnyValue> {
    [
        ("cpu_mips".to_owned(), AnyValue::Long(mips)),
        ("free_ram_mb".to_owned(), AnyValue::Long(ram)),
        ("exporting".to_owned(), AnyValue::Bool(exporting)),
    ]
    .into_iter()
    .collect()
}

proptest! {
    /// Every offer a trader query returns actually satisfies the constraint,
    /// and `max` preference really orders descending.
    #[test]
    fn trader_results_satisfy_constraint(
        offers in prop::collection::vec((0i64..2000, 0i64..512, any::<bool>()), 1..40),
        min_mips in 0i64..2000,
        min_ram in 0i64..512,
    ) {
        let mut trader = Trader::new(3);
        for (i, (mips, ram, exporting)) in offers.iter().enumerate() {
            trader
                .export(
                    "integrade::node",
                    &Ior::new("IDL:t/T:1.0", Endpoint::new(i as u32, 0), ObjectKey::new(format!("o{i}"))),
                    node_offer_props(*mips, *ram, *exporting),
                )
                .unwrap();
        }
        let constraint = format!(
            "exporting == true and cpu_mips >= {min_mips} and free_ram_mb >= {min_ram}"
        );
        let hits = trader.query("integrade::node", &constraint, "max cpu_mips", 100).unwrap();
        let expected = offers
            .iter()
            .filter(|(m, r, e)| *e && *m >= min_mips && *r >= min_ram)
            .count();
        prop_assert_eq!(hits.len(), expected);
        let mut last = i64::MAX;
        for offer in &hits {
            let mips = match offer.properties["cpu_mips"] {
                AnyValue::Long(m) => m,
                _ => unreachable!(),
            };
            prop_assert!(mips >= min_mips);
            prop_assert!(mips <= last, "descending by cpu_mips");
            last = mips;
        }
    }

    /// Naming bind → resolve is the identity; unbind removes exactly the
    /// bound name; list returns each bound child exactly once.
    #[test]
    fn naming_service_acts_like_a_map(
        names in prop::collection::btree_set("[a-z]{1,6}(/[a-z]{1,6}){0,2}", 1..16),
    ) {
        let mut ns = NamingService::new();
        let names: Vec<String> = names.into_iter().collect();
        for (i, name) in names.iter().enumerate() {
            let ior = Ior::new("IDL:t/T:1.0", Endpoint::new(i as u32, 0), ObjectKey::new(format!("k{i}")));
            ns.bind(name, ior.clone()).unwrap();
            prop_assert_eq!(ns.resolve(name).unwrap(), ior);
        }
        prop_assert_eq!(ns.len(), names.len());
        for name in &names {
            ns.unbind(name).unwrap();
            prop_assert!(ns.resolve(name).is_err());
        }
        prop_assert!(ns.is_empty());
    }

    /// Hierarchy aggregation: the root subtree equals the merge of all leaf
    /// summaries, regardless of tree shape or update order.
    #[test]
    fn hierarchy_root_aggregates_all_leaves(
        fanout in 2usize..5,
        depth in 1usize..4,
        exportings in prop::collection::vec(0u32..100, 1..64),
    ) {
        let (mut h, leaves) = ClusterHierarchy::uniform(fanout, depth);
        let mut expected_exporting = 0u32;
        let mut expected_max_mips = 0u64;
        for (leaf, e) in leaves.iter().zip(exportings.iter().cycle()) {
            let mips = 100 + *e as u64 * 7;
            h.update_summary(*leaf, ClusterSummary {
                nodes: e + 1,
                exporting_nodes: *e,
                max_cpu_mips: mips,
                max_free_ram_mb: 64,
                ..Default::default()
            }).unwrap();
            expected_exporting += e;
            expected_max_mips = expected_max_mips.max(mips);
        }
        let root = h.aggregate(ClusterId(0)).unwrap();
        prop_assert_eq!(root.exporting_nodes, expected_exporting);
        prop_assert_eq!(root.max_cpu_mips, expected_max_mips);
    }

    /// Routing soundness: whatever cluster route_request returns really
    /// admits the request, and unsatisfiable requests return None.
    #[test]
    fn hierarchy_routing_is_sound(
        exportings in prop::collection::vec(0u32..50, 4..16),
        want in 1u32..60,
    ) {
        let (mut h, leaves) = ClusterHierarchy::uniform(2, 3);
        for (leaf, e) in leaves.iter().zip(exportings.iter().cycle()) {
            h.update_summary(*leaf, ClusterSummary {
                nodes: *e,
                exporting_nodes: *e,
                max_cpu_mips: 500,
                max_free_ram_mb: 128,
                ..Default::default()
            }).unwrap();
        }
        let request = WideAreaRequest { nodes: want, min_cpu_mips: 500, min_ram_mb: 64 };
        let satisfiable = exportings.iter().cycle().take(leaves.len()).any(|e| *e >= want);
        match h.route_request(leaves[0], &request).unwrap() {
            Some((target, _)) => {
                prop_assert!(satisfiable);
                let own_admits = h.aggregate(target).is_some();
                prop_assert!(own_admits);
            }
            None => prop_assert!(!satisfiable),
        }
    }
}

// === Checkpoint repository invariants ===

mod replica_store {
    use integrade::core::repo::{crc32, ReplicaStore, StoredCheckpoint};
    use integrade::core::types::JobId;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// One repository operation, generated with small id ranges so
    /// sequences collide on the same (job, part) slots often.
    #[derive(Debug, Clone)]
    enum Op {
        /// `valid` decides whether the digest matches the payload.
        Store {
            job: u64,
            part: u32,
            version: u64,
            work: u64,
            valid: bool,
        },
        Purge {
            job: u64,
            part: u32,
        },
    }

    fn op() -> impl Strategy<Value = Op> {
        // Purges are rarer than stores: an 8-valued selector keeps roughly
        // a 7:1 store:purge mix without weighted-oneof syntax.
        (
            0u64..3,
            0u32..3,
            0u64..20,
            0u64..10_000,
            any::<bool>(),
            0u8..8,
        )
            .prop_map(|(job, part, version, work, valid, pick)| {
                if pick == 0 {
                    Op::Purge { job, part }
                } else {
                    Op::Store {
                        job,
                        part,
                        version,
                        work,
                        valid,
                    }
                }
            })
    }

    proptest! {
        /// GC never deletes the newest *acked* checkpoint of a live part:
        /// after any operation sequence, every non-purged part still holds
        /// exactly its highest accepted version, with an intact digest —
        /// regardless of stale re-deliveries, corrupt writes, or the GC of
        /// superseded versions along the way.
        #[test]
        fn gc_never_drops_the_newest_acked_checkpoint(ops in prop::collection::vec(op(), 1..60)) {
            let mut store = ReplicaStore::new();
            // The model: highest version each live (job, part) slot acked.
            let mut acked: BTreeMap<(u64, u32), u64> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Store { job, part, version, work, valid } => {
                        let payload = format!("ckpt {job}/{part} v{version}").into_bytes();
                        let digest = if valid { crc32(&payload) } else { crc32(&payload) ^ 1 };
                        let outcome = store.store(JobId(job), part, StoredCheckpoint {
                            version,
                            work_mips_s: work,
                            digest,
                            payload: payload.into(),
                        });
                        let newest = acked.get(&(job, part)).copied();
                        let accepted = valid && newest.is_none_or(|held| version > held);
                        prop_assert_eq!(
                            matches!(outcome, integrade::core::repo::StoreOutcome::Accepted { .. }),
                            accepted,
                            "store {}/{} v{} valid={} against held {:?}",
                            job, part, version, valid, newest
                        );
                        if accepted {
                            acked.insert((job, part), version);
                        }
                    }
                    Op::Purge { job, part } => {
                        store.purge(JobId(job), part);
                        acked.remove(&(job, part));
                    }
                }
            }
            for (&(job, part), &version) in &acked {
                let held = store.get(JobId(job), part);
                prop_assert!(held.is_some(), "live part {}/{} lost its checkpoint", job, part);
                let held = held.unwrap();
                prop_assert_eq!(held.version, version, "part {}/{}", job, part);
                prop_assert_eq!(crc32(&held.payload), held.digest, "part {}/{}", job, part);
            }
        }
    }
}

// === Whole-grid determinism (few cases: each runs a full simulation) ===

mod grid_determinism {
    use integrade::core::asct::JobSpec;
    use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
    use integrade::core::scheduler::Strategy;
    use integrade::simnet::time::{SimDuration, SimTime};
    use proptest::prelude::*;

    fn run_once(seed: u64, jobs: &[(u64, u8)], strategy_pick: u8) -> (u64, u64, Vec<String>) {
        let strategy = match strategy_pick % 3 {
            0 => Strategy::Random,
            1 => Strategy::AvailabilityOnly,
            _ => Strategy::PatternAware,
        };
        let config = GridConfig::builder()
            .seed(seed)
            .strategy(strategy)
            .gupa_warmup_days(0)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..5).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        for (i, &(work, kind)) in jobs.iter().enumerate() {
            let work = 10_000 + work % 200_000;
            let spec = match kind % 3 {
                0 => JobSpec::sequential(&format!("s{i}"), work),
                1 => JobSpec::bag_of_tasks(&format!("b{i}"), 3, work / 3),
                _ => JobSpec::bsp(&format!("p{i}"), 2, 10, work / 20, 4096),
            };
            grid.submit_at(
                spec,
                SimTime::ZERO + SimDuration::from_mins(5 * i as u64 + 1),
            );
        }
        grid.run_until(SimTime::ZERO + SimDuration::from_hours(12));
        let report = grid.report();
        let states: Vec<String> = report.records.iter().map(|r| r.state.to_string()).collect();
        (report.net.messages, report.net.bytes, states)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        /// Any workload replays bit-identically under the same seed: message
        /// counts, byte counts and every job outcome match.
        #[test]
        fn same_seed_same_universe(seed in any::<u64>(),
                                   jobs in prop::collection::vec((any::<u64>(), any::<u8>()), 1..5),
                                   strategy_pick in any::<u8>()) {
            let a = run_once(seed, &jobs, strategy_pick);
            let b = run_once(seed, &jobs, strategy_pick);
            prop_assert_eq!(a, b);
        }
    }
}

mod certification_votes {
    use integrade::core::grid::certification_verdict;
    use integrade::core::types::NodeId;
    use proptest::prelude::*;

    proptest! {
        /// The certification verdict is a pure function of the vote
        /// *multiset*: any arrival order — retransmissions, piggyback
        /// redelivery, shard interleaving — yields the identical outcome.
        #[test]
        fn verdict_is_arrival_order_independent(
            raw in prop::collection::vec(0u64..5, 1..12),
            needed in 1u32..5,
            rotation in 0usize..16,
            swaps in prop::collection::vec((0usize..12, 0usize..12), 0..8),
        ) {
            // Distinct voters, digests drawn from a small alphabet so
            // pluralities and ties actually occur.
            let votes: Vec<(NodeId, u64)> = raw
                .iter()
                .enumerate()
                .map(|(i, d)| (NodeId(i as u32), d.wrapping_mul(0x9E37) + 1))
                .collect();
            let baseline = certification_verdict(&votes, needed);
            // Permute by rotation, reversal and arbitrary transpositions —
            // together these generate the full symmetric group.
            let mut permuted = votes.clone();
            permuted.rotate_left(rotation % votes.len());
            prop_assert_eq!(certification_verdict(&permuted, needed), baseline);
            permuted.reverse();
            prop_assert_eq!(certification_verdict(&permuted, needed), baseline);
            for (a, b) in swaps {
                permuted.swap(a % votes.len(), b % votes.len());
            }
            prop_assert_eq!(certification_verdict(&permuted, needed), baseline);
        }

        /// A colluding minority strictly below the quorum size can never
        /// get its matching lie certified, however many honest votes have
        /// arrived — and once the honest bloc itself reaches the quorum,
        /// it always wins.
        #[test]
        fn colluding_minority_below_quorum_never_outvotes(
            needed in 2u32..5,
            honest in 1usize..8,
            colluders_wanted in 1usize..5,
        ) {
            const HONEST: u64 = 0xC0FFEE;
            const LIE: u64 = 0xBAD_BAD;
            let colluders = colluders_wanted.min(needed as usize - 1);
            let mut votes: Vec<(NodeId, u64)> = Vec::new();
            for i in 0..honest {
                votes.push((NodeId(i as u32), HONEST));
            }
            for i in 0..colluders {
                votes.push((NodeId((honest + i) as u32), LIE));
            }
            let verdict = certification_verdict(&votes, needed);
            prop_assert!(
                verdict != Some(LIE),
                "a below-quorum collusion was certified: {:?}",
                votes
            );
            if honest >= needed as usize {
                prop_assert_eq!(verdict, Some(HONEST));
            } else {
                prop_assert_eq!(verdict, None);
            }
        }
    }
}

mod speculation_progress {
    use integrade::core::asct::JobSpec;
    use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
    use integrade::core::types::NodeId;
    use integrade::simnet::faults::{DerateWindow, FaultPlan};
    use integrade::simnet::time::SimTime;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Speculation never loses banked checkpoint progress: however the
        /// twin race resolves (win, cancel, promotion), each part's banked
        /// checkpoint version only ever climbs and its remaining work only
        /// ever shrinks. A regression here means a backup forked the
        /// checkpoint lineage or a teardown rolled a part backwards.
        #[test]
        fn banked_progress_is_monotone_under_speculation(
            seed in any::<u64>(),
            slow in 1usize..3,
            factor_pct in 15u32..40,
            parts in 4u32..7,
        ) {
            let config = GridConfig::builder()
                .seed(seed)
                .gupa_warmup_days(0)
                .sequential_checkpoint_mips_s(30_000.0)
                .speculation(true)
                .build();
            let mut builder = GridBuilder::new(config);
            builder.add_cluster((0..7).map(|_| NodeSetup::idle_desktop()).collect());
            let mut grid = builder.build();
            let mut plan = FaultPlan::new(seed);
            for n in 0..slow {
                plan = plan.with_derate(DerateWindow {
                    host: grid.host_of(NodeId(n as u32)),
                    start: SimTime::from_secs(0),
                    end: SimTime::from_secs(48 * 3600),
                    factor: factor_pct as f64 / 100.0,
                });
            }
            grid.set_fault_plan(plan);
            let job = grid.submit(JobSpec::bag_of_tasks("prop-spec", parts as usize, 250_000));
            let mut last: Vec<(u64, f64)> = (0..parts).map(|_| (0, f64::INFINITY)).collect();
            for step in 1..=48u64 {
                grid.run_until(SimTime::from_secs(step * 1200));
                for part in 0..parts {
                    // `None` once the part is done — progress can no longer
                    // regress after that, so skip it.
                    let Some((version, remaining)) = grid.part_progress(job, part) else {
                        continue;
                    };
                    let (prev_version, prev_remaining) = last[part as usize];
                    prop_assert!(
                        version >= prev_version,
                        "part {} banked version regressed {} -> {}",
                        part, prev_version, version
                    );
                    prop_assert!(
                        remaining <= prev_remaining,
                        "part {} remaining grew {} -> {}",
                        part, prev_remaining, remaining
                    );
                    last[part as usize] = (version, remaining);
                }
            }
        }
    }
}
