//! Byzantine result certification: a sabotaged node keeps every protocol
//! promise — it answers on time, computes at full speed, checkpoints
//! dutifully — and then reports a wrong result. No crash detector, gray-
//! failure detector or digest check on the wire can see it: the lie *is*
//! the payload. These tests pin the certification engine end to end:
//! majority-digest voting over replicated executions, seeded known-answer
//! spot checks, Sarmenta-style per-node credibility with blacklisting,
//! and the omniscient ground-truth counter that measures what each policy
//! actually delivered.

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{Grid, GridBuilder, GridConfig, NodeSetup};
use integrade::core::types::NodeId;
use integrade::simnet::faults::{FaultPlan, Saboteur};
use integrade::simnet::time::SimTime;

struct CertKnobs {
    certification: bool,
    replication: u32,
    adaptive: bool,
    spot_rate: f64,
    trust: u32,
}

impl CertKnobs {
    fn off() -> Self {
        CertKnobs {
            certification: false,
            replication: 2,
            adaptive: false,
            spot_rate: 0.0,
            trust: 10,
        }
    }

    fn fixed(r: u32) -> Self {
        CertKnobs {
            certification: true,
            replication: r,
            ..CertKnobs::off()
        }
    }

    fn adaptive(trust: u32, spot_rate: f64) -> Self {
        CertKnobs {
            certification: true,
            adaptive: true,
            spot_rate,
            trust,
            ..CertKnobs::off()
        }
    }
}

fn cert_grid(nodes: usize, seed: u64, knobs: &CertKnobs) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .certification(knobs.certification)
        .cert_replication(knobs.replication)
        .cert_adaptive(knobs.adaptive)
        .cert_spot_check_rate(knobs.spot_rate)
        .cert_trust_threshold(knobs.trust)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// Turns the first `count` nodes into always-on saboteurs with the given
/// lie probability. `collusion` groups them so their wrong digests match.
fn sabotage_first(grid: &mut Grid, seed: u64, count: usize, p: f64, collusion: Option<u32>) {
    let mut plan = FaultPlan::new(seed);
    for n in 0..count {
        plan = plan.with_saboteur(Saboteur {
            host: grid.host_of(NodeId(n as u32)),
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(48 * 3600),
            probability: p,
            collusion,
        });
    }
    grid.set_fault_plan(plan);
}

fn wrong_delivered(grid: &Grid) -> u64 {
    grid.metrics_snapshot()
        .counter("grid_cert_wrong_delivered")
        .unwrap_or(0)
}

#[test]
fn without_certification_sabotage_delivers_wrong_results() {
    let mut grid = cert_grid(6, 42, &CertKnobs::off());
    sabotage_first(&mut grid, 42, 1, 1.0, None);
    let job = grid.submit(JobSpec::bag_of_tasks("cert-off", 6, 90_000));
    grid.run_until(SimTime::from_secs(12 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert!(
        wrong_delivered(&grid) >= 1,
        "an unchecked always-lying node must poison at least one part"
    );
    // No certification means no redundancy was bought.
    assert_eq!(grid.report().overhead.cert_redundant_mips_s, 0.0);
}

#[test]
fn voting_quorum_catches_a_loner_saboteur() {
    let mut grid = cert_grid(6, 42, &CertKnobs::fixed(2));
    sabotage_first(&mut grid, 42, 1, 1.0, None);
    let job = grid.submit(JobSpec::bag_of_tasks("cert-r2", 6, 90_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(
        wrong_delivered(&grid),
        0,
        "a loner cannot outvote independent re-executions"
    );
    assert!(
        grid.log().count("cert.reexecute") >= 1,
        "the quorum must have forced at least one re-execution"
    );
    let snap = grid.metrics_snapshot();
    assert_eq!(
        snap.counter("grid_cert_blacklisted"),
        Some(1),
        "the saboteur's first certified lie must blacklist it"
    );
    let report = grid.report();
    assert!(
        report.overhead.cert_redundant_mips_s > 0.0,
        "integrity is not free: redundant votes must be on the ledger"
    );
    assert_eq!(
        report.overhead.total_mips_s(),
        report.overhead.spec_wasted_mips_s + report.overhead.cert_redundant_mips_s
    );
}

/// The attack the replication degree is really about: two colluders whose
/// wrong digests *match* can hand a naive 2-vote quorum a certified lie.
#[test]
fn colluders_defeat_a_naive_two_vote_quorum() {
    let mut grid = cert_grid(3, 42, &CertKnobs::fixed(2));
    sabotage_first(&mut grid, 42, 2, 1.0, Some(7));
    let job = grid.submit(JobSpec::sequential("cert-collude", 120_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert!(
        wrong_delivered(&grid) >= 1,
        "two matching lies out of three voters satisfy r=2 — the quorum \
         certifies the collusion"
    );
}

#[test]
fn three_votes_defeat_the_colluding_pair() {
    let mut grid = cert_grid(6, 42, &CertKnobs::fixed(3));
    sabotage_first(&mut grid, 42, 2, 1.0, Some(7));
    let job = grid.submit(JobSpec::bag_of_tasks("cert-r3", 6, 90_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(
        wrong_delivered(&grid),
        0,
        "a colluding pair can never reach three matching votes"
    );
    assert_eq!(
        grid.metrics_snapshot().counter("grid_cert_blacklisted"),
        Some(2),
        "both colluders must be blacklisted on their first certified part"
    );
}

#[test]
fn spot_checks_fire_and_never_certify_a_lie() {
    let mut grid = cert_grid(6, 42, &CertKnobs::adaptive(10, 0.5));
    sabotage_first(&mut grid, 42, 1, 1.0, None);
    let job = grid.submit(JobSpec::bag_of_tasks("cert-probe", 8, 60_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(wrong_delivered(&grid), 0);
    let snap = grid.metrics_snapshot();
    assert!(
        snap.counter("grid_cert_spot_checks").unwrap_or(0) >= 1,
        "a 50% probe rate over eight parts must designate at least one"
    );
}

/// Credibility-adaptive replication on an honest population: once nodes
/// have earned trust, their single vote certifies — the redundancy bill
/// must come in strictly below the fixed r=2 policy's, with zero wrong
/// results either way.
#[test]
fn adaptive_trust_cuts_redundancy_on_honest_nodes() {
    let run = |knobs: &CertKnobs| {
        let mut grid = cert_grid(6, 42, knobs);
        let job = grid.submit(JobSpec::bag_of_tasks("cert-adaptive", 24, 40_000));
        grid.run_until(SimTime::from_secs(24 * 3600));
        assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
        assert_eq!(wrong_delivered(&grid), 0);
        grid.report().overhead.cert_redundant_mips_s
    };
    let fixed = run(&CertKnobs::fixed(2));
    let adaptive = run(&CertKnobs::adaptive(3, 0.15));
    assert!(
        adaptive < fixed,
        "trusted single votes must undercut blanket r=2 \
         (adaptive {adaptive} MIPS-s vs fixed {fixed} MIPS-s)"
    );
    assert!(
        adaptive > 0.0,
        "unknown nodes must still have paid the quorum while earning trust"
    );
}

/// Satellite: a node declared dead while its vote is pending loses that
/// vote — a claim whose claimant no longer exists is not evidence. With
/// the first voter crashed, the single remaining ballot is one short of
/// the quorum, so certification must take two *fresh* re-executions (the
/// discarded vote is visibly not counted).
#[test]
fn dead_nodes_pending_votes_are_discarded() {
    let mut grid = cert_grid(3, 42, &CertKnobs::fixed(2));
    let job = grid.submit(JobSpec::sequential("cert-dead-voter", 120_000));
    // Step until the first vote has been recorded (the part re-enters the
    // scheduler waiting for its second ballot).
    let mut step = 0u64;
    while grid.log().count("cert.reexecute") == 0 {
        step += 1;
        assert!(step <= 96, "no vote recorded within 16 h");
        grid.run_until(SimTime::from_secs(step * 600));
    }
    let detail = &grid.log().first("cert.reexecute").unwrap().detail;
    let voter: u32 = detail
        .rsplit("node")
        .next()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or_else(|| panic!("unparseable reexecute detail: {detail}"));
    grid.crash_node(NodeId(voter));
    grid.run_until(SimTime::from_secs(36 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(wrong_delivered(&grid), 0);
    assert!(
        grid.log().count("grm.node_dead") >= 1,
        "the crashed voter must be declared dead"
    );
    assert!(
        grid.log().count("cert.reexecute") >= 2,
        "with the first ballot discarded, a single fresh vote is still one \
         short of the quorum"
    );
    assert!(
        grid.metrics_snapshot()
            .counter("grid_cert_votes")
            .unwrap_or(0)
            >= 3,
        "both surviving nodes must vote after the discard"
    );
}

/// A probabilistic (p = 0.4) saboteur under the adaptive policy: spot
/// checks and quorums must still deliver zero wrong results, and the
/// node's first caught lie must collapse whatever credibility its honest
/// answers had earned.
#[test]
fn intermittent_saboteur_cannot_bank_credibility_past_a_lie() {
    let mut grid = cert_grid(6, 42, &CertKnobs::adaptive(4, 0.2));
    sabotage_first(&mut grid, 42, 1, 0.4, None);
    let job = grid.submit(JobSpec::bag_of_tasks("cert-intermittent", 16, 40_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(wrong_delivered(&grid), 0);
    let snap = grid.metrics_snapshot();
    if snap.counter("grid_cert_mismatches").unwrap_or(0) >= 1 {
        assert_eq!(
            snap.counter("grid_cert_blacklisted"),
            Some(1),
            "the first caught mismatch must blacklist the saboteur"
        );
    }
}
