//! Integration of the CORBA-substitute stack: CDR → GIOP → ORB → Naming →
//! Trading, driving real core-middleware servants over the loopback bus.

use integrade::core::lrm::{LrmConfig, LrmServant, LrmState};
use integrade::core::ncc::SharingPolicy;
use integrade::core::protocol::{
    LaunchReply, LaunchRequest, ReserveReply, ReserveRequest, OP_LAUNCH, OP_RESERVE,
};
use integrade::core::types::{JobId, NodeId, NodeRoles, Platform, ResourceVector};
use integrade::orb::any::AnyValue;
use integrade::orb::cdr::{CdrDecode, CdrEncode};
use integrade::orb::ior::{Endpoint, Ior, ObjectKey};
use integrade::orb::naming::NamingServant;
use integrade::orb::trading::{ServiceOffer, TraderServant};
use integrade::orb::transport::LoopbackBus;
use integrade::simnet::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// The paper's prototype flow, end to end over the full marshalling path:
/// the LRM exports its status as a trader offer; a scheduler-side importer
/// queries the trader with application requirements; the returned offer's
/// IOR is used to negotiate a reservation and launch — every step through
/// GIOP frames.
#[test]
fn trader_mediated_negotiation_over_the_bus() {
    let mut bus = LoopbackBus::new();

    // Cluster-manager node hosts NameService and Trader.
    let manager = bus.add_orb(Endpoint::new(0, 0));
    let ns_ref = bus
        .activate(
            manager,
            ObjectKey::new("NameService"),
            Box::new(NamingServant::new()),
        )
        .unwrap();
    let trader_ref = bus
        .activate(
            manager,
            ObjectKey::new("Trader"),
            Box::new(TraderServant::new(5)),
        )
        .unwrap();

    // Publish the trader in the naming service, resolve it back (clients
    // find services by name, not by endpoint).
    bus.invoke(&ns_ref, "bind", |w| {
        ("services/trading".to_owned(), trader_ref.clone()).encode(w)
    })
    .unwrap();
    let out = bus
        .invoke(&ns_ref, "resolve", |w| "services/trading".encode(w))
        .unwrap();
    let resolved_trader = Ior::from_cdr_bytes(&out).unwrap();
    assert_eq!(resolved_trader, trader_ref);

    // A provider node hosts its LRM servant.
    let provider = bus.add_orb(Endpoint::new(1, 0));
    let clock = Rc::new(RefCell::new(SimTime::from_secs(100)));
    let lrm_state = Rc::new(RefCell::new(LrmState::new(
        NodeId(1),
        ResourceVector::lab_machine(),
        Platform::linux_x86(),
        SharingPolicy::default(),
        NodeRoles::provider(),
        LrmConfig::default(),
    )));
    let lrm_ref = bus
        .activate(
            provider,
            ObjectKey::new("integrade/lrm"),
            Box::new(LrmServant::new(lrm_state.clone(), clock)),
        )
        .unwrap();

    // LRM exports its node offer to the trader (Information Update
    // Protocol, first update).
    let status = lrm_state.borrow().current_status();
    let properties: BTreeMap<String, AnyValue> = [
        ("cpu_mips".to_owned(), AnyValue::Long(1000)),
        (
            "free_ram_mb".to_owned(),
            AnyValue::Long(status.free_ram_mb as i64),
        ),
        ("exporting".to_owned(), AnyValue::Bool(status.exporting)),
    ]
    .into_iter()
    .collect();
    bus.invoke(&resolved_trader, "export", |w| {
        ("integrade::node".to_owned(), lrm_ref.clone(), properties).encode(w)
    })
    .unwrap();

    // Importer: query with the paper's example requirements.
    let out = bus
        .invoke(&resolved_trader, "query", |w| {
            (
                "integrade::node".to_owned(),
                "exporting == true and cpu_mips >= 500 and free_ram_mb >= 16".to_owned(),
                "max cpu_mips".to_owned(),
                10u32,
            )
                .encode(w)
        })
        .unwrap();
    let offers = Vec::<ServiceOffer>::from_cdr_bytes(&out).unwrap();
    assert_eq!(offers.len(), 1);
    let target = offers[0].reference.clone();
    assert_eq!(target, lrm_ref);

    // Direct negotiation with the offer's object: reserve then launch.
    let out = bus
        .invoke(&target, OP_RESERVE, |w| {
            ReserveRequest {
                request_id: 0,
                job: JobId(1),
                part: 0,
                ram_mb: 64,
                min_cpu_fraction: 0.1,
                duration_hint_s: 300,
            }
            .encode(w)
        })
        .unwrap();
    let reserve = ReserveReply::from_cdr_bytes(&out).unwrap();
    assert!(reserve.granted, "{}", reserve.reason);

    let out = bus
        .invoke(&target, OP_LAUNCH, |w| {
            LaunchRequest {
                request_id: 0,
                reservation: reserve.reservation,
                job: JobId(1),
                part: 0,
                work_mips_s: 5_000,
                checkpoint_interval_mips_s: 0.0,
                state_bytes: 0,
                resume_version: 0,
                replicas: vec![],
            }
            .encode(w)
        })
        .unwrap();
    let launch = LaunchReply::from_cdr_bytes(&out).unwrap();
    assert!(launch.accepted, "{}", launch.reason);
    assert_eq!(lrm_state.borrow().running().len(), 1);
}

/// Stringified IORs survive a full round trip through the naming service —
/// the interoperability property CORBA IORs exist for.
#[test]
fn stringified_ior_round_trip_through_naming() {
    let original = Ior::new(
        "IDL:integrade/Grm:1.0",
        Endpoint::new(7, 2048),
        ObjectKey::new("integrade/grm"),
    );
    let stringified = original.to_stringified();
    let parsed = Ior::from_stringified(&stringified).unwrap();

    let mut bus = LoopbackBus::new();
    let ep = bus.add_orb(Endpoint::new(0, 0));
    let ns = bus
        .activate(
            ep,
            ObjectKey::new("NameService"),
            Box::new(NamingServant::new()),
        )
        .unwrap();
    bus.invoke(&ns, "bind", |w| ("grm".to_owned(), parsed).encode(w))
        .unwrap();
    let out = bus.invoke(&ns, "resolve", |w| "grm".encode(w)).unwrap();
    assert_eq!(Ior::from_cdr_bytes(&out).unwrap(), original);
}

/// A refused negotiation surfaces through the whole stack: a busy owner's
/// LRM refuses, and the refusal reason crosses the wire intact.
#[test]
fn negotiation_refusal_propagates() {
    use integrade::usage::sample::{UsageSample, Weekday};
    let mut bus = LoopbackBus::new();
    let provider = bus.add_orb(Endpoint::new(1, 0));
    let clock = Rc::new(RefCell::new(SimTime::ZERO));
    let lrm_state = Rc::new(RefCell::new(LrmState::new(
        NodeId(1),
        ResourceVector::desktop(),
        Platform::linux_x86(),
        SharingPolicy::default(),
        NodeRoles::provider(),
        LrmConfig::default(),
    )));
    lrm_state.borrow_mut().observe_owner(
        UsageSample::new(0.9, 0.6, 0.1, 0.1),
        Weekday::new(1),
        600,
    );
    let lrm_ref = bus
        .activate(
            provider,
            ObjectKey::new("integrade/lrm"),
            Box::new(LrmServant::new(lrm_state, clock)),
        )
        .unwrap();
    let out = bus
        .invoke(&lrm_ref, OP_RESERVE, |w| {
            ReserveRequest {
                request_id: 0,
                job: JobId(9),
                part: 0,
                ram_mb: 16,
                min_cpu_fraction: 0.05,
                duration_hint_s: 60,
            }
            .encode(w)
        })
        .unwrap();
    let reply = ReserveReply::from_cdr_bytes(&out).unwrap();
    assert!(!reply.granted);
    assert!(reply.reason.contains("not exporting"), "{}", reply.reason);
}

/// Frame authentication end to end in the grid: with the cluster key
/// enabled the workload runs unchanged, while forged / replayed-under-
/// wrong-key frames are rejected at the receiving host — §3's
/// authentication investigation as a working mechanism.
#[test]
fn cluster_key_authenticates_protocol_frames() {
    use integrade::core::asct::{JobSpec, JobState};
    use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
    use integrade::orb::giop::Message;
    use integrade::orb::security::ClusterKey;
    use integrade::simnet::topology::HostId;

    let key = ClusterKey::new(0x1234_5678, 0x9ABC_DEF0);
    let config = GridConfig::builder()
        .gupa_warmup_days(0)
        .cluster_key(key)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..3).map(|_| NodeSetup::idle_desktop()).collect());
    let mut grid = builder.build();

    // An attacker on host 2 forges an unsealed status update for the GRM,
    // and another sealed under the wrong key.
    let forged = Message::Request {
        request_id: 99,
        response_expected: false,
        object_key: ObjectKey::new("integrade/grm"),
        operation: "update_status".into(),
        body: vec![0u8; 16].into(),
    }
    .to_wire();
    let manager = grid.manager_host();
    grid.inject_frame(HostId(2), manager, forged.clone());
    grid.inject_frame(
        HostId(2),
        manager,
        integrade::orb::security::seal(ClusterKey::new(0, 0), &forged),
    );

    // Legitimate traffic is unaffected.
    let job = grid.submit(JobSpec::sequential("authed", 1500));
    grid.run_until(SimTime::from_secs(1800));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(grid.log().count("auth.reject"), 2, "both forgeries dropped");
    // No ORB-level errors: forgeries never reached a servant.
    assert_eq!(grid.log().count("orb.error"), 0);
}
