//! Causal trace reconstruction: for a part that is evicted by a node crash
//! and recovered from the checkpoint repository, one API call
//! (`Grid::part_span_tree`) must return the whole story in causal order —
//! reserve → launch → checkpoint stores → crash → recovery → replica fetch
//! → relaunch — under a fixed chaos seed matrix.
//!
//! This is the acceptance test for the observability tentpole: span ids are
//! the protocol request ids, so the reconstruction is exact, not heuristic,
//! and recording them must not perturb the simulation (`tests/tick_parity.rs`
//! proves bit-for-bit passivity separately).

use integrade::prelude::*;

/// The same seed matrix the chaos suite uses: a small default set for
/// `cargo test`, widened in CI via `CHAOS_SEEDS`.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => {
            let seeds: Vec<u64> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!seeds.is_empty(), "CHAOS_SEEDS set but empty: {spec:?}");
            seeds
        }
        Err(_) => vec![1, 2, 3, 4],
    }
}

/// The crash-recovery scenario from `tests/crash_recovery.rs`, instrumented:
/// checkpointing every ~200 s of grid CPU so the repository holds state when
/// the executor dies.
fn grid_seeded(nodes: usize, seed: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// Index of the first span of `kind` in a causal slice.
fn first(spans: &[&Span], kind: SpanKind) -> Option<usize> {
    spans.iter().position(|s| s.kind == kind)
}

#[test]
fn span_tree_reconstructs_evicted_part_end_to_end() {
    for seed in chaos_seeds() {
        let mut grid = grid_seeded(3, seed);
        let job = grid.submit(JobSpec::sequential("traced", 1_000_000));
        grid.run_until(SimTime::from_secs(1800));
        assert_eq!(
            grid.job_record(job).unwrap().state,
            JobState::Running,
            "seed {seed}"
        );
        let host = (0..grid.node_count() as u32)
            .map(NodeId)
            .find(|&n| !grid.lrm(n).unwrap().running().is_empty())
            .expect("job is running somewhere");
        grid.crash_node(host);
        grid.run_until(SimTime::from_secs(6 * 3600));
        let record = grid.job_record(job).unwrap();
        assert_eq!(record.state, JobState::Completed, "seed {seed}: {record:?}");
        assert_eq!(record.evictions, 1, "seed {seed}");

        // One API call: the full causal tree of part 0.
        let trees = grid.part_span_tree(job, 0);
        assert_eq!(
            trees.len(),
            1,
            "seed {seed}: one unbroken causal chain rooted at the first reserve"
        );
        let root = &trees[0];
        assert_eq!(root.span.kind, SpanKind::Reserve, "seed {seed}");
        assert_eq!(root.span.parent, 0, "seed {seed}");

        // The flattened tree covers exactly the part's span history, in
        // causal order (sim time monotone along the flatten).
        let flat = root.flatten();
        let part_history: Vec<&Span> = grid
            .spans()
            .iter()
            .filter(|s| s.job == job.0 && s.part == 0)
            .collect();
        assert_eq!(
            flat.len(),
            part_history.len(),
            "seed {seed}: tree is lossless"
        );
        for w in flat.windows(2) {
            assert!(
                w[0].start_us <= w[1].start_us,
                "seed {seed}: causal order must follow sim time: {w:?}"
            );
        }

        // The story, in order: reserve → launch → checkpoint store(s) →
        // crash → recovery → replica fetch → relaunch.
        let reserve = first(&flat, SpanKind::Reserve).unwrap();
        let launch = first(&flat, SpanKind::Launch).expect("launched");
        let store = first(&flat, SpanKind::StoreCkpt).expect("checkpointed");
        let crash = first(&flat, SpanKind::Crash).expect("crash recorded");
        let recovery = first(&flat, SpanKind::Recovery).expect("recovery recorded");
        let fetch = first(&flat, SpanKind::FetchCkpt).expect("replica fetched");
        assert!(reserve < launch, "seed {seed}");
        assert!(launch < store, "seed {seed}");
        assert!(store < crash, "seed {seed}");
        assert!(crash < recovery, "seed {seed}");
        assert!(recovery < fetch, "seed {seed}");
        let relaunch = flat[fetch..]
            .iter()
            .position(|s| s.kind == SpanKind::Launch)
            .map(|i| i + fetch)
            .expect("seed {seed}: the part must be relaunched after the fetch");
        assert_eq!(
            flat[relaunch].outcome,
            SpanOutcome::Ok,
            "seed {seed}: the relaunch succeeded (the job completed)"
        );
        assert_ne!(
            flat[relaunch].node, flat[crash].node,
            "seed {seed}: the relaunch cannot target the dead node"
        );

        // Span detail: the crash names the node that died; every successful
        // store closed Ok; synthetic events are instantaneous.
        assert_eq!(flat[crash].node, u64::from(host.0), "seed {seed}");
        assert_eq!(flat[crash].outcome, SpanOutcome::Event, "seed {seed}");
        assert_eq!(flat[crash].duration_us(), 0, "seed {seed}");
        assert!(
            flat.iter()
                .filter(|s| s.kind == SpanKind::StoreCkpt)
                .any(|s| s.outcome == SpanOutcome::Ok),
            "seed {seed}: at least one checkpoint store must have succeeded"
        );

        // The metrics side of the same story.
        let snapshot = grid.metrics_snapshot();
        assert!(snapshot.counter_total("grid_crashes") >= 1, "seed {seed}");
        assert!(
            snapshot
                .histogram("grid_negotiation_latency_seconds")
                .unwrap()
                .count
                >= 2,
            "seed {seed}: initial negotiation plus the recovery negotiation"
        );
        assert!(
            snapshot
                .histogram("grid_checkpoint_store_rtt_seconds")
                .unwrap()
                .count
                >= 1,
            "seed {seed}"
        );

        // The human-facing rendering carries the whole chain too.
        let rendered = root.render();
        for needle in [
            "reserve",
            "launch",
            "store_ckpt",
            "crash",
            "recovery",
            "fetch_ckpt",
        ] {
            assert!(
                rendered.contains(needle),
                "seed {seed}: missing {needle}:\n{rendered}"
            );
        }
    }
}

/// Disabling metrics stops span recording (and the tree comes back empty)
/// without touching the simulation outcome.
#[test]
fn disabled_observability_records_no_spans() {
    let mut grid = grid_seeded(3, 1);
    grid.set_metrics_enabled(false);
    let job = grid.submit(JobSpec::sequential("dark", 100_000));
    grid.run_until(SimTime::from_secs(2 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert!(grid.spans().is_empty());
    assert!(grid.part_span_tree(job, 0).is_empty());
}

/// Parallel parts chain independently: a bag-of-tasks job yields one causal
/// tree per part, each rooted at its own reserve.
#[test]
fn parts_get_independent_causal_chains() {
    let mut grid = grid_seeded(4, 2);
    let job = grid.submit(JobSpec::bag_of_tasks("bag", 3, 40_000));
    grid.run_until(SimTime::from_secs(3 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    for part in 0..3u32 {
        let trees = grid.part_span_tree(job, part);
        assert_eq!(trees.len(), 1, "part {part}");
        assert_eq!(trees[0].span.kind, SpanKind::Reserve, "part {part}");
        assert!(
            trees[0].flatten().iter().all(|s| s.part == part),
            "part {part}: no cross-part leakage"
        );
    }
}
