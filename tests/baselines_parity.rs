//! E11-shaped parity test: the same desktop population and workload run on
//! InteGrade and on the baseline systems, and the qualitative comparisons
//! the paper makes in §2 must hold.

use integrade::baselines::{
    BaselineNode, BaselineSystem, BoincConfig, BoincSim, CondorConfig, CondorSim, NaiveSim,
};
use integrade::core::asct::JobSpec;
use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
use integrade::simnet::rng::DetRng;
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::usage::sample::UsageSample;
use integrade::workload::desktop::{generate_trace, Archetype, TraceConfig};

fn population(seed: u64, n: usize) -> Vec<Vec<UsageSample>> {
    let mut rng = DetRng::new(seed);
    let cfg = TraceConfig::default();
    (0..n)
        .map(|i| {
            let archetype = match i % 3 {
                0 => Archetype::OfficeWorker,
                1 => Archetype::LabMachine,
                _ => Archetype::Spare,
            };
            generate_trace(archetype, &cfg, &mut rng.fork(i as u64))
        })
        .collect()
}

fn workload() -> Vec<(SimTime, JobSpec)> {
    let mut jobs = Vec::new();
    for i in 0..4 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_hours(1 + i),
            JobSpec::sequential(&format!("seq{i}"), 200_000),
        ));
    }
    jobs.push((
        SimTime::ZERO + SimDuration::from_hours(2),
        JobSpec::bag_of_tasks("bag", 6, 100_000),
    ));
    jobs.push((
        SimTime::ZERO + SimDuration::from_hours(3),
        JobSpec::bsp("parallel", 3, 40, 2_000, 8_192),
    ));
    jobs
}

#[test]
fn integrade_runs_the_full_mix_including_parallel() {
    let traces = population(11, 9);
    let config = GridConfig::builder().gupa_warmup_days(0).build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        traces
            .iter()
            .map(|t| NodeSetup {
                trace: t.clone(),
                ..NodeSetup::idle_desktop()
            })
            .collect(),
    );
    let mut grid = builder.build();
    for (at, spec) in workload() {
        grid.submit_at(spec, at);
    }
    grid.run_until(SimTime::ZERO + SimDuration::from_hours(48));
    let report = grid.report();
    assert_eq!(report.completed(), 6, "{:?}", report.records);
    assert_eq!(report.qos.cap_violations, 0);
}

#[test]
fn boinc_cannot_run_the_parallel_job() {
    let traces = population(11, 9);
    let nodes: Vec<BaselineNode> = traces.into_iter().map(BaselineNode::desktop).collect();
    let report = BoincSim::new(BoincConfig::default()).run(
        &nodes,
        &workload(),
        SimTime::ZERO + SimDuration::from_hours(48),
    );
    // §2: BOINC "lacks general support for parallel applications".
    assert_eq!(report.unsupported(), 1);
    // But the high-throughput subset completes.
    assert!(report.completed() >= 4, "completed={}", report.completed());
}

#[test]
fn condor_needs_reserved_nodes_for_the_parallel_job() {
    let traces = population(11, 9);
    let nodes: Vec<BaselineNode> = traces
        .clone()
        .into_iter()
        .map(BaselineNode::desktop)
        .collect();
    let report = CondorSim::new(CondorConfig::default()).run(
        &nodes,
        &workload(),
        SimTime::ZERO + SimDuration::from_hours(48),
    );
    // §2: without partially-reserved nodes, parallel support is unavailable.
    assert_eq!(report.unsupported(), 1);

    // Reserving three nodes fixes it — at the cost the paper criticises
    // (those machines are withdrawn from their owners).
    let mut nodes: Vec<BaselineNode> = traces.into_iter().map(BaselineNode::desktop).collect();
    for node in nodes.iter_mut().take(3) {
        node.reserved_for_parallel = true;
        node.trace.clear(); // reserved nodes are dedicated
    }
    let report = CondorSim::new(CondorConfig::default()).run(
        &nodes,
        &workload(),
        SimTime::ZERO + SimDuration::from_hours(48),
    );
    assert_eq!(report.unsupported(), 0);
    assert_eq!(report.completed(), 6, "{:?}", report.jobs);
}

#[test]
fn checkpointing_reduces_condor_waste() {
    // A long job on office machines that will definitely be interrupted.
    let traces = population(23, 4);
    let nodes: Vec<BaselineNode> = traces.into_iter().map(BaselineNode::desktop).collect();
    let long_job = vec![(
        SimTime::ZERO + SimDuration::from_hours(7),
        JobSpec::sequential("long", 500 * 3600 * 4), // 4 h at full speed
    )];
    let horizon = SimTime::ZERO + SimDuration::from_hours(72);
    let plain = CondorSim::new(CondorConfig::default()).run(&nodes, &long_job, horizon);
    let ckpt = CondorSim::new(CondorConfig {
        checkpointing: true,
        ..Default::default()
    })
    .run(&nodes, &long_job, horizon);
    assert!(ckpt.total_wasted_work() <= plain.total_wasted_work());
    if plain.total_evictions() > 0 {
        assert_eq!(
            ckpt.total_wasted_work(),
            0,
            "relink checkpointing saves all work"
        );
    }
}

#[test]
fn naive_control_wastes_at_least_as_much_as_condor() {
    let traces = population(31, 8);
    let nodes: Vec<BaselineNode> = traces.into_iter().map(BaselineNode::desktop).collect();
    let jobs: Vec<(SimTime, JobSpec)> = (0..6)
        .map(|i| {
            (
                SimTime::ZERO + SimDuration::from_hours(6 + i),
                JobSpec::sequential(&format!("j{i}"), 500 * 3600),
            )
        })
        .collect();
    let horizon = SimTime::ZERO + SimDuration::from_hours(72);
    let condor = CondorSim::new(CondorConfig {
        checkpointing: true,
        ..Default::default()
    })
    .run(&nodes, &jobs, horizon);
    let naive = NaiveSim::new(1).run(&nodes, &jobs, horizon);
    assert!(condor.completed() >= naive.completed());
    assert!(condor.total_wasted_work() <= naive.total_wasted_work());
}
