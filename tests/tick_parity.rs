//! Tick-engine parity: every scaled slot-tick path — the lazy
//! `TickMode::ActiveSet` walk and the parallel `TickMode::Sharded`
//! frame at worker widths 1, 2, 4 and 8 — must be *observably identical*
//! to the exhaustive per-node reference walk (`TickMode::Reference`) it
//! replaced — same event logs, same completions and makespans, same network
//! traffic, same update-protocol counters, same merged owner-QoS ledger —
//! across seeds, owner-trace mixes, delta-suppression settings and injected
//! faults.
//!
//! The reference walk is kept in the tree exactly so this oracle exists; a
//! divergence here means the lazy catch-up, timer parking or the sharded
//! frame-boundary merge broke semantics, not just performance. Two further
//! contracts get dedicated tests: `Sharded { workers: 1 }` is bit-for-bit
//! the ActiveSet walk, and a fixed worker count reproduces itself exactly
//! run over run (the determinism contract only pins a *fixed* `W`).
//!
//! The seed matrix defaults to a small set for `cargo test`; CI widens it
//! via the `CHAOS_SEEDS` environment variable (comma-separated u64s).

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade::core::types::NodeId;
use integrade::simnet::faults::FaultPlan;
use integrade::simnet::time::{SimDuration, SimTime};
use integrade::usage::sample::{UsageSample, Weekday};
use proptest::prelude::*;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(spec) => {
            let seeds: Vec<u64> = spec
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!seeds.is_empty(), "CHAOS_SEEDS set but empty: {spec:?}");
            seeds
        }
        Err(_) => vec![1, 2, 3, 4],
    }
}

/// Office-hours owner trace: busy weekdays 9–18h, near-idle otherwise.
fn office_trace() -> Vec<UsageSample> {
    let slots_per_day = 288;
    let mut trace = Vec::with_capacity(slots_per_day * 7);
    for day in 0..7u64 {
        let weekday = Weekday::from_day_number(day);
        for slot in 0..slots_per_day {
            let hour = slot as f64 * 24.0 / slots_per_day as f64;
            let busy = !weekday.is_weekend() && (9.0..18.0).contains(&hour);
            trace.push(if busy {
                UsageSample::new(0.8, 0.5, 0.1, 0.05)
            } else {
                UsageSample::new(0.02, 0.05, 0.0, 0.0)
            });
        }
    }
    trace
}

/// A mixed cluster: `traced` office-hours nodes, the rest always idle —
/// so both the lazily replayed sampling path (traced) and the parked-timer
/// path (untraced + suppression) are exercised.
fn build_grid(mode: TickMode, seed: u64, nodes: usize, traced: usize, delta: bool) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        // Checkpointing on: replicas keep holder nodes engaged and drive
        // the shared-payload store path from inside the tick loop.
        .sequential_checkpoint_mips_s(30_000.0)
        .delta_suppression(delta)
        .tick_mode(mode)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..nodes)
            .map(|i| {
                if i < traced {
                    NodeSetup {
                        trace: office_trace(),
                        ..NodeSetup::idle_desktop()
                    }
                } else {
                    NodeSetup::idle_desktop()
                }
            })
            .collect(),
    );
    builder.build()
}

/// Drives one grid through the shared scenario script.
fn run_scenario(grid: &mut Grid, seed: u64, drop_pct: f64, crash: bool) {
    if drop_pct > 0.0 {
        grid.set_fault_plan(
            FaultPlan::new(seed)
                .with_drop_probability(drop_pct)
                .with_jitter(SimDuration::from_millis(50)),
        );
    }
    grid.submit(JobSpec::sequential("parity-seq", 300_000));
    grid.submit(JobSpec::bag_of_tasks("parity-bag", 3, 60_000));
    grid.run_until(SimTime::from_secs(1800));
    if crash {
        grid.crash_node(NodeId(0));
        grid.run_until(SimTime::from_secs(2400));
        grid.restore_node(NodeId(0));
    }
    grid.submit(JobSpec::sequential("parity-late", 90_000));
    grid.run_until(SimTime::from_secs(6 * 3600));
}

/// Asserts every externally observable artifact matches bit for bit.
fn assert_parity(fast: &mut Grid, reference: &mut Grid, ctx: &str) {
    assert_eq!(
        fast.log().records(),
        reference.log().records(),
        "{ctx}: event logs diverged"
    );
    let fast_report = fast.report();
    let ref_report = reference.report();
    assert_eq!(
        fast_report.records, ref_report.records,
        "{ctx}: job records diverged"
    );
    assert_eq!(fast_report.net, ref_report.net, "{ctx}: net stats diverged");
    assert_eq!(
        fast_report.updates, ref_report.updates,
        "{ctx}: update-protocol stats diverged"
    );
    assert_eq!(
        fast_report.trader_queries, ref_report.trader_queries,
        "{ctx}: trader query counts diverged"
    );
    assert_eq!(
        fast_report.qos, ref_report.qos,
        "{ctx}: QoS ledgers diverged"
    );
    assert_eq!(
        fast_report.overhead, ref_report.overhead,
        "{ctx}: overhead ledgers diverged"
    );
    assert_eq!(
        fast_report.gupa_models, ref_report.gupa_models,
        "{ctx}: GUPA model counts diverged"
    );
    // Guard against a vacuous scenario: the workload must actually run.
    assert!(
        fast_report
            .records
            .iter()
            .any(|r| r.state == JobState::Completed),
        "{ctx}: no job completed — scenario exercised nothing"
    );
    // Internal per-node state converges too once both sides are flushed
    // (report() catches every node up).
    for n in 0..fast.node_count() as u32 {
        let a = fast.lrm(NodeId(n)).unwrap();
        let b = reference.lrm(NodeId(n)).unwrap();
        assert_eq!(
            a.running(),
            b.running(),
            "{ctx}: node {n} running sets diverged"
        );
        assert_eq!(
            a.reservations(),
            b.reservations(),
            "{ctx}: node {n} reservations diverged"
        );
    }
}

fn check_parity(seed: u64, nodes: usize, traced: usize, delta: bool, drop_pct: f64, crash: bool) {
    let mut fast = build_grid(TickMode::ActiveSet, seed, nodes, traced, delta);
    let mut reference = build_grid(TickMode::Reference, seed, nodes, traced, delta);
    run_scenario(&mut fast, seed, drop_pct, crash);
    run_scenario(&mut reference, seed, drop_pct, crash);
    let ctx = format!(
        "seed {seed}, {nodes} nodes ({traced} traced), delta={delta}, \
         drop={drop_pct}, crash={crash}"
    );
    assert_parity(&mut fast, &mut reference, &ctx);
}

/// The sharded widths every suite sweeps: the degenerate single shard,
/// even splits, and more shards than fit evenly into the 8-node cluster
/// (so trailing shards own short or empty id ranges).
const SHARD_WIDTHS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn parity_across_chaos_seed_matrix_with_faults() {
    for seed in chaos_seeds() {
        check_parity(seed, 8, 3, false, 0.05, true);
    }
}

#[test]
fn sharded_parity_across_widths_and_chaos_seeds() {
    // One reference oracle per seed, checked against every worker width
    // under packet loss and a mid-run crash/restore.
    for seed in chaos_seeds() {
        let mut reference = build_grid(TickMode::Reference, seed, 8, 3, false);
        run_scenario(&mut reference, seed, 0.05, true);
        for workers in SHARD_WIDTHS {
            let mut sharded = build_grid(TickMode::Sharded { workers }, seed, 8, 3, false);
            run_scenario(&mut sharded, seed, 0.05, true);
            let ctx = format!("Sharded{{{workers}}} vs Reference, seed {seed}");
            assert_parity(&mut sharded, &mut reference, &ctx);
        }
    }
}

#[test]
fn sharded_parity_with_delta_suppression_and_parked_timers() {
    // Suppression + idle nodes parks update timers inside the sharded
    // frame too; the merge must reconstruct the identical wake order.
    for seed in chaos_seeds() {
        let mut reference = build_grid(TickMode::Reference, seed, 8, 2, true);
        run_scenario(&mut reference, seed, 0.0, false);
        for workers in SHARD_WIDTHS {
            let mut sharded = build_grid(TickMode::Sharded { workers }, seed, 8, 2, true);
            run_scenario(&mut sharded, seed, 0.0, false);
            let ctx = format!("Sharded{{{workers}}} suppression, seed {seed}");
            assert_parity(&mut sharded, &mut reference, &ctx);
        }
    }
}

#[test]
fn sharded_one_worker_is_bitwise_active_set() {
    // The documented contract: a single shard IS the ActiveSet walk —
    // same code path order, same RNG draws, same artifacts bit for bit.
    for seed in chaos_seeds() {
        let mut sharded = build_grid(TickMode::Sharded { workers: 1 }, seed, 8, 3, false);
        let mut active = build_grid(TickMode::ActiveSet, seed, 8, 3, false);
        run_scenario(&mut sharded, seed, 0.05, true);
        run_scenario(&mut active, seed, 0.05, true);
        let ctx = format!("Sharded{{1}} vs ActiveSet, seed {seed}");
        assert_parity(&mut sharded, &mut active, &ctx);
    }
}

#[test]
fn sharded_fixed_width_reproduces_itself() {
    // The determinism contract pins a *fixed* worker count: the same seed
    // and the same W must reproduce the run exactly, however the OS
    // schedules the worker threads.
    for workers in SHARD_WIDTHS {
        let mut first = build_grid(TickMode::Sharded { workers }, 7, 8, 3, false);
        let mut second = build_grid(TickMode::Sharded { workers }, 7, 8, 3, false);
        run_scenario(&mut first, 7, 0.05, true);
        run_scenario(&mut second, 7, 0.05, true);
        let ctx = format!("Sharded{{{workers}}} self-reproducibility");
        assert_parity(&mut first, &mut second, &ctx);
    }
}

#[test]
fn parity_with_delta_suppression_and_parked_timers() {
    // Delta suppression plus idle nodes is the configuration where
    // ActiveSet actually parks update timers — the riskiest divergence
    // surface, so it gets its own deterministic pass.
    for seed in chaos_seeds() {
        check_parity(seed, 8, 2, true, 0.0, false);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized scenario shapes: any mix of traced nodes, suppression,
    /// loss and a mid-run crash must leave ActiveSet, a sampled sharded
    /// width and the reference walk mutually indistinguishable.
    #[test]
    fn parity_is_seed_and_shape_independent(
        seed in 1u64..1_000_000,
        nodes in 4usize..10,
        traced_frac in 0usize..4,
        delta in any::<bool>(),
        drop in prop_oneof![Just(0.0), Just(0.05), Just(0.15)],
        crash in any::<bool>(),
        workers in prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
    ) {
        let traced = nodes * traced_frac / 4;
        let mut reference = build_grid(TickMode::Reference, seed, nodes, traced, delta);
        run_scenario(&mut reference, seed, drop, crash);
        let ctx = format!(
            "seed {seed}, {nodes} nodes ({traced} traced), delta={delta}, \
             drop={drop}, crash={crash}"
        );
        let mut fast = build_grid(TickMode::ActiveSet, seed, nodes, traced, delta);
        run_scenario(&mut fast, seed, drop, crash);
        assert_parity(&mut fast, &mut reference, &format!("ActiveSet, {ctx}"));
        let mut sharded = build_grid(TickMode::Sharded { workers }, seed, nodes, traced, delta);
        run_scenario(&mut sharded, seed, drop, crash);
        assert_parity(
            &mut sharded,
            &mut reference,
            &format!("Sharded{{{workers}}}, {ctx}"),
        );
    }
}

/// Gray-failure parity: a fault plan carrying every degradation primitive
/// — a CPU derate, a limping link and a flapping host — with speculative
/// re-execution armed, must still replay bit-for-bit across every tick
/// engine. The straggler detector and twin races run in the
/// single-threaded phase, so their log stream is part of the contract.
#[test]
fn gray_failure_speculation_parity_across_all_modes() {
    use integrade::simnet::faults::{DerateWindow, HostFlap, LinkLimp};

    fn build_gray(mode: TickMode, seed: u64) -> Grid {
        let config = GridConfig::builder()
            .seed(seed)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(30_000.0)
            .speculation(true)
            .tick_mode(mode)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster(
            (0..8)
                .map(|i| {
                    if i < 3 {
                        NodeSetup {
                            trace: office_trace(),
                            ..NodeSetup::idle_desktop()
                        }
                    } else {
                        NodeSetup::idle_desktop()
                    }
                })
                .collect(),
        );
        builder.build()
    }

    fn run_gray(grid: &mut Grid, seed: u64) {
        let plan = FaultPlan::new(seed)
            .with_drop_probability(0.03)
            .with_jitter(SimDuration::from_millis(30))
            .with_derate(DerateWindow {
                host: grid.host_of(NodeId(3)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(24 * 3600),
                factor: 0.25,
            })
            .with_limp(LinkLimp {
                a: grid.host_of(NodeId(4)),
                b: grid.host_of(NodeId(5)),
                added_latency: SimDuration::from_millis(200),
                start: SimTime::from_secs(600),
                end: SimTime::from_secs(3600),
            })
            .with_flap(HostFlap {
                host: grid.host_of(NodeId(7)),
                first_down: SimTime::from_secs(900),
                down_for: SimDuration::from_secs(120),
                up_for: SimDuration::from_secs(900),
                cycles: 2,
            });
        grid.set_fault_plan(plan);
        grid.submit(JobSpec::bag_of_tasks("gray-bag", 6, 300_000));
        grid.submit(JobSpec::sequential("gray-seq", 120_000));
        grid.run_until(SimTime::from_secs(6 * 3600));
    }

    for seed in chaos_seeds() {
        let mut reference = build_gray(TickMode::Reference, seed);
        run_gray(&mut reference, seed);
        let mut active = build_gray(TickMode::ActiveSet, seed);
        run_gray(&mut active, seed);
        assert_parity(
            &mut active,
            &mut reference,
            &format!("seed {seed}, gray plan, ActiveSet"),
        );
        for workers in SHARD_WIDTHS {
            let mut sharded = build_gray(TickMode::Sharded { workers }, seed);
            run_gray(&mut sharded, seed);
            assert_parity(
                &mut sharded,
                &mut reference,
                &format!("seed {seed}, gray plan, Sharded{{{workers}}}"),
            );
        }
    }
}

/// A grid with the LUPA measurement jitter armed: 8 nodes, 3 traced,
/// checkpointing on, `lupa_noise` well inside its domain. Jitter is the
/// first per-node work that actually draws from the shard streams, so these
/// scenarios exercise the drawing-streams half of the determinism contract.
fn build_noisy(mode: TickMode, seed: u64) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .lupa_noise(0.05)
        .tick_mode(mode)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster(
        (0..8)
            .map(|i| {
                if i < 3 {
                    NodeSetup {
                        trace: office_trace(),
                        ..NodeSetup::idle_desktop()
                    }
                } else {
                    NodeSetup::idle_desktop()
                }
            })
            .collect(),
    );
    builder.build()
}

/// Runs past one midnight rollover so every node completes a day period and
/// uploads its (jittered) samples to the GUPA.
fn run_noisy(grid: &mut Grid) {
    grid.submit(JobSpec::sequential("noisy-seq", 300_000));
    grid.submit(JobSpec::bag_of_tasks("noisy-bag", 3, 60_000));
    grid.run_until(SimTime::from_secs(26 * 3600));
}

/// Every node's uploaded GUPA history — the one artifact the contract
/// allows to differ across worker counts when noise is on.
fn gupa_histories(grid: &Grid) -> Vec<Vec<integrade::usage::sample::DayPeriod>> {
    (0..grid.node_count() as u32)
        .map(|n| grid.gupa().history(NodeId(n)).to_vec())
        .collect()
}

#[test]
fn noisy_fixed_width_reproduces_itself() {
    // Now that the shard streams actually draw, the fixed-(mode, W) half of
    // the contract: same seed + same worker count → bit-for-bit, including
    // the jittered GUPA history content.
    for mode in [
        TickMode::ActiveSet,
        TickMode::Sharded { workers: 2 },
        TickMode::Sharded { workers: 4 },
    ] {
        let mut first = build_noisy(mode, 11);
        let mut second = build_noisy(mode, 11);
        run_noisy(&mut first);
        run_noisy(&mut second);
        let ctx = format!("{mode:?} with lupa_noise, self-reproducibility");
        assert_parity(&mut first, &mut second, &ctx);
        assert_eq!(
            gupa_histories(&first),
            gupa_histories(&second),
            "{ctx}: jittered GUPA histories diverged"
        );
        assert!(
            first.gupa().uploads() > 0,
            "{ctx}: no uploads — the rollover never happened"
        );
    }
}

#[test]
fn noisy_sharded_one_worker_is_bitwise_active_set() {
    // The sequential modes draw their jitter from shard 0's stream, so a
    // single shard stays the ActiveSet walk bit for bit even with noise.
    let mut sharded = build_noisy(TickMode::Sharded { workers: 1 }, 11);
    let mut active = build_noisy(TickMode::ActiveSet, 11);
    run_noisy(&mut sharded);
    run_noisy(&mut active);
    let ctx = "Sharded{1} vs ActiveSet with lupa_noise";
    assert_parity(&mut sharded, &mut active, ctx);
    assert_eq!(
        gupa_histories(&sharded),
        gupa_histories(&active),
        "{ctx}: jittered GUPA histories diverged"
    );
}

#[test]
fn noisy_cross_width_execution_invariants_with_measurement_divergence() {
    // The cross-W half of the contract: different worker counts draw
    // different jitter, so the *measured* samples the GUPA stores genuinely
    // differ — but jitter feeds only the pattern learner, never the owner
    // state that drives eviction, QoS, status updates or uploads, so every
    // execution-visible artifact must stay bitwise invariant.
    let mut base = build_noisy(TickMode::ActiveSet, 11);
    run_noisy(&mut base);
    let base_histories = gupa_histories(&base);
    let mut any_divergence = false;
    for workers in [2usize, 4, 8] {
        let mut sharded = build_noisy(TickMode::Sharded { workers }, 11);
        run_noisy(&mut sharded);
        let ctx = format!("Sharded{{{workers}}} vs ActiveSet with lupa_noise");
        assert_parity(&mut sharded, &mut base, &ctx);
        let histories = gupa_histories(&sharded);
        // Same shape — one upload per node per rollover...
        assert_eq!(
            histories.iter().map(Vec::len).collect::<Vec<_>>(),
            base_histories.iter().map(Vec::len).collect::<Vec<_>>(),
            "{ctx}: upload counts diverged"
        );
        // ...but the sample content must differ somewhere, or the shard
        // streams never actually drew and this whole suite is vacuous.
        any_divergence |= histories != base_histories;
    }
    assert!(
        any_divergence,
        "no worker count measured different jitter than ActiveSet — \
         the shard streams are not being consumed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy-balanced sharding is safe by construction: for any
    /// population and member set the ranges are exactly `workers` (clamped)
    /// contiguous pieces partitioning `0..n` in order, the members split
    /// near-equally (sizes differ by at most one), and the function is pure
    /// — the same frame-boundary inputs always produce the same cuts, so a
    /// node can never migrate between shards mid-frame.
    #[test]
    fn occupancy_ranges_partition_balance_and_are_pure(
        n in 1usize..200,
        workers in 1usize..9,
        bits in prop::collection::vec(any::<bool>(), 200),
    ) {
        use integrade::core::grid::occupancy_ranges;
        let members: Vec<usize> = (0..n).filter(|&i| bits[i]).collect();
        let ranges = occupancy_ranges(n, workers, &members);
        prop_assert_eq!(ranges.len(), workers.min(n));
        // Contiguous partition of 0..n in shard order.
        let mut cursor = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.end >= r.start);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, n);
        // Near-equal member occupancy.
        let counts: Vec<usize> = ranges
            .iter()
            .map(|r| members.iter().filter(|&&m| r.contains(&m)).count())
            .collect();
        prop_assert_eq!(counts.iter().sum::<usize>(), members.len());
        if !members.is_empty() {
            let hi = *counts.iter().max().unwrap();
            let lo = *counts.iter().min().unwrap();
            prop_assert!(hi - lo <= 1, "imbalanced: {:?}", counts);
        }
        // Purity: identical inputs → identical cuts (no mid-frame drift).
        prop_assert_eq!(ranges, occupancy_ranges(n, workers, &members));
    }
}

/// Byzantine parity: a sabotage plan — one loner, one colluding pair —
/// with the full certification stack armed (voting quorum, spot-check
/// probes, credibility-adaptive trust) must replay bit-for-bit across
/// every tick engine. Sabotage decisions and probe designations are pure
/// hashes of part identity, never live RNG draws, so the adversarial
/// machinery costs the parallel engine nothing in determinism.
#[test]
fn sabotage_and_certification_parity_across_all_modes() {
    use integrade::simnet::faults::Saboteur;

    fn build_cert(mode: TickMode, seed: u64) -> Grid {
        let config = GridConfig::builder()
            .seed(seed)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(30_000.0)
            .certification(true)
            .cert_replication(2)
            .cert_adaptive(true)
            .cert_spot_check_rate(0.2)
            .cert_trust_threshold(3)
            .tick_mode(mode)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..8).map(|_| NodeSetup::idle_desktop()).collect());
        builder.build()
    }

    fn run_cert(grid: &mut Grid, seed: u64) {
        let mut plan = FaultPlan::new(seed).with_drop_probability(0.02);
        for n in 0..3u32 {
            plan = plan.with_saboteur(Saboteur {
                host: grid.host_of(NodeId(n)),
                start: SimTime::from_secs(0),
                end: SimTime::from_secs(24 * 3600),
                probability: 0.5,
                collusion: if n == 0 { None } else { Some(3) },
            });
        }
        grid.set_fault_plan(plan);
        grid.submit(JobSpec::bag_of_tasks("cert-bag", 8, 60_000));
        grid.submit(JobSpec::sequential("cert-seq", 120_000));
        grid.run_until(SimTime::from_secs(12 * 3600));
    }

    /// The certification counters are part of the parity contract too —
    /// including the omniscient delivered-error count.
    fn cert_counters(grid: &Grid) -> Vec<(String, u64)> {
        let snap = grid.metrics_snapshot();
        [
            "grid_cert_votes",
            "grid_cert_certified",
            "grid_cert_reexecutions",
            "grid_cert_mismatches",
            "grid_cert_spot_checks",
            "grid_cert_blacklisted",
            "grid_cert_wrong_delivered",
        ]
        .iter()
        .map(|n| (n.to_string(), snap.counter(n).unwrap_or(0)))
        .collect()
    }

    for seed in chaos_seeds() {
        let mut reference = build_cert(TickMode::Reference, seed);
        run_cert(&mut reference, seed);
        let ref_counters = cert_counters(&reference);
        assert!(
            reference.log().count("cert.certified") >= 1,
            "seed {seed}: the scenario must actually certify something"
        );
        let mut active = build_cert(TickMode::ActiveSet, seed);
        run_cert(&mut active, seed);
        assert_eq!(
            cert_counters(&active),
            ref_counters,
            "seed {seed}: cert counters diverged (ActiveSet)"
        );
        assert_parity(
            &mut active,
            &mut reference,
            &format!("seed {seed}, sabotage plan, ActiveSet"),
        );
        for workers in SHARD_WIDTHS {
            let mut sharded = build_cert(TickMode::Sharded { workers }, seed);
            run_cert(&mut sharded, seed);
            assert_eq!(
                cert_counters(&sharded),
                ref_counters,
                "seed {seed}: cert counters diverged (Sharded{{{workers}}})"
            );
            assert_parity(
                &mut sharded,
                &mut reference,
                &format!("seed {seed}, sabotage plan, Sharded{{{workers}}}"),
            );
        }
    }
}
