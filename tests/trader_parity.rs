//! Parity suite: the indexed trader must be observably identical to the
//! seed's linear-scan implementation.
//!
//! Two traders are built with the same RNG seed and fed the same offer
//! stream; one answers through the indexed [`Trader::query`] path and the
//! other through [`Trader::query_reference`], which is the seed
//! implementation kept verbatim as an oracle. Because `random` preference
//! shuffles the *full* match list in both paths, the deterministic RNG
//! streams stay in lockstep and even shuffled results must be
//! byte-identical.

use integrade::orb::any::AnyValue;
use integrade::orb::ior::{Endpoint, Ior, ObjectKey};
use integrade::orb::trading::Trader;
use proptest::prelude::*;
use std::collections::BTreeMap;

const SERVICE: &str = "integrade::node";
const OSES: [&str; 3] = ["linux", "solaris", "windows"];

/// One generated node offer: (cpu_mips, free_ram_mb, exporting, has_load,
/// load, os index). `has_load = false` leaves the `load` property out so
/// queries exercise the undefined-property semantics.
type RawOffer = (i64, i64, bool, bool, f64, u8);

fn offer_props(raw: &RawOffer) -> BTreeMap<String, AnyValue> {
    let (cpu, ram, exporting, has_load, load, os) = *raw;
    let mut props: BTreeMap<String, AnyValue> = [
        ("cpu_mips".to_owned(), AnyValue::Long(cpu)),
        ("free_ram_mb".to_owned(), AnyValue::Long(ram)),
        ("exporting".to_owned(), AnyValue::Bool(exporting)),
        (
            "os".to_owned(),
            AnyValue::Str(OSES[os as usize % OSES.len()].to_owned()),
        ),
    ]
    .into_iter()
    .collect();
    if has_load {
        props.insert("load".to_owned(), AnyValue::Double(load));
    }
    props
}

fn node_ior(i: usize) -> Ior {
    Ior::new(
        "IDL:integrade/Lrm:1.0",
        Endpoint::new(i as u32, 0),
        ObjectKey::new(format!("lrm{i}")),
    )
}

fn raw_offer() -> impl Strategy<Value = RawOffer> {
    (
        0i64..2000,
        0i64..512,
        any::<bool>(),
        any::<bool>(),
        0.0f64..1.0,
        0u8..3,
    )
}

/// Builds the constraint string for form `which` with the generated
/// thresholds. Every form is valid; forms cover indexed range prefilters,
/// bare-property prefilters, string equality (never indexed), arithmetic
/// between two properties (no prefilter at all), `exist`, and `not`.
fn constraint_for(which: u8, min_cpu: i64, min_ram: i64, load_pct: i64) -> String {
    match which % 7 {
        0 => format!("exporting == true and cpu_mips >= {min_cpu} and free_ram_mb >= {min_ram}"),
        1 => format!("cpu_mips > {min_cpu} and cpu_mips < {}", min_cpu + 700),
        2 => format!("exist load and load <= 0.{load_pct:02}"),
        3 => format!("os == 'linux' and free_ram_mb >= {min_ram}"),
        4 => format!("not exporting or cpu_mips >= {min_cpu}"),
        5 => "free_ram_mb * 4 >= cpu_mips".to_owned(),
        _ => "exporting".to_owned(),
    }
}

fn preference_for(which: u8) -> &'static str {
    match which % 7 {
        0 => "first",
        1 => "random",
        2 => "max cpu_mips",
        3 => "min cpu_mips",
        4 => "max cpu_mips + free_ram_mb",
        5 => "min load",
        _ => "max load",
    }
}

fn twin_traders(seed: u64, offers: &[RawOffer]) -> (Trader, Trader) {
    let mut indexed = Trader::new(seed);
    let mut oracle = Trader::new(seed);
    for (i, raw) in offers.iter().enumerate() {
        let ior = node_ior(i);
        indexed.export(SERVICE, &ior, offer_props(raw)).unwrap();
        oracle.export(SERVICE, &ior, offer_props(raw)).unwrap();
    }
    (indexed, oracle)
}

proptest! {
    /// Indexed query ≡ seed linear scan for every constraint/preference
    /// form, including `random` (same RNG stream on both sides).
    #[test]
    fn indexed_query_matches_reference(
        offers in prop::collection::vec(raw_offer(), 0..40),
        queries in prop::collection::vec((0u8..7, 0u8..7, 0i64..2000, 0i64..512, 0i64..100), 1..6),
        max_offers in 0usize..80,
        seed in 0u64..1000,
    ) {
        let (mut indexed, mut oracle) = twin_traders(seed, &offers);
        for (cform, pform, min_cpu, min_ram, load_pct) in queries {
            let constraint = constraint_for(cform, min_cpu, min_ram, load_pct);
            let preference = preference_for(pform);
            let got = indexed
                .query(SERVICE, &constraint, preference, max_offers)
                .unwrap();
            let want = oracle
                .query_reference(SERVICE, &constraint, preference, max_offers)
                .unwrap();
            prop_assert_eq!(got, want);
        }
    }

    /// Disabling the secondary indexes (pure bucket scan) changes nothing
    /// either: prefilters are an optimisation, never a semantic.
    #[test]
    fn indexed_and_scan_modes_agree(
        offers in prop::collection::vec(raw_offer(), 0..40),
        cform in 0u8..7,
        pform in 0u8..7,
        min_cpu in 0i64..2000,
        min_ram in 0i64..512,
        max_offers in 0usize..80,
    ) {
        let (mut indexed, mut scan) = twin_traders(11, &offers);
        scan.set_use_indexes(false);
        let constraint = constraint_for(cform, min_cpu, min_ram, 50);
        let preference = preference_for(pform);
        let got = indexed
            .query(SERVICE, &constraint, preference, max_offers)
            .unwrap();
        let want = scan
            .query(SERVICE, &constraint, preference, max_offers)
            .unwrap();
        prop_assert_eq!(got, want);
    }

    /// The allocation-free `modify_values` path leaves the trader in the
    /// same observable state as a wholesale `modify`, and queries after a
    /// mix of updates and withdrawals still match the oracle.
    #[test]
    fn parity_survives_updates_and_withdrawals(
        offers in prop::collection::vec(raw_offer(), 1..30),
        updates in prop::collection::vec((0usize..30, 0i64..2000, 0i64..512, any::<bool>()), 0..20),
        withdraw_every in 2usize..9,
        cform in 0u8..7,
        pform in 0u8..7,
    ) {
        let (mut indexed, mut oracle) = twin_traders(23, &offers);
        // Sequential exports get ids 1..=n in both traders.
        let ids: Vec<_> = (0..offers.len())
            .map(|i| integrade::orb::trading::OfferId(i as u64 + 1))
            .collect();
        let cpu_slot = indexed.property_slot("cpu_mips");
        let ram_slot = indexed.property_slot("free_ram_mb");
        let exp_slot = indexed.property_slot("exporting");

        let mut current: Vec<RawOffer> = offers.clone();

        for (idx, cpu, ram, exporting) in updates {
            let i = idx % offers.len();
            let id = ids[i];
            current[i].0 = cpu;
            current[i].1 = ram;
            current[i].2 = exporting;
            // Indexed side: in-place typed writes. Oracle side: wholesale
            // property-map replacement (the seed API).
            indexed
                .modify_values(
                    id,
                    [
                        (cpu_slot, AnyValue::Long(cpu)),
                        (ram_slot, AnyValue::Long(ram)),
                        (exp_slot, AnyValue::Bool(exporting)),
                    ],
                )
                .unwrap();
            oracle.modify(id, offer_props(&current[i])).unwrap();
        }
        for i in (0..offers.len()).step_by(withdraw_every) {
            indexed.withdraw(ids[i]).unwrap();
            oracle.withdraw(ids[i]).unwrap();
        }

        let constraint = constraint_for(cform, 400, 64, 50);
        let preference = preference_for(pform);
        let got = indexed.query(SERVICE, &constraint, preference, 64).unwrap();
        let want = oracle
            .query_reference(SERVICE, &constraint, preference, 64)
            .unwrap();
        prop_assert_eq!(got, want);
    }
}
