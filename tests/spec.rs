//! Gray failures and speculative re-execution: a derated host keeps
//! answering every protocol message on time while computing at a fraction
//! of its advertised MIPS, so crash detection never fires. These tests
//! pin the other half of the robustness story — the GRM's progress-based
//! straggler detector notices the rate gap, launches a checkpoint-resumed
//! twin on a healthy node, the first copy to finish wins, and the loser
//! is torn down without leaking executors or reservations.

use integrade::core::asct::{JobSpec, JobState};
use integrade::core::grid::{Grid, GridBuilder, GridConfig, NodeSetup, TickMode};
use integrade::core::types::{JobId, NodeId};
use integrade::simnet::faults::{DerateWindow, FaultPlan};
use integrade::simnet::time::SimTime;

fn spec_grid(nodes: usize, seed: u64, speculation: bool) -> Grid {
    let config = GridConfig::builder()
        .seed(seed)
        .gupa_warmup_days(0)
        .sequential_checkpoint_mips_s(30_000.0)
        .speculation(speculation)
        .build();
    let mut builder = GridBuilder::new(config);
    builder.add_cluster((0..nodes).map(|_| NodeSetup::idle_desktop()).collect());
    builder.build()
}

/// Derates the first `slow` nodes to `factor` for the whole run — a
/// sustained gray failure no heartbeat can see.
fn derate_first(grid: &mut Grid, seed: u64, slow: usize, factor: f64) {
    let mut plan = FaultPlan::new(seed);
    for n in 0..slow {
        plan = plan.with_derate(DerateWindow {
            host: grid.host_of(NodeId(n as u32)),
            start: SimTime::from_secs(0),
            end: SimTime::from_secs(48 * 3600),
            factor,
        });
    }
    grid.set_fault_plan(plan);
}

fn makespan_s(grid: &Grid, job: JobId) -> f64 {
    grid.job_record(job)
        .unwrap()
        .makespan()
        .expect("job completed")
        .as_secs_f64()
}

/// One run: six equal tasks on six nodes, one of them quietly computing
/// at a quarter speed. Returns (grid, job) after a 24h horizon.
fn run_one_straggler(seed: u64, speculation: bool) -> (Grid, JobId) {
    let mut grid = spec_grid(6, seed, speculation);
    derate_first(&mut grid, seed, 1, 0.25);
    let job = grid.submit(JobSpec::bag_of_tasks("spec-bag", 6, 300_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    (grid, job)
}

#[test]
fn straggler_is_detected_and_speculation_wins_the_race() {
    let (grid, job) = run_one_straggler(42, true);
    assert_eq!(
        grid.job_record(job).unwrap().state,
        JobState::Completed,
        "job must complete despite the gray failure"
    );
    assert!(grid.log().count("straggler.detected") >= 1);
    assert!(grid.log().count("spec.launched") >= 1);
    assert!(
        grid.log().count("spec.won") >= 1,
        "the healthy twin must outrun a 4x-derated primary"
    );
    assert!(
        grid.log().count("spec.cancelled") >= 1,
        "the losing primary must be torn down"
    );
    // The loser's computation is truthfully accounted as waste.
    assert!(grid.job_record(job).unwrap().wasted_work_mips_s > 0);
}

#[test]
fn speculation_strictly_improves_makespan_under_gray_failure() {
    let (off, job_off) = run_one_straggler(42, false);
    let (on, job_on) = run_one_straggler(42, true);
    let (m_off, m_on) = (makespan_s(&off, job_off), makespan_s(&on, job_on));
    assert!(
        m_on < m_off,
        "speculation on ({m_on}s) must beat speculation off ({m_off}s)"
    );
    assert_eq!(off.log().count("spec.launched"), 0);
}

#[test]
fn without_speculation_the_detector_stays_dark() {
    let (grid, job) = run_one_straggler(7, false);
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(grid.log().count("straggler.detected"), 0);
    assert_eq!(grid.log().count("spec.launched"), 0);
}

/// Satellite: twin placement must consult the detector's evidence. With
/// two gray-failed hosts the trader still sees two healthy-looking
/// machines; placing either backup there would inherit the slowness.
#[test]
fn twins_avoid_other_suspected_stragglers() {
    let mut grid = spec_grid(6, 42, true);
    derate_first(&mut grid, 42, 2, 0.25);
    let job = grid.submit(JobSpec::bag_of_tasks("spec-bag2", 6, 300_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(grid.log().count("straggler.detected"), 2);
    assert_eq!(
        grid.log().count("spec.won"),
        2,
        "both backups must land on healthy nodes and win"
    );
}

/// Satellite regression: at every instant each part has at most one live
/// executor outside speculation and at most two (primary + twin) during
/// it, and after the race settles exactly zero copies survive anywhere —
/// the winner reported done, the loser was cancelled.
#[test]
fn at_most_two_executors_during_speculation_and_one_winner() {
    let mut grid = spec_grid(6, 42, true);
    derate_first(&mut grid, 42, 1, 0.25);
    let job = grid.submit(JobSpec::bag_of_tasks("spec-execs", 6, 300_000));
    let mut saw_two = false;
    for step in 1..=96 {
        grid.run_until(SimTime::from_secs(step * 600));
        for part in 0..6u32 {
            let execs = grid.part_executors(job, part);
            assert!(
                execs.len() <= 2,
                "part {part} has {execs:?} live executors at t={}s",
                step * 600
            );
            saw_two |= execs.len() == 2;
            // Cross-check the control plane against the nodes themselves:
            // every LRM running this part must be one of the two sanctioned
            // copies (no orphaned third execution anywhere).
            for n in 0..grid.node_count() as u32 {
                let lrm = grid.lrm(NodeId(n)).unwrap();
                let runs_it = lrm.running().iter().any(|p| p.job == job && p.part == part);
                if runs_it {
                    assert!(
                        execs.contains(&NodeId(n)),
                        "node {n} runs part {part} outside the sanctioned set {execs:?}"
                    );
                }
            }
        }
    }
    assert!(saw_two, "the scenario must actually exercise a twin race");
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    for part in 0..6u32 {
        assert!(
            grid.part_executors(job, part).is_empty(),
            "part {part} still has live executors after completion"
        );
    }
    for n in 0..grid.node_count() as u32 {
        let lrm = grid.lrm(NodeId(n)).unwrap();
        assert!(lrm.running().is_empty(), "node {n} still computing");
        assert!(lrm.reservations().is_empty(), "node {n} leaked a lease");
    }
}

/// The detector is rate-relative, not absolute: a uniformly slow cluster
/// has no straggler, and nothing should fire.
#[test]
fn uniform_derate_triggers_no_speculation() {
    let mut grid = spec_grid(6, 42, true);
    derate_first(&mut grid, 42, 6, 0.5);
    let job = grid.submit(JobSpec::bag_of_tasks("spec-uniform", 6, 150_000));
    grid.run_until(SimTime::from_secs(24 * 3600));
    assert_eq!(grid.job_record(job).unwrap().state, JobState::Completed);
    assert_eq!(
        grid.log().count("straggler.detected"),
        0,
        "uniform slowness is not straggling"
    );
}

/// Gray-failure handling must behave identically under the sharded
/// parallel engine — the detector reads GRM state in the single-threaded
/// phase, so the log stream must match the sequential modes exactly.
#[test]
fn speculation_is_identical_across_tick_modes() {
    let run = |mode: TickMode| {
        let config = GridConfig::builder()
            .seed(42)
            .gupa_warmup_days(0)
            .sequential_checkpoint_mips_s(30_000.0)
            .speculation(true)
            .tick_mode(mode)
            .build();
        let mut builder = GridBuilder::new(config);
        builder.add_cluster((0..6).map(|_| NodeSetup::idle_desktop()).collect());
        let mut grid = builder.build();
        derate_first(&mut grid, 42, 1, 0.25);
        let job = grid.submit(JobSpec::bag_of_tasks("spec-modes", 6, 300_000));
        grid.run_until(SimTime::from_secs(24 * 3600));
        (
            grid.log().count("straggler.detected"),
            grid.log().count("spec.launched"),
            grid.log().count("spec.won"),
            grid.log().count("spec.cancelled"),
            makespan_s(&grid, job),
        )
    };
    let reference = run(TickMode::Reference);
    assert_eq!(run(TickMode::ActiveSet), reference);
    for workers in [1usize, 2, 4, 8] {
        assert_eq!(run(TickMode::Sharded { workers }), reference);
    }
    assert!(reference.2 >= 1, "the scenario must exercise a win");
}
