//! # InteGrade
//!
//! A production-quality Rust reproduction of **"InteGrade: Object-Oriented
//! Grid Middleware Leveraging Idle Computing Power of Desktop Machines"**
//! (Goldchleger, Kon, Goldman & Finger, Middleware 2003).
//!
//! InteGrade harvests the idle cycles of shared desktop machines into a
//! computational grid while guaranteeing that machine owners "do not
//! perceive any drop in the quality of service". This workspace implements
//! the complete architecture the paper describes — including the CORBA-like
//! middleware substrate the original prototype was built on — plus the
//! baselines it compares against and a claim-driven experiment suite (see
//! `DESIGN.md` and `EXPERIMENTS.md`).
//!
//! This facade crate re-exports the member crates:
//!
//! * [`simnet`] — deterministic discrete-event network simulation.
//! * [`orb`] — CDR marshalling, GIOP framing, object adapters, Naming and
//!   Trading services (the CORBA substitute).
//! * [`usage`] — LUPA/GUPA analytics: usage sampling, clustering,
//!   idle-period prediction.
//! * [`bsp`] — the BSP runtime with superstep checkpointing.
//! * [`workload`] — synthetic desktop traces and job streams.
//! * [`core`] — the middleware itself: LRM, GRM, LUPA/GUPA, NCC, ASCT,
//!   the two intra-cluster protocols, scheduling, the cluster hierarchy and
//!   the runnable [`core::grid::Grid`].
//! * [`baselines`] — Condor-style, BOINC-style and naive comparators.
//!
//! # Quickstart
//!
//! ```
//! use integrade::core::asct::JobSpec;
//! use integrade::core::grid::{GridBuilder, GridConfig, NodeSetup};
//! use integrade::simnet::time::SimTime;
//!
//! // A four-desktop cluster with protective default sharing policies.
//! let mut builder = GridBuilder::new(GridConfig::default());
//! builder.add_cluster((0..4).map(|_| NodeSetup::idle_desktop()).collect());
//! let mut grid = builder.build();
//!
//! // Submit a small sequential application through the ASCT API and run.
//! let job = grid.submit(JobSpec::sequential("hello-grid", 1500));
//! grid.run_until(SimTime::from_secs(3600));
//! assert_eq!(grid.job_record(job).unwrap().state.to_string(), "completed");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use integrade_baselines as baselines;
pub use integrade_bsp as bsp;
pub use integrade_core as core;
pub use integrade_orb as orb;
pub use integrade_simnet as simnet;
pub use integrade_usage as usage;
pub use integrade_workload as workload;
