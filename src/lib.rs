//! # InteGrade
//!
//! A production-quality Rust reproduction of **"InteGrade: Object-Oriented
//! Grid Middleware Leveraging Idle Computing Power of Desktop Machines"**
//! (Goldchleger, Kon, Goldman & Finger, Middleware 2003).
//!
//! InteGrade harvests the idle cycles of shared desktop machines into a
//! computational grid while guaranteeing that machine owners "do not
//! perceive any drop in the quality of service". This workspace implements
//! the complete architecture the paper describes — including the CORBA-like
//! middleware substrate the original prototype was built on — plus the
//! baselines it compares against and a claim-driven experiment suite (see
//! `DESIGN.md` and `EXPERIMENTS.md`).
//!
//! This facade crate re-exports the member crates:
//!
//! * [`simnet`] — deterministic discrete-event network simulation.
//! * [`orb`] — CDR marshalling, GIOP framing, object adapters, Naming and
//!   Trading services (the CORBA substitute).
//! * [`usage`] — LUPA/GUPA analytics: usage sampling, clustering,
//!   idle-period prediction.
//! * [`bsp`] — the BSP runtime with superstep checkpointing.
//! * [`workload`] — synthetic desktop traces and job streams.
//! * [`core`] — the middleware itself: LRM, GRM, LUPA/GUPA, NCC, ASCT,
//!   the two intra-cluster protocols, scheduling, the cluster hierarchy and
//!   the runnable [`core::grid::Grid`].
//! * [`baselines`] — Condor-style, BOINC-style and naive comparators.
//!
//! * [`obs`] — the observability layer: metrics registry, causal trace
//!   spans, hot-loop profiling timers.
//!
//! # Quickstart
//!
//! ```
//! use integrade::prelude::*;
//!
//! // A four-desktop cluster with protective default sharing policies.
//! // `GridConfig::builder()` validates as it goes; `default_5min()` is the
//! // validated shorthand for the paper's 5-minute sampling setup.
//! let config = GridConfig::builder().seed(42).max_candidates(16).build();
//! let mut builder = GridBuilder::new(config);
//! builder.add_cluster((0..4).map(|_| NodeSetup::idle_desktop()).collect());
//! let mut grid = builder.build();
//!
//! // Submit a small sequential application through the ASCT API and run.
//! let job = grid.submit(
//!     JobSpec::sequential("hello-grid", 1500).with_requirement(Requirement::MinRamMb(16)),
//! );
//! grid.run_until(SimTime::from_secs(3600));
//! assert_eq!(grid.job_record(job).unwrap().state.to_string(), "completed");
//!
//! // Every run carries metrics and causal trace spans for free.
//! let snapshot = grid.metrics_snapshot();
//! assert!(snapshot.counter("orb_requests_sent").unwrap() > 0);
//! assert!(!grid.spans().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use integrade_baselines as baselines;
pub use integrade_bsp as bsp;
pub use integrade_core as core;
pub use integrade_obs as obs;
pub use integrade_orb as orb;
pub use integrade_simnet as simnet;
pub use integrade_usage as usage;
pub use integrade_workload as workload;

/// The types most programs need, in one import.
///
/// ```
/// use integrade::prelude::*;
///
/// let config = GridConfig::default_5min();
/// let spec = JobSpec::bsp("solver", 4, 10, 10_000, 1024)
///     .with_requirements([Requirement::MinRamMb(64)])
///     .with_preference(SchedulingPreference::LeastLoaded);
/// let _ = (config, spec);
/// ```
pub mod prelude {
    pub use integrade_core::asct::{
        JobRecord, JobSpec, JobState, Requirement, SchedulingPreference,
    };
    pub use integrade_core::builder::{ConfigError, GridConfigBuilder};
    pub use integrade_core::federation::{
        FederatedPlacement, Federation, FederationBuilder, FederationError, GlobalJobId,
        RoutingPolicy, WanStats,
    };
    pub use integrade_core::grid::{
        Grid, GridBuilder, GridConfig, GridReport, NodeSetup, TickMode,
    };
    pub use integrade_core::hierarchy::{ClusterHierarchy, UsageSummary, WideAreaRequest};
    pub use integrade_core::scheduler::Strategy;
    pub use integrade_core::types::{ClusterId, JobId, NodeId, Platform, ResourceVector};
    pub use integrade_obs::metrics::MetricsSnapshot;
    pub use integrade_obs::span::{Span, SpanKind, SpanOutcome, SpanTree};
    pub use integrade_simnet::faults::FaultPlan;
    pub use integrade_simnet::time::{SimDuration, SimTime};
    pub use integrade_simnet::topology::LinkSpec;
}
